"""Differential replay harness: the columnar kernel vs the game engines.

This file is the merge gate for ``repro.core.schedule_ir``.  The paper's
legality and cost semantics stay *defined* by ``RBPGame``/``PRBPGame``;
the kernel is only trusted because every verdict it produces — first
illegal move, I/O cost, compute cost, peak red, terminality, final-state
masks — is asserted bit-identical to stepping the engine move-by-move,
on Hypothesis-generated legal *and* illegal sequences, for both games and
all variant bundles.

Run ``pytest tests/test_schedule_ir.py --hypothesis-profile=thorough`` for
the deep sweep (1500 examples per property, >10k differential cases).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import schedule_ir as sir
from repro.core.exceptions import (
    IllegalMoveError,
    IncompletePebblingError,
    PebblingError,
)
from repro.core.moves import MoveKind, PRBPMove, RBPMove
from repro.core.prbp import PRBPGame
from repro.core.rbp import RBPGame
from repro.core.strategy import PRBPSchedule, RBPSchedule
from repro.core.variants import NO_DELETE, ONE_SHOT, RECOMPUTE, SLIDING, GameVariant
from repro.dags.gadgets import figure1_gadget
from repro.dags.linalg import matvec_dag
from repro.dags.random_dags import random_layered_dag
from repro.dags.trees import kary_tree_dag
from repro.solvers.greedy import greedy_rbp_schedule, topological_prbp_schedule

BUNDLES = [ONE_SHOT, RECOMPUTE, SLIDING, NO_DELETE]
PRBP_BUNDLES = [v for v in BUNDLES if not v.allow_sliding]

DAGS = [
    figure1_gadget(),
    kary_tree_dag(2, 2),
    matvec_dag(3),
    random_layered_dag((3, 4, 4, 3), edge_probability=0.5, seed=7),
]

_KINDS = [MoveKind.LOAD, MoveKind.SAVE, MoveKind.COMPUTE, MoveKind.DELETE, MoveKind.CLEAR]


# --------------------------------------------------------------------------- #
# the reference: step the engine move-by-move
# --------------------------------------------------------------------------- #


def engine_reference(schedule):
    """Replay through the engine, returning the kernel-comparable verdict."""
    game_cls = RBPGame if isinstance(schedule, RBPSchedule) else PRBPGame
    game = game_cls(schedule.dag, schedule.r, variant=schedule.variant)
    failed = None
    peak = 0
    for i, mv in enumerate(schedule.moves):
        try:
            game.apply(mv)
        except PebblingError:
            failed = i
            break
        peak = max(peak, game.red_count())
    verdict = {
        "failed_at": failed,
        "io_cost": game.io_cost,
        "compute_cost_total": game.compute_cost_total,
        "peak_red": peak,
        "ok": failed is None and game.is_terminal(),
    }
    n = schedule.dag.n
    if isinstance(schedule, RBPSchedule):
        verdict["red"] = np.array([v in game.red for v in range(n)])
        verdict["blue"] = np.array([v in game.blue for v in range(n)])
        verdict["computed"] = np.array([v in game.computed for v in range(n)])
    else:
        verdict["state"] = np.array([int(s) for s in game.state], dtype=np.uint8)
        verdict["marked"] = np.array(list(game.marked))
    return verdict


def assert_outcome_matches(outcome, verdict, schedule):
    ctx = (schedule.moves, verdict, outcome)
    assert outcome.failed_at == verdict["failed_at"], ctx
    assert outcome.io_cost == verdict["io_cost"], ctx
    assert outcome.compute_cost_total == pytest.approx(verdict["compute_cost_total"]), ctx
    assert outcome.peak_red == verdict["peak_red"], ctx
    assert outcome.ok == verdict["ok"], ctx
    if isinstance(schedule, RBPSchedule):
        np.testing.assert_array_equal(outcome.red, verdict["red"], err_msg=str(ctx))
        np.testing.assert_array_equal(outcome.blue, verdict["blue"], err_msg=str(ctx))
        np.testing.assert_array_equal(outcome.computed, verdict["computed"], err_msg=str(ctx))
    else:
        np.testing.assert_array_equal(outcome.state, verdict["state"], err_msg=str(ctx))
        np.testing.assert_array_equal(outcome.marked, verdict["marked"], err_msg=str(ctx))


# --------------------------------------------------------------------------- #
# move-sequence strategies: arbitrary junk, legal walks, and walks with
# junk spliced in (long legal prefix ending in a violation)
# --------------------------------------------------------------------------- #


@st.composite
def rbp_case(draw):
    dag = draw(st.sampled_from(DAGS))
    variant = draw(st.sampled_from(BUNDLES))
    r = draw(st.sampled_from([1, 2, 3, dag.n]))
    mode = draw(st.integers(min_value=0, max_value=2))
    moves = []
    if mode > 0:
        game = RBPGame(dag, r, variant=variant)
        steps = draw(st.integers(min_value=0, max_value=40))
        for _ in range(steps):
            legal = game.legal_moves(include_useless=True)
            if not legal:
                break
            mv = legal[draw(st.integers(min_value=0, max_value=len(legal) - 1))]
            game.apply(mv)
            moves.append(mv)
    if mode != 1:
        junk_len = draw(st.integers(min_value=0, max_value=12))
        junk = []
        for _ in range(junk_len):
            kind = draw(st.sampled_from(_KINDS))
            v = draw(st.integers(min_value=0, max_value=dag.n - 1))
            slide = None
            if kind is MoveKind.COMPUTE and draw(st.booleans()):
                slide = draw(st.integers(min_value=0, max_value=dag.n - 1))
            junk.append(RBPMove(kind, v, slide))
        pos = draw(st.integers(min_value=0, max_value=len(moves)))
        moves = moves[:pos] + junk + moves[pos:]
    return RBPSchedule(dag, r, moves, variant=variant)


@st.composite
def prbp_case(draw):
    dag = draw(st.sampled_from(DAGS))
    variant = draw(st.sampled_from(PRBP_BUNDLES))
    r = draw(st.sampled_from([1, 2, 3, dag.n]))
    mode = draw(st.integers(min_value=0, max_value=2))
    moves = []
    if mode > 0:
        game = PRBPGame(dag, r, variant=variant)
        steps = draw(st.integers(min_value=0, max_value=50))
        for _ in range(steps):
            legal = game.legal_moves(include_useless=True)
            if not legal:
                break
            mv = legal[draw(st.integers(min_value=0, max_value=len(legal) - 1))]
            game.apply(mv)
            moves.append(mv)
    if mode != 1:
        junk_len = draw(st.integers(min_value=0, max_value=12))
        junk = []
        for _ in range(junk_len):
            kind = draw(st.sampled_from(_KINDS))
            if kind is MoveKind.COMPUTE:
                if dag.edges and draw(st.booleans()):
                    edge = draw(st.sampled_from(dag.edges))
                else:
                    edge = (
                        draw(st.integers(min_value=0, max_value=dag.n - 1)),
                        draw(st.integers(min_value=0, max_value=dag.n - 1)),
                    )
                junk.append(PRBPMove(kind, edge=edge))
            else:
                junk.append(
                    PRBPMove(kind, node=draw(st.integers(min_value=0, max_value=dag.n - 1)))
                )
        pos = draw(st.integers(min_value=0, max_value=len(moves)))
        moves = moves[:pos] + junk + moves[pos:]
    return PRBPSchedule(dag, r, moves, variant=variant)


# --------------------------------------------------------------------------- #
# the differential properties (the PR's merge gate)
# --------------------------------------------------------------------------- #


@given(rbp_case())
def test_rbp_kernel_matches_engine(schedule):
    verdict = engine_reference(schedule)
    ir = sir.from_schedule(schedule)
    outcome = sir.replay(ir)
    assert_outcome_matches(outcome, verdict, schedule)
    # the lean scoring path agrees with the full outcome
    cost = sir.replay_io_cost(ir.dag, ir.r, ir.variant, ir.game, sir._ir_rows(ir))
    assert cost == (outcome.io_cost if outcome.ok else None)


@given(prbp_case())
def test_prbp_kernel_matches_engine(schedule):
    verdict = engine_reference(schedule)
    ir = sir.from_schedule(schedule)
    outcome = sir.replay(ir)
    assert_outcome_matches(outcome, verdict, schedule)
    cost = sir.replay_io_cost(ir.dag, ir.r, ir.variant, ir.game, sir._ir_rows(ir))
    assert cost == (outcome.io_cost if outcome.ok else None)


@given(st.lists(rbp_case(), min_size=1, max_size=6))
def test_rbp_batched_kernel_matches_scalar(schedules):
    irs = [sir.from_schedule(s) for s in schedules]
    batched = sir.replay_many(irs, vectorized=True)
    scalar = sir.replay_many(irs, vectorized=False)
    assert len(batched) == len(scalar) == len(irs)
    for schedule, vec, scal in zip(schedules, batched, scalar):
        assert vec.failed_at == scal.failed_at, schedule.moves
        assert vec.io_cost == scal.io_cost, schedule.moves
        assert vec.compute_cost_total == pytest.approx(scal.compute_cost_total)
        assert vec.peak_red == scal.peak_red, schedule.moves
        assert vec.legal == scal.legal and vec.terminal == scal.terminal
        np.testing.assert_array_equal(vec.red, scal.red)
        np.testing.assert_array_equal(vec.blue, scal.blue)
        np.testing.assert_array_equal(vec.computed, scal.computed)


@given(st.lists(rbp_case() | prbp_case(), min_size=0, max_size=5))
def test_replay_many_mixed_order_and_masks_off(schedules):
    irs = [sir.from_schedule(s) for s in schedules]
    full = sir.replay_many(irs)
    lean = sir.replay_many(irs, masks=False)
    assert len(full) == len(lean) == len(irs)
    for ir, f, le in zip(irs, full, lean):
        assert (f.failed_at, f.io_cost, f.peak_red, f.legal, f.terminal) == (
            le.failed_at,
            le.io_cost,
            le.peak_red,
            le.legal,
            le.terminal,
        )
        if ir.game == "rbp" and le.red is None:
            # the batch kernel skipped mask reconstruction as asked
            assert le.blue is None and le.computed is None


@given(rbp_case() | prbp_case())
def test_kernel_stats_matches_schedule_stats(schedule):
    ir = sir.from_schedule(schedule)
    try:
        expected = schedule.stats()
    except IllegalMoveError:
        with pytest.raises(IllegalMoveError):
            sir.kernel_stats(ir)
        return
    except IncompletePebblingError:
        with pytest.raises(IncompletePebblingError):
            sir.kernel_stats(ir)
        return
    assert sir.kernel_stats(ir) == expected


# --------------------------------------------------------------------------- #
# round-trips: schedule -> IR -> schedule -> IR is bit-identical
# --------------------------------------------------------------------------- #


@given(rbp_case() | prbp_case())
def test_round_trip_bit_identical(schedule):
    ir = sir.from_schedule(schedule)
    back = sir.to_schedule(ir)
    assert back.moves == schedule.moves
    assert back.r == schedule.r and back.variant == schedule.variant
    assert back.description == schedule.description
    ir2 = sir.from_schedule(back)
    for a, b in ((ir.op, ir2.op), (ir.node, ir2.node), (ir.arg, ir2.arg)):
        np.testing.assert_array_equal(a, b)
        assert a.dtype == b.dtype == np.int32
    assert sir.ir_digest(ir) == sir.ir_digest(ir2)


@given(rbp_case() | prbp_case())
def test_wire_codec_round_trip(schedule):
    ir = sir.from_schedule(schedule)
    doc = sir.pack_arrays(ir)
    assert doc["count"] == len(ir)
    op, node, arg = sir.unpack_arrays(doc)
    rebuilt = sir.ir_from_arrays(
        ir.game, ir.dag, ir.r, ir.variant, op, node, arg, description=ir.description
    )
    assert sir.ir_digest(rebuilt) == sir.ir_digest(ir)
    assert sir.to_schedule(rebuilt).moves == schedule.moves


def test_digest_changes_with_content():
    dag = figure1_gadget()
    moves = [RBPMove(MoveKind.LOAD, 0), RBPMove(MoveKind.DELETE, 0)]
    base = sir.from_schedule(RBPSchedule(dag, 3, moves))
    assert sir.ir_digest(base) != sir.ir_digest(
        sir.from_schedule(RBPSchedule(dag, 4, moves))
    )
    assert sir.ir_digest(base) != sir.ir_digest(
        sir.from_schedule(RBPSchedule(dag, 3, moves[:1]))
    )
    assert sir.ir_digest(base) != sir.ir_digest(
        sir.from_schedule(RBPSchedule(dag, 3, moves, variant=NO_DELETE))
    )


# --------------------------------------------------------------------------- #
# tamper rejection: malformed wire docs and columns refuse, never crash
# --------------------------------------------------------------------------- #


def _sample_doc():
    ir = sir.from_schedule(greedy_rbp_schedule(kary_tree_dag(2, 2), 3))
    return ir, sir.pack_arrays(ir)


@pytest.mark.parametrize(
    "tamper",
    [
        lambda d: d.pop("ops"),
        lambda d: d.pop("count"),
        lambda d: d.__setitem__("count", -1),
        lambda d: d.__setitem__("count", d["count"] + 1),
        lambda d: d.__setitem__("count", True),
        lambda d: d.__setitem__("ops", "!!! not base64 !!!"),
        lambda d: d.__setitem__("nodes", 123),
        lambda d: d.__setitem__("args", d["args"][:-8]),
    ],
    ids=[
        "missing-ops",
        "missing-count",
        "negative-count",
        "count-mismatch",
        "bool-count",
        "bad-base64",
        "non-string-column",
        "truncated-column",
    ],
)
def test_tampered_wire_doc_rejected(tamper):
    _, doc = _sample_doc()
    tamper(doc)
    with pytest.raises(ValueError):
        sir.unpack_arrays(doc)


def test_unpack_rejects_non_dict():
    with pytest.raises(ValueError):
        sir.unpack_arrays(["not", "a", "dict"])


@pytest.mark.parametrize(
    "game, op, node, arg, fragment",
    [
        ("rbp", 9, 0, -1, "unknown op code"),
        ("rbp", 0, 99, -1, "out of range"),
        ("rbp", 2, 0, 99, "slide_from 99"),
        ("rbp", 0, 0, 5, "arg=-1"),
        ("prbp", 2, 0, -1, "edge head -1"),
        ("prbp", 2, 0, 99, "edge head 99"),
        ("prbp", 1, 0, 3, "arg=-1"),
    ],
)
def test_tampered_columns_rejected(game, op, node, arg, fragment):
    dag = figure1_gadget()
    with pytest.raises(ValueError, match=fragment):
        sir.ir_from_arrays(
            game,
            dag,
            3,
            RECOMPUTE,
            np.array([op], dtype=np.int32),
            np.array([node], dtype=np.int32),
            np.array([arg], dtype=np.int32),
        )


def test_tampered_column_changes_digest_and_fails_replay():
    # flipping one stored byte must be *detected* — either the columns no
    # longer validate, or the digest moves and the kernel verdict changes
    ir, doc = _sample_doc()
    op, node, arg = sir.unpack_arrays(doc)
    node = node.copy()
    node[0] = (node[0] + 1) % ir.dag.n
    tampered = sir.ir_from_arrays("rbp", ir.dag, ir.r, ir.variant, op, node, arg)
    assert sir.ir_digest(tampered) != sir.ir_digest(ir)
    assert sir.replay(tampered).ok is False or sir.kernel_stats(
        tampered
    ) != sir.kernel_stats(ir)


# --------------------------------------------------------------------------- #
# encode/decode contracts and guard rails
# --------------------------------------------------------------------------- #


def test_empty_schedule_round_trips_and_replays():
    dag = figure1_gadget()
    for make, game in ((RBPSchedule, "rbp"), (PRBPSchedule, "prbp")):
        ir = sir.from_schedule(make(dag, 2, []))
        assert len(ir) == 0 and ir.game == game
        outcome = sir.replay(ir)
        assert outcome.legal and not outcome.terminal
        assert outcome.io_cost == 0 and outcome.peak_red == 0
        assert sir.to_schedule(ir).moves == []
    # the batched path hits its own empty-batch short-circuit
    irs = [sir.from_schedule(RBPSchedule(dag, 2, []))] * 3
    for outcome in sir.replay_many(irs, vectorized=True):
        assert outcome.legal and not outcome.terminal and outcome.io_cost == 0


def test_prbp_sliding_ir_rejected_like_engine():
    dag = figure1_gadget()
    with pytest.raises(ValueError):
        PRBPGame(dag, 3, variant=SLIDING)
    ir = sir.ScheduleIR(
        game="prbp",
        dag=dag,
        r=3,
        variant=SLIDING,
        op=np.empty(0, dtype=np.int32),
        node=np.empty(0, dtype=np.int32),
        arg=np.empty(0, dtype=np.int32),
        description="",
    )
    with pytest.raises(ValueError):
        sir.replay(ir)
    with pytest.raises(ValueError):
        sir.replay_many([ir])


def test_out_of_range_nodes_unrepresentable_at_encode():
    dag = figure1_gadget()
    with pytest.raises(ValueError):
        sir.from_schedule(RBPSchedule(dag, 3, [RBPMove(MoveKind.LOAD, dag.n)]))
    with pytest.raises(ValueError):
        sir.from_schedule(
            PRBPSchedule(dag, 3, [PRBPMove(MoveKind.COMPUTE, edge=(0, dag.n + 4))])
        )


def test_compute_cost_variants_match_engine():
    dag = matvec_dag(3)
    for variant in (
        GameVariant(one_shot=False, compute_cost=1.0),
        GameVariant(one_shot=False, compute_cost=1.0, split_compute_cost=True),
    ):
        schedule = topological_prbp_schedule(dag, 4, variant=variant)
        verdict = engine_reference(schedule)
        outcome = sir.replay(sir.from_schedule(schedule))
        assert_outcome_matches(outcome, verdict, schedule)
        assert outcome.compute_cost_total > 0
