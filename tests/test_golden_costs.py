"""Golden-value regression tests: pinned optimal costs of the paper's instances.

Every value below was computed by the exhaustive solvers and cross-checked
against the paper's closed forms where one exists (Prop. 4.2 for Figure 1,
App. A.2 for the trees, Prop. 4.6/4.7 for the gadgets).  A solver refactor
that changes any of these numbers is changing *optima*, not implementation
detail — these tests make that impossible to do silently.
"""

import pytest

from repro.api import PebblingProblem, solve
from repro.dags.fft import fft_dag
from repro.dags.gadgets import (
    chained_gadget_dag,
    figure1_gadget,
    pebble_collection_instance,
    zipper_instance,
)
from repro.dags.linalg import matvec_dag
from repro.dags.random_dags import random_layered_dag
from repro.dags.trees import kary_tree_dag, optimal_prbp_tree_cost, optimal_rbp_tree_cost

#: (label, DAG factory, r, golden OPT_RBP, golden OPT_PRBP)
GOLDEN = [
    ("figure1-r4", lambda: figure1_gadget(), 4, 3, 2),
    ("figure1-r5", lambda: figure1_gadget(), 5, 2, 2),
    ("tree-k2-d2-critical", lambda: kary_tree_dag(2, 2), 3, 7, 5),
    ("tree-k3-d2-critical", lambda: kary_tree_dag(3, 2), 4, 14, 10),
    ("zipper-d2-l2", lambda: zipper_instance(2, 2).dag, 4, 5, 5),
    ("zipper-d3-l2", lambda: zipper_instance(3, 2).dag, 5, 7, 7),
    ("collection-d2-l2", lambda: pebble_collection_instance(2, 2).dag, 4, 3, 3),
    ("collection-d2-l3", lambda: pebble_collection_instance(2, 3).dag, 4, 3, 3),
    ("chained-gadget-1", lambda: chained_gadget_dag(1), 4, 3, 2),
]


@pytest.mark.parametrize("label, factory, r, opt_rbp, opt_prbp", GOLDEN, ids=[g[0] for g in GOLDEN])
def test_pinned_optimal_costs(label, factory, r, opt_rbp, opt_prbp):
    dag = factory()
    for game, golden in (("rbp", opt_rbp), ("prbp", opt_prbp)):
        result = solve(PebblingProblem(dag, r, game=game), solver="exhaustive")
        assert result.exact_solver
        assert result.cost == golden, (
            f"{label}: OPT_{game.upper()} changed from the pinned {golden} to {result.cost}"
        )


@pytest.mark.parametrize("label, factory, r, opt_rbp, opt_prbp", GOLDEN, ids=[g[0] for g in GOLDEN])
def test_prbp_never_exceeds_rbp(label, factory, r, opt_rbp, opt_prbp):
    # Proposition 4.1 instantiated on the golden set — a broken pin that
    # violated it would be a transcription error, not a measurement.
    assert opt_prbp <= opt_rbp


def test_figure1_matches_proposition_42():
    # The paper's opening example: partial computations save exactly one I/O.
    dag = figure1_gadget()
    rbp = solve(PebblingProblem(dag, 4, game="rbp"), solver="exhaustive")
    prbp = solve(PebblingProblem(dag, 4, game="prbp"), solver="exhaustive")
    assert (rbp.cost, prbp.cost) == (3, 2)


@pytest.mark.parametrize("k, depth", [(2, 2), (2, 3), (3, 2)])
def test_tree_closed_forms_match_pinned_search(k, depth):
    # Appendix A.2 closed forms agree with exhaustive search at the critical
    # capacity r = k + 1 (for sizes the search can handle).
    dag = kary_tree_dag(k, depth)
    r = k + 1
    rbp = solve(PebblingProblem(dag, r, game="rbp"), solver="exhaustive")
    prbp = solve(PebblingProblem(dag, r, game="prbp"), solver="exhaustive")
    assert rbp.cost == optimal_rbp_tree_cost(k, depth)
    assert prbp.cost == optimal_prbp_tree_cost(k, depth)


# --------------------------------------------------------------------------- #
# anytime refinement: pinned refined costs + bit-identical determinism
# --------------------------------------------------------------------------- #

#: (label, problem factory, solver, solve() options, pinned initial cost,
#: pinned refined cost) — the quick-tier heuristic instances of the bench
#: registry, refined with the default auto pass (seed 0, 96 steps) or the
#: standalone anytime solver with its bench-pinned options.  The refinement
#: engine is deterministic for a fixed (seed, step-budget) pair, so these are
#: exact values, not ranges; an operator change that shifts them is changing
#: achieved costs and must re-pin deliberately.
REFINED_GOLDEN = [
    (
        "random-layered-sparse-quick",
        lambda: PebblingProblem(
            random_layered_dag((6, 8, 8, 6, 4), edge_probability=0.2, max_in_degree=4, seed=0),
            r=6,
            game="prbp",
        ),
        "auto",
        {},
        36,
        31,
    ),
    (
        "random-layered-rbp-quick",
        lambda: PebblingProblem(
            random_layered_dag((6, 8, 8, 6, 4), edge_probability=0.3, max_in_degree=4, seed=3),
            r=6,
            game="rbp",
        ),
        "auto",
        {},
        59,
        52,
    ),
    (
        "matvec-rbp-greedy-quick",
        lambda: PebblingProblem(matvec_dag(6), r=9, game="rbp"),
        "auto",
        {},
        106,
        81,
    ),
    (
        "chained-rbp-greedy-quick",
        lambda: PebblingProblem(chained_gadget_dag(16), r=4, game="rbp"),
        "auto",
        {},
        113,
        63,
    ),
    (
        "anytime-fft-quick",
        lambda: PebblingProblem(fft_dag(16), r=6, game="prbp"),
        "anytime",
        {"seed": 0, "refine_steps": 192},
        82,
        78,
    ),
    (
        "anytime-tree-offcritical-quick",
        lambda: PebblingProblem(kary_tree_dag(3, 3), r=5, game="rbp"),
        "anytime",
        {"seed": 0, "refine_steps": 192},
        43,
        38,
    ),
    # the bench registry's bumped step budget (the kernel-backed refiner
    # scores ~2x the candidates in the same wall budget, so the quick-tier
    # scenarios moved from 192 to 384 steps)
    (
        "anytime-fft-quick-384",
        lambda: PebblingProblem(fft_dag(16), r=6, game="prbp"),
        "anytime",
        {"seed": 0, "refine_steps": 384},
        82,
        77,
    ),
    (
        "anytime-random-layered-quick-384",
        lambda: PebblingProblem(
            random_layered_dag((6, 8, 8, 6, 4), edge_probability=0.3, max_in_degree=4, seed=5),
            r=6,
            game="prbp",
        ),
        "anytime",
        {"seed": 0, "refine_steps": 384},
        40,
        34,
    ),
    (
        "anytime-tree-offcritical-quick-384",
        lambda: PebblingProblem(kary_tree_dag(3, 3), r=5, game="rbp"),
        "anytime",
        {"seed": 0, "refine_steps": 384},
        43,
        38,
    ),
]


@pytest.mark.parametrize(
    "label, factory, solver, options, initial, refined",
    REFINED_GOLDEN,
    ids=[g[0] for g in REFINED_GOLDEN],
)
def test_pinned_refined_costs(label, factory, solver, options, initial, refined):
    result = solve(factory(), solver=solver, **options)
    trajectory = result.solve_stats.refinement
    assert trajectory is not None, f"{label}: no refinement trajectory was recorded"
    assert trajectory.initial_cost == initial, (
        f"{label}: the refinement seed changed from the pinned {initial} "
        f"to {trajectory.initial_cost}"
    )
    assert result.cost == trajectory.refined_cost == refined, (
        f"{label}: refined cost changed from the pinned {refined} to {result.cost}"
    )
    # cost monotonicity as recorded, and the replayed schedule agrees
    assert trajectory.refined_cost <= trajectory.initial_cost
    assert result.schedule.cost() == result.cost


@pytest.mark.parametrize(
    "solver, options",
    [("auto", {"seed": 11, "refine_steps": 64}), ("anytime", {"seed": 11, "refine_steps": 64})],
    ids=["auto", "anytime"],
)
def test_refinement_is_bit_identical_for_fixed_seed_and_steps(solver, options):
    # same problem + same seed + same step budget => the same schedule,
    # move for move — the contract the result cache and solve_many rely on
    def run():
        problem = PebblingProblem(
            random_layered_dag((6, 8, 8, 6, 4), edge_probability=0.3, max_in_degree=4, seed=3),
            r=6,
            game="rbp",
        )
        return solve(problem, solver=solver, **options)

    first, second = run(), run()
    assert first.cost == second.cost
    assert first.schedule.moves == second.schedule.moves
    t1, t2 = first.solve_stats.refinement, second.solve_stats.refinement
    assert (t1.initial_cost, t1.refined_cost, t1.steps, t1.accepted, t1.seed) == (
        t2.initial_cost,
        t2.refined_cost,
        t2.steps,
        t2.accepted,
        t2.seed,
    )


def test_different_seeds_may_differ_but_stay_monotone():
    problem = PebblingProblem(
        random_layered_dag((6, 8, 8, 6, 4), edge_probability=0.35, max_in_degree=4, seed=1),
        r=6,
        game="prbp",
    )
    greedy_cost = solve(problem, solver="greedy").cost
    costs = {solve(problem, seed=s).cost for s in range(4)}
    assert all(cost <= greedy_cost for cost in costs)
