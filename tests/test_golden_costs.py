"""Golden-value regression tests: pinned optimal costs of the paper's instances.

Every value below was computed by the exhaustive solvers and cross-checked
against the paper's closed forms where one exists (Prop. 4.2 for Figure 1,
App. A.2 for the trees, Prop. 4.6/4.7 for the gadgets).  A solver refactor
that changes any of these numbers is changing *optima*, not implementation
detail — these tests make that impossible to do silently.
"""

import pytest

from repro.api import PebblingProblem, solve
from repro.dags.gadgets import (
    chained_gadget_dag,
    figure1_gadget,
    pebble_collection_instance,
    zipper_instance,
)
from repro.dags.trees import kary_tree_dag, optimal_prbp_tree_cost, optimal_rbp_tree_cost

#: (label, DAG factory, r, golden OPT_RBP, golden OPT_PRBP)
GOLDEN = [
    ("figure1-r4", lambda: figure1_gadget(), 4, 3, 2),
    ("figure1-r5", lambda: figure1_gadget(), 5, 2, 2),
    ("tree-k2-d2-critical", lambda: kary_tree_dag(2, 2), 3, 7, 5),
    ("tree-k3-d2-critical", lambda: kary_tree_dag(3, 2), 4, 14, 10),
    ("zipper-d2-l2", lambda: zipper_instance(2, 2).dag, 4, 5, 5),
    ("zipper-d3-l2", lambda: zipper_instance(3, 2).dag, 5, 7, 7),
    ("collection-d2-l2", lambda: pebble_collection_instance(2, 2).dag, 4, 3, 3),
    ("collection-d2-l3", lambda: pebble_collection_instance(2, 3).dag, 4, 3, 3),
    ("chained-gadget-1", lambda: chained_gadget_dag(1), 4, 3, 2),
]


@pytest.mark.parametrize("label, factory, r, opt_rbp, opt_prbp", GOLDEN, ids=[g[0] for g in GOLDEN])
def test_pinned_optimal_costs(label, factory, r, opt_rbp, opt_prbp):
    dag = factory()
    for game, golden in (("rbp", opt_rbp), ("prbp", opt_prbp)):
        result = solve(PebblingProblem(dag, r, game=game), solver="exhaustive")
        assert result.exact_solver
        assert result.cost == golden, (
            f"{label}: OPT_{game.upper()} changed from the pinned {golden} to {result.cost}"
        )


@pytest.mark.parametrize("label, factory, r, opt_rbp, opt_prbp", GOLDEN, ids=[g[0] for g in GOLDEN])
def test_prbp_never_exceeds_rbp(label, factory, r, opt_rbp, opt_prbp):
    # Proposition 4.1 instantiated on the golden set — a broken pin that
    # violated it would be a transcription error, not a measurement.
    assert opt_prbp <= opt_rbp


def test_figure1_matches_proposition_42():
    # The paper's opening example: partial computations save exactly one I/O.
    dag = figure1_gadget()
    rbp = solve(PebblingProblem(dag, 4, game="rbp"), solver="exhaustive")
    prbp = solve(PebblingProblem(dag, 4, game="prbp"), solver="exhaustive")
    assert (rbp.cost, prbp.cost) == (3, 2)


@pytest.mark.parametrize("k, depth", [(2, 2), (2, 3), (3, 2)])
def test_tree_closed_forms_match_pinned_search(k, depth):
    # Appendix A.2 closed forms agree with exhaustive search at the critical
    # capacity r = k + 1 (for sizes the search can handle).
    dag = kary_tree_dag(k, depth)
    r = k + 1
    rbp = solve(PebblingProblem(dag, r, game="rbp"), solver="exhaustive")
    prbp = solve(PebblingProblem(dag, r, game="prbp"), solver="exhaustive")
    assert rbp.cost == optimal_rbp_tree_cost(k, depth)
    assert prbp.cost == optimal_prbp_tree_cost(k, depth)
