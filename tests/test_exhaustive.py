"""Tests for the exact solvers, reproducing the paper's small-instance claims."""

import pytest

from repro.core.exceptions import SolverError
from repro.core.variants import GameVariant, NO_DELETE, RECOMPUTE, SLIDING
from repro.dags import (
    binary_tree_instance,
    chained_gadget_instance,
    figure1_instance,
    kary_tree_instance,
    pebble_collection_instance,
    random_layered_dag,
)
from repro.dags.trees import optimal_prbp_tree_cost, optimal_rbp_tree_cost
from repro.solvers.exhaustive import (
    optimal_prbp_cost,
    optimal_prbp_schedule,
    optimal_rbp_cost,
    optimal_rbp_schedule,
)


class TestProposition42:
    """Figure 1 at r = 4: OPT_RBP = 3, OPT_PRBP = 2."""

    def test_rbp_optimum(self):
        dag = figure1_instance().dag
        assert optimal_rbp_cost(dag, 4) == 3

    def test_prbp_optimum(self):
        dag = figure1_instance().dag
        assert optimal_prbp_cost(dag, 4) == 2

    def test_schedules_are_valid_and_match_cost(self):
        dag = figure1_instance().dag
        rbp_schedule = optimal_rbp_schedule(dag, 4)
        prbp_schedule = optimal_prbp_schedule(dag, 4)
        assert rbp_schedule.cost() == 3
        assert prbp_schedule.cost() == 2
        assert rbp_schedule.stats().peak_red <= 4
        assert prbp_schedule.stats().peak_red <= 4

    def test_larger_cache_removes_the_gap(self):
        # with r = 5 the RBP strategy can keep u1 and u2 alive simultaneously
        dag = figure1_instance().dag
        assert optimal_rbp_cost(dag, 5) == 2
        assert optimal_prbp_cost(dag, 5) == 2


class TestTreesSmall:
    def test_binary_depth2(self):
        inst = binary_tree_instance(2)
        assert optimal_rbp_cost(inst.dag, 3) == optimal_rbp_tree_cost(2, 2)
        assert optimal_prbp_cost(inst.dag, 3) == optimal_prbp_tree_cost(2, 2)

    def test_binary_depth3_prbp_beats_rbp(self):
        inst = binary_tree_instance(3)
        rbp = optimal_rbp_cost(inst.dag, 3)
        prbp = optimal_prbp_cost(inst.dag, 3)
        assert rbp == optimal_rbp_tree_cost(2, 3) == 15
        assert prbp == optimal_prbp_tree_cost(2, 3) == 11
        assert prbp < rbp

    def test_ternary_depth2(self):
        inst = kary_tree_instance(3, 2)
        assert optimal_rbp_cost(inst.dag, 4) == optimal_rbp_tree_cost(3, 2)
        # depth < k: PRBP only pays the trivial cost
        assert optimal_prbp_cost(inst.dag, 4) == optimal_prbp_tree_cost(3, 2) == 10


class TestSmallGadgets:
    def test_collection_gadget_trivial_with_full_pebbles(self):
        inst = pebble_collection_instance(d=2, length=6)
        assert optimal_rbp_cost(inst.dag, 4) == inst.dag.trivial_cost()
        assert optimal_prbp_cost(inst.dag, 4) == inst.dag.trivial_cost()

    def test_collection_gadget_costs_more_with_fewer_pebbles(self):
        inst = pebble_collection_instance(d=2, length=6)
        assert optimal_prbp_cost(inst.dag, 3) > inst.dag.trivial_cost()

    def test_single_chained_copy_matches_figure1_behaviour(self):
        inst = chained_gadget_instance(1)
        assert optimal_prbp_cost(inst.dag, 4) == 2
        assert optimal_rbp_cost(inst.dag, 4) >= 3

    def test_proposition41_on_random_small_dags(self):
        # OPT_PRBP <= OPT_RBP whenever both are defined
        for seed in range(4):
            dag = random_layered_dag([2, 3, 2], edge_probability=0.4, max_in_degree=2, seed=seed)
            r = dag.max_in_degree + 1
            assert optimal_prbp_cost(dag, r) <= optimal_rbp_cost(dag, r)


class TestInfeasibilityAndLimits:
    def test_rbp_infeasible_when_r_too_small(self):
        dag = figure1_instance().dag
        with pytest.raises(SolverError):
            optimal_rbp_cost(dag, 2)

    def test_prbp_needs_two_pebbles(self):
        dag = figure1_instance().dag
        with pytest.raises(SolverError):
            optimal_prbp_cost(dag, 1)

    def test_state_budget_is_enforced(self):
        inst = binary_tree_instance(3)
        with pytest.raises(SolverError):
            optimal_rbp_cost(inst.dag, 3, max_states=5)

    def test_prbp_solver_rejects_recompute_variant(self):
        dag = figure1_instance().dag
        with pytest.raises(SolverError):
            optimal_prbp_cost(dag, 4, variant=RECOMPUTE)


class TestVariantOptimality:
    """Appendix B: behaviour of the model variants on the Figure 1 family."""

    def test_recomputation_helps_rbp_on_figure1(self):
        dag = figure1_instance().dag
        assert optimal_rbp_cost(dag, 4, variant=RECOMPUTE) == 2

    def test_z_layer_restores_the_gap_under_recomputation(self):
        inst = figure1_instance(with_z_layer=True)
        assert optimal_rbp_cost(inst.dag, 4, variant=RECOMPUTE) == 3
        assert optimal_prbp_cost(inst.dag, 4) == 2

    def test_sliding_helps_rbp_on_figure1(self):
        dag = figure1_instance().dag
        assert optimal_rbp_cost(dag, 4, variant=SLIDING) == 2

    def test_w0_node_restores_the_gap_under_sliding(self):
        inst = figure1_instance(with_w0=True)
        assert optimal_rbp_cost(inst.dag, 4, variant=SLIDING) == 3
        assert optimal_prbp_cost(inst.dag, 4) == 2

    def test_no_delete_lower_bound(self):
        # Appendix B.4: without deletion, OPT_PRBP >= n - r
        inst = binary_tree_instance(2)
        dag = inst.dag
        r = 3
        cost = optimal_prbp_cost(dag, r, variant=NO_DELETE)
        assert cost >= dag.n - r
        assert cost >= optimal_prbp_cost(dag, r)

    def test_compute_costs_added_to_total(self):
        dag = figure1_instance().dag
        schedule = optimal_rbp_schedule(dag, 4, variant=GameVariant(compute_cost=0.125))
        stats = schedule.stats()
        assert stats.io_cost == 3
        assert stats.total_cost == pytest.approx(3 + 0.125 * stats.computes)


class TestBitHelpers:
    def test_popcount_matches_reference_on_wide_masks(self):
        from repro.solvers.exhaustive import _popcount

        cases = [0, 1, 2, 3, (1 << 63) - 1, 1 << 63, (1 << 200) | (1 << 7) | 1]
        rng_like = 0x9E3779B97F4A7C15
        for k in range(64):
            cases.append((rng_like * (k + 1)) & ((1 << 128) - 1))
        for x in cases:
            assert _popcount(x) == bin(x).count("1")


class TestRootBoundMemo:
    """The root-bound memo keys on content digests, never on DAG identity."""

    def _default_variant(self):
        from repro.core.variants import GameVariant

        return GameVariant()

    def test_cache_holds_scalars_keyed_by_digest_not_dags(self):
        from repro.solvers import exhaustive
        from repro.solvers.exhaustive import root_lower_bound, root_lower_bound_cache_clear

        root_lower_bound_cache_clear()
        dag = binary_tree_instance(3).dag
        r = 2
        variant = self._default_variant()
        bound = root_lower_bound(dag, r, "rbp", variant)
        assert bound >= 1
        assert len(exhaustive._root_bound_cache) == 1
        for key, value in exhaustive._root_bound_cache.items():
            digest, key_r, game, key_variant = key
            # nothing in the memo references the DAG object: a resident
            # daemon must not pin graphs for the life of the process
            assert isinstance(digest, str) and isinstance(value, int)
            assert (key_r, game, key_variant) == (r, "rbp", variant)
        root_lower_bound_cache_clear()
        assert len(exhaustive._root_bound_cache) == 0

    def test_structurally_equal_dags_share_one_entry(self):
        from repro.solvers import exhaustive
        from repro.solvers.exhaustive import root_lower_bound, root_lower_bound_cache_clear

        root_lower_bound_cache_clear()
        dag_a = binary_tree_instance(3).dag
        dag_b = binary_tree_instance(3).dag
        r = 2
        assert dag_a is not dag_b
        variant = self._default_variant()
        first = root_lower_bound(dag_a, r, "rbp", variant)
        second = root_lower_bound(dag_b, r, "rbp", variant)
        assert first == second
        # identity-keyed lru_cache (the old behaviour) would store two
        assert len(exhaustive._root_bound_cache) == 1
        root_lower_bound_cache_clear()

    def test_lru_turnover_bounds_the_memo(self, monkeypatch):
        from repro.solvers import exhaustive
        from repro.solvers.exhaustive import root_lower_bound, root_lower_bound_cache_clear

        root_lower_bound_cache_clear()
        monkeypatch.setattr(exhaustive, "ROOT_BOUND_CACHE_SIZE", 3)
        dag = binary_tree_instance(3).dag
        variant = self._default_variant()
        for r in (2, 3, 4, 5, 6):
            root_lower_bound(dag, r, "rbp", variant)
        assert len(exhaustive._root_bound_cache) == 3
        keys = list(exhaustive._root_bound_cache)
        assert [key[1] for key in keys] == [4, 5, 6]  # oldest r evicted first
        root_lower_bound_cache_clear()
