"""Property-based tests (hypothesis) for the engines, solvers and the extraction lemmas.

The generators build random layered DAGs with bounded degrees, so the
exhaustive solvers stay fast and the greedy solvers always have a feasible
capacity to work with.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bounds.partitions import (
    dominator_partition_from_prbp_schedule,
    edge_partition_from_prbp_schedule,
    spartition_from_rbp_schedule,
)
from repro.core.conversion import convert_rbp_to_prbp
from repro.dags.random_dags import random_dag, random_layered_dag
from repro.solvers.baselines import naive_prbp_schedule
from repro.solvers.exhaustive import optimal_prbp_cost, optimal_rbp_cost
from repro.solvers.greedy import greedy_rbp_schedule, topological_prbp_schedule

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@st.composite
def layered_dags(draw, max_layer=4, max_width=4):
    """A random layered DAG with in-degree at most 3 and a deterministic seed."""
    n_layers = draw(st.integers(min_value=2, max_value=max_layer))
    sizes = [draw(st.integers(min_value=1, max_value=max_width)) for _ in range(n_layers)]
    prob = draw(st.floats(min_value=0.1, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_layered_dag(sizes, edge_probability=prob, max_in_degree=3, seed=seed)


@st.composite
def small_dags(draw):
    """A small unstructured random DAG suitable for the exhaustive solvers."""
    n = draw(st.integers(min_value=2, max_value=7))
    prob = draw(st.floats(min_value=0.1, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_dag(n, edge_probability=prob, seed=seed)


class TestGreedyStrategiesAlwaysValid:
    @SETTINGS
    @given(dag=layered_dags(), r=st.integers(min_value=2, max_value=6))
    def test_topological_prbp_is_valid_and_bounded(self, dag, r):
        schedule = topological_prbp_schedule(dag, r)
        game = schedule.validate()
        assert game.is_terminal()
        assert schedule.stats().peak_red <= r
        assert game.io_cost >= dag.trivial_cost()

    @SETTINGS
    @given(dag=layered_dags(), extra=st.integers(min_value=0, max_value=3))
    def test_greedy_rbp_is_valid_and_bounded(self, dag, extra):
        r = dag.max_in_degree + 1 + extra
        schedule = greedy_rbp_schedule(dag, r)
        game = schedule.validate()
        assert game.is_terminal()
        assert schedule.stats().peak_red <= r
        assert game.io_cost >= dag.trivial_cost()

    @SETTINGS
    @given(dag=layered_dags())
    def test_naive_prbp_upper_bound(self, dag):
        schedule = naive_prbp_schedule(dag)
        assert schedule.validate().is_terminal()
        assert schedule.cost() <= 3 * dag.m + dag.n


class TestProposition41:
    @SETTINGS
    @given(dag=layered_dags(), extra=st.integers(min_value=0, max_value=2))
    def test_conversion_preserves_cost_and_validity(self, dag, extra):
        r = dag.max_in_degree + 1 + extra
        rbp_schedule = greedy_rbp_schedule(dag, r)
        prbp_schedule = convert_rbp_to_prbp(rbp_schedule)
        assert prbp_schedule.validate().io_cost == rbp_schedule.cost()

    @SETTINGS
    @given(dag=small_dags())
    def test_opt_prbp_never_exceeds_opt_rbp(self, dag):
        r = dag.max_in_degree + 1
        rbp = optimal_rbp_cost(dag, r, max_states=200_000)
        prbp = optimal_prbp_cost(dag, r, max_states=200_000)
        assert prbp <= rbp
        assert prbp >= dag.trivial_cost()


class TestExtractionLemmasProperty:
    @SETTINGS
    @given(dag=layered_dags(), r=st.integers(min_value=2, max_value=5))
    def test_prbp_schedule_yields_valid_partitions(self, dag, r):
        schedule = topological_prbp_schedule(dag, r)
        edge_partition_from_prbp_schedule(schedule).verify()
        dominator_partition_from_prbp_schedule(schedule).verify()

    @SETTINGS
    @given(dag=layered_dags(), extra=st.integers(min_value=0, max_value=2))
    def test_rbp_schedule_yields_valid_spartition(self, dag, extra):
        r = dag.max_in_degree + 1 + extra
        schedule = greedy_rbp_schedule(dag, r)
        spartition_from_rbp_schedule(schedule).verify()


class TestMonotonicityProperties:
    @SETTINGS
    @given(dag=small_dags())
    def test_more_memory_never_hurts_prbp(self, dag):
        r = max(2, dag.max_in_degree + 1)
        small = optimal_prbp_cost(dag, r, max_states=200_000)
        large = optimal_prbp_cost(dag, r + 2, max_states=200_000)
        assert large <= small

    @SETTINGS
    @given(dag=small_dags())
    def test_optimum_is_at_least_trivial_and_at_most_naive(self, dag):
        r = max(2, dag.max_in_degree + 1)
        opt = optimal_prbp_cost(dag, r, max_states=200_000)
        assert dag.trivial_cost() <= opt <= naive_prbp_schedule(dag, 2).cost()
