"""Unit tests for the RBP engine (rules, variants, validation helpers)."""

import pytest

from repro.core.dag import ComputationalDAG
from repro.core.exceptions import CapacityExceededError, IllegalMoveError, IncompletePebblingError
from repro.core.moves import MoveKind, RBPMove, rbp
from repro.core.rbp import RBPGame, is_valid_rbp_schedule, rbp_schedule_cost, run_rbp_schedule
from repro.core.variants import GameVariant, NO_DELETE, RECOMPUTE, SLIDING


def chain3() -> ComputationalDAG:
    # 0 -> 1 -> 2
    return ComputationalDAG(3, [(0, 1), (1, 2)], name="chain3")


def diamond() -> ComputationalDAG:
    return ComputationalDAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)], name="diamond")


class TestBasicRules:
    def test_initial_state(self):
        game = RBPGame(chain3(), r=2)
        assert game.blue == {0}
        assert game.red == set()
        assert game.io_cost == 0
        assert not game.is_terminal()

    def test_full_pebbling_of_chain(self):
        dag = chain3()
        moves = [rbp.load(0), rbp.compute(1), rbp.delete(0), rbp.compute(2), rbp.save(2)]
        game = run_rbp_schedule(dag, 2, moves)
        assert game.io_cost == 2
        assert game.is_terminal()

    def test_load_requires_blue(self):
        game = RBPGame(chain3(), r=2)
        with pytest.raises(IllegalMoveError):
            game.apply(rbp.load(1))

    def test_save_requires_red(self):
        game = RBPGame(chain3(), r=2)
        with pytest.raises(IllegalMoveError):
            game.apply(rbp.save(0))

    def test_compute_requires_all_inputs_red(self):
        game = RBPGame(diamond(), r=4)
        game.apply(rbp.load(0))
        game.apply(rbp.compute(1))
        with pytest.raises(IllegalMoveError):
            game.apply(rbp.compute(3))  # node 2 not red yet

    def test_compute_source_is_illegal(self):
        game = RBPGame(chain3(), r=2)
        with pytest.raises(IllegalMoveError):
            game.apply(rbp.compute(0))

    def test_delete_requires_red(self):
        game = RBPGame(chain3(), r=2)
        with pytest.raises(IllegalMoveError):
            game.apply(rbp.delete(0))

    def test_capacity_enforced(self):
        game = RBPGame(diamond(), r=2)
        game.apply(rbp.load(0))
        game.apply(rbp.compute(1))
        with pytest.raises(CapacityExceededError):
            game.apply(rbp.compute(2))

    def test_one_shot_forbids_recompute(self):
        game = RBPGame(chain3(), r=3)
        game.apply(rbp.load(0))
        game.apply(rbp.compute(1))
        with pytest.raises(IllegalMoveError):
            game.apply(rbp.compute(1))

    def test_unknown_node_rejected(self):
        game = RBPGame(chain3(), r=2)
        with pytest.raises(IllegalMoveError):
            game.apply(rbp.load(17))

    def test_r_must_be_positive(self):
        with pytest.raises(ValueError):
            RBPGame(chain3(), r=0)

    def test_isolated_node_rejected_at_game_start(self):
        dag = ComputationalDAG(3, [(0, 1)])
        with pytest.raises(Exception):
            RBPGame(dag, r=2)


class TestTerminalAndHelpers:
    def test_incomplete_pebbling_detected(self):
        dag = chain3()
        moves = [rbp.load(0), rbp.compute(1), rbp.delete(0), rbp.compute(2)]
        with pytest.raises(IncompletePebblingError):
            run_rbp_schedule(dag, 2, moves)

    def test_is_valid_helpers(self):
        dag = chain3()
        good = [rbp.load(0), rbp.compute(1), rbp.delete(0), rbp.compute(2), rbp.save(2)]
        bad = good[:-1]
        assert is_valid_rbp_schedule(dag, 2, good)
        assert not is_valid_rbp_schedule(dag, 2, bad)
        assert rbp_schedule_cost(dag, 2, good) == 2

    def test_copy_is_independent(self):
        game = RBPGame(chain3(), r=2)
        game.apply(rbp.load(0))
        clone = game.copy()
        clone.apply(rbp.compute(1))
        assert 1 in clone.red and 1 not in game.red
        assert clone.io_cost == game.io_cost

    def test_legal_moves_contains_only_legal_moves(self):
        game = RBPGame(diamond(), r=3)
        game.apply(rbp.load(0))
        for mv in game.legal_moves():
            game.copy().apply(mv)

    def test_history_recording(self):
        game = RBPGame(chain3(), r=2)
        game.apply(rbp.load(0))
        assert game.history == [rbp.load(0)]
        no_hist = RBPGame(chain3(), r=2, record_history=False)
        no_hist.apply(rbp.load(0))
        assert no_hist.history is None


class TestVariants:
    def test_sliding_compute_moves_pebble(self):
        game = RBPGame(chain3(), r=1, variant=SLIDING)
        game.apply(rbp.load(0))
        game.apply(rbp.compute(1, slide_from=0))
        assert game.red == {1}
        assert 0 not in game.red

    def test_sliding_requires_variant(self):
        game = RBPGame(chain3(), r=2)
        game.apply(rbp.load(0))
        with pytest.raises(IllegalMoveError):
            game.apply(rbp.compute(1, slide_from=0))

    def test_sliding_from_non_input_rejected(self):
        game = RBPGame(diamond(), r=4, variant=SLIDING)
        game.apply(rbp.load(0))
        game.apply(rbp.compute(1))
        with pytest.raises(IllegalMoveError):
            game.apply(rbp.compute(2, slide_from=1))

    def test_recompute_variant_allows_second_compute(self):
        game = RBPGame(chain3(), r=3, variant=RECOMPUTE)
        game.apply(rbp.load(0))
        game.apply(rbp.compute(1))
        game.apply(rbp.delete(1))
        game.apply(rbp.compute(1))
        assert 1 in game.red

    def test_no_delete_variant(self):
        game = RBPGame(chain3(), r=3, variant=NO_DELETE)
        game.apply(rbp.load(0))
        with pytest.raises(IllegalMoveError):
            game.apply(rbp.delete(0))
        # in this variant a save removes the red pebble
        game.apply(rbp.save(0))
        assert 0 not in game.red and 0 in game.blue

    def test_compute_cost_accounting(self):
        variant = GameVariant(compute_cost=0.25)
        dag = chain3()
        moves = [rbp.load(0), rbp.compute(1), rbp.compute(2), rbp.save(2)]
        game = run_rbp_schedule(dag, 3, moves, variant=variant)
        assert game.io_cost == 2
        assert game.total_cost == pytest.approx(2 + 2 * 0.25)

    def test_negative_compute_cost_rejected(self):
        with pytest.raises(ValueError):
            GameVariant(compute_cost=-1.0)

    def test_variant_describe(self):
        assert "one-shot" in GameVariant().describe()
        assert "sliding" in SLIDING.describe()
        assert "no-deletion" in NO_DELETE.describe()
        assert "re-computation" in RECOMPUTE.describe()


class TestMoveDataclasses:
    def test_slide_from_only_for_compute(self):
        with pytest.raises(ValueError):
            RBPMove(MoveKind.LOAD, 0, slide_from=1)

    def test_str_representations(self):
        assert "load 3" in str(rbp.load(3))
        assert "slide" in str(rbp.compute(2, slide_from=1))
        assert rbp.save(1).is_io and not rbp.delete(1).is_io
