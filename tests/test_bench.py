"""Tests for the ``repro.bench`` performance subsystem.

Covers the scenario registry (lookup, tier filtering, validation), the
runner on tiny scenarios (including the error and expectation-mismatch
paths), the schema-versioned json report round-trip, the baseline
comparator's pass/fail behaviour, the CLI exit codes, and the
``SolveStats`` hooks the runner consumes.
"""

import json

import pytest

from repro.api import PebblingProblem, solve
from repro.bench import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    BenchScenario,
    ScenarioRecord,
    ScenarioTier,
    build_report,
    compare_reports,
    get_scenario,
    iter_scenarios,
    load_report,
    register_scenario,
    report_records,
    run_scenario,
    run_suite,
    scenario_groups,
    scenario_names,
    unregister_scenario,
    write_report,
)
from repro.bench.__main__ import main as _bench_cli
from repro.dags import figure1_gadget


# --------------------------------------------------------------------------- #
# registry: lookup, filtering, validation
# --------------------------------------------------------------------------- #


class TestRegistry:
    def test_builtin_registry_covers_every_benchmark_group(self):
        groups = scenario_groups()
        for expected in [
            "prop4.2",
            "prop4.3",
            "prop4.4",
            "prop4.5",
            "prop4.6",
            "prop4.7",
            "thm4.8",
            "lemma5.4",
            "thm6.9",
            "thm6.10",
            "thm6.11",
            "thm7.1",
            "appB",
            "machinery",
            "anytime",
            "schedule-ir",
        ]:
            assert expected in groups

    def test_at_least_twelve_scenarios(self):
        assert len(iter_scenarios()) >= 12

    def test_get_scenario_roundtrip(self):
        scenario = get_scenario("fig1-prbp-optimal")
        assert scenario.group == "prop4.2"
        assert scenario.game == "prbp"

    def test_get_unknown_scenario_lists_names(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does-not-exist")

    def test_iter_scenarios_group_filter(self):
        records = iter_scenarios(group="prop4.2")
        assert records and all(s.group == "prop4.2" for s in records)

    def test_iter_scenarios_groups_and_game_filters(self):
        both = iter_scenarios(groups=["prop4.2", "prop4.5"])
        assert {s.group for s in both} == {"prop4.2", "prop4.5"}
        rbp_only = iter_scenarios(groups=["prop4.2", "prop4.5"], game="rbp")
        assert rbp_only and all(s.game == "rbp" for s in rbp_only)

    def test_scenario_names_sorted_by_group_then_name(self):
        names = scenario_names()
        assert names == [s.name for s in iter_scenarios()]

    def test_every_scenario_has_both_tiers(self):
        for scenario in iter_scenarios():
            assert set(scenario.tiers) == {"quick", "full"}

    def test_unknown_tier_raises_with_choices(self):
        with pytest.raises(KeyError, match="no tier"):
            get_scenario("fig1-prbp-optimal").tier("huge")

    def test_build_problem_materialises_the_tier(self):
        problem = get_scenario("fig1-prbp-optimal").build_problem("quick")
        assert isinstance(problem, PebblingProblem)
        assert problem.n == figure1_gadget().n
        assert problem.r == 4

    def test_scenario_requires_all_tiers(self):
        with pytest.raises(ValueError, match="missing tiers"):
            BenchScenario(
                name="incomplete",
                group="test",
                title="",
                dag_factory=figure1_gadget,
                tiers={"quick": ScenarioTier(dag_args=(), r=4)},
            )

    def test_scenario_rejects_unknown_game(self):
        with pytest.raises(ValueError, match="game"):
            BenchScenario(
                name="bad-game",
                group="test",
                title="",
                dag_factory=figure1_gadget,
                game="chess",
                tiers={
                    "quick": ScenarioTier(dag_args=(), r=4),
                    "full": ScenarioTier(dag_args=(), r=4),
                },
            )

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("fig1-prbp-optimal")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(scenario)

    def test_callable_capacity_resolves_against_the_dag(self):
        spec = ScenarioTier(dag_args=(), r=lambda dag: dag.max_in_degree + 1)
        assert spec.capacity(figure1_gadget()) == figure1_gadget().max_in_degree + 1


# --------------------------------------------------------------------------- #
# runner
# --------------------------------------------------------------------------- #


def _tiny_scenario(name, **overrides):
    kwargs = dict(
        name=name,
        group="test-group",
        title="tiny test scenario",
        dag_factory=figure1_gadget,
        game="prbp",
        tiers={
            "quick": ScenarioTier(dag_args=(), r=4, expected_cost=2),
            "full": ScenarioTier(dag_args=(), r=4, expected_cost=2),
        },
    )
    kwargs.update(overrides)
    return BenchScenario(**kwargs)


@pytest.fixture
def scratch_registry():
    """Register-and-cleanup helper so tests cannot pollute the global registry."""
    registered = []

    def add(scenario):
        register_scenario(scenario)
        registered.append(scenario.name)
        return scenario

    yield add
    for name in registered:
        unregister_scenario(name)


class TestRunner:
    def test_run_scenario_record_fields(self):
        record = run_scenario("fig1-prbp-optimal", tier="quick")
        assert record.ok and record.error is None
        assert record.scenario == "fig1-prbp-optimal"
        assert record.tier == "quick"
        assert record.io_cost == 2 and record.expected_ok is True
        assert record.lower_bound == 2 and record.gap == 0
        assert record.optimal is True
        assert record.wall_time_s is not None and record.wall_time_s > 0
        assert record.solver_used == "exhaustive"
        assert record.states_expanded is not None and record.states_expanded > 0
        assert record.n == 10 and record.r == 4

    def test_run_scenario_structured_solver_has_no_search_states(self):
        record = run_scenario("tree-prbp-critical", tier="quick")
        assert record.ok and record.solver_used == "tree"
        assert record.states_expanded is None

    def test_run_scenario_accepts_scenario_object_and_repeats(self):
        record = run_scenario(get_scenario("zipper-prbp"), tier="quick", repeats=3)
        assert record.ok and record.io_cost == 17

    def test_expectation_mismatch_is_a_failure_not_an_exception(self, scratch_registry):
        scratch_registry(
            _tiny_scenario(
                "test-wrong-expectation",
                tiers={
                    "quick": ScenarioTier(dag_args=(), r=4, expected_cost=999),
                    "full": ScenarioTier(dag_args=(), r=4, expected_cost=999),
                },
            )
        )
        record = run_scenario("test-wrong-expectation", tier="quick")
        assert record.error is None
        assert record.expected_ok is False and not record.ok

    def test_expect_optimal_failure(self, scratch_registry):
        # greedy on the collection gadget one pebble short is feasible but
        # provably non-optimal, so expect_optimal must flag it
        from repro.dags import pebble_collection_gadget

        scratch_registry(
            BenchScenario(
                name="test-not-optimal",
                group="test-group",
                title="",
                dag_factory=pebble_collection_gadget,
                game="prbp",
                expect_optimal=True,
                tiers={
                    "quick": ScenarioTier(dag_args=(3, 18), r=4),
                    "full": ScenarioTier(dag_args=(3, 18), r=4),
                },
            )
        )
        record = run_scenario("test-not-optimal", tier="quick")
        assert record.error is None and record.expected_ok is False

    def test_broken_factory_becomes_error_record(self, scratch_registry):
        def explode():
            raise RuntimeError("boom")

        scratch_registry(_tiny_scenario("test-broken-factory", dag_factory=explode))
        record = run_scenario("test-broken-factory", tier="quick")
        assert record.error is not None and "boom" in record.error
        assert not record.ok and record.io_cost is None

    def test_solver_failure_becomes_error_record(self, scratch_registry):
        # r=1 cannot pebble Figure 1 exhaustively nor greedily
        scratch_registry(
            _tiny_scenario(
                "test-infeasible",
                tiers={
                    "quick": ScenarioTier(dag_args=(), r=1),
                    "full": ScenarioTier(dag_args=(), r=1),
                },
            )
        )
        record = run_scenario("test-infeasible", tier="quick")
        assert record.error is not None and "solve() failed" in record.error
        assert record.n == 10  # the problem was built before the solver died

    def test_run_suite_group_filter(self):
        records = run_suite(tier="quick", groups=["prop4.2"])
        assert {rec.group for rec in records} == {"prop4.2"}
        assert all(rec.ok for rec in records)

    def test_run_suite_names_validated_eagerly(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_suite(tier="quick", names=["no-such-scenario"])

    def test_run_suite_progress_callback(self):
        seen = []
        run_suite(tier="quick", names=["fig1-appA1-prbp"], progress=seen.append)
        assert len(seen) == 1 and seen[0].scenario == "fig1-appA1-prbp"


# --------------------------------------------------------------------------- #
# custom runners & the replay-throughput microbenchmark
# --------------------------------------------------------------------------- #


class TestCustomRunner:
    def _record_for(self, scenario, tier, wall=0.5):
        return ScenarioRecord(
            scenario=scenario.name,
            group=scenario.group,
            tier=tier,
            game=scenario.game,
            variant=scenario.variant.describe(),
            solver_requested=scenario.solver,
            reference=scenario.reference,
            wall_time_s=wall,
            expected_ok=True,
        )

    def test_custom_runner_owns_the_whole_run(self, scratch_registry):
        calls = []

        def runner(scenario, tier, repeats):
            calls.append((scenario.name, tier, repeats))
            return self._record_for(scenario, tier)

        scratch_registry(_tiny_scenario("test-custom", custom_runner=runner))
        record = run_scenario("test-custom", tier="quick", repeats=7)
        assert calls == [("test-custom", "quick", 7)]
        assert record.ok and record.wall_time_s == 0.5

    def test_custom_runner_exception_becomes_error_record(self, scratch_registry):
        def runner(scenario, tier, repeats):
            raise RuntimeError("bench exploded")

        scratch_registry(_tiny_scenario("test-custom-broken", custom_runner=runner))
        record = run_scenario("test-custom-broken", tier="quick")
        assert record.error is not None and "bench exploded" in record.error
        assert not record.ok

    def test_custom_runner_bad_return_becomes_error_record(self, scratch_registry):
        scratch_registry(
            _tiny_scenario("test-custom-bad-return", custom_runner=lambda s, t, n: 42)
        )
        record = run_scenario("test-custom-bad-return", tier="quick")
        assert record.error is not None and "ScenarioRecord" in record.error

    def test_parallel_suite_routes_custom_scenarios_in_order(self, scratch_registry):
        scratch_registry(
            _tiny_scenario(
                "test-custom-parallel",
                custom_runner=lambda s, t, n: self._record_for(s, t, wall=0.25),
            )
        )
        names = ["fig1-appA1-prbp", "test-custom-parallel", "zipper-prbp"]
        records = run_suite(tier="quick", names=names, jobs=2)
        assert [rec.scenario for rec in records] == names
        assert records[1].wall_time_s == 0.25 and all(rec.ok for rec in records)


class TestReplayScenarios:
    def test_replay_scenarios_are_registered_with_custom_runners(self):
        for name in ("replay-throughput", "replay-throughput-prbp-scalar"):
            scenario = get_scenario(name)
            assert scenario.group == "schedule-ir"
            assert scenario.custom_runner is not None
            assert "min_speedup" in scenario.solve_options

    def test_replay_record_reports_throughput_and_speedup(self):
        # the smaller PRBP workload keeps the test cheap; the >= 10x RBP gate
        # itself is exercised by the bench-smoke --compare run, not here
        # (asserting a hard speedup in a shared-CI sandbox would be flaky)
        record = run_scenario("replay-throughput-prbp-scalar", tier="quick", repeats=1)
        assert record.error is None
        assert record.replay_speedup is not None and record.replay_speedup > 1.0
        assert record.replay_schedules_per_s and record.replay_schedules_per_s > 0
        assert record.replay_engine_schedules_per_s and record.replay_engine_schedules_per_s > 0
        assert record.io_cost and record.io_cost > 0
        assert record.moves and record.moves > 0
        assert record.solver_used == "replay-kernel"
        doc = record.to_dict()
        for key in (
            "replay_speedup",
            "replay_schedules_per_s",
            "replay_engine_schedules_per_s",
        ):
            assert key in doc


# --------------------------------------------------------------------------- #
# report: schema round-trip
# --------------------------------------------------------------------------- #


class TestReport:
    def _records(self):
        return [
            run_scenario("fig1-appA1-prbp", tier="quick"),
            run_scenario("zipper-prbp", tier="quick"),
        ]

    def test_roundtrip(self, tmp_path):
        report = build_report(self._records(), tier="quick", repeats=2)
        path = tmp_path / "BENCH_repro.json"
        write_report(report, path)
        loaded = load_report(path)
        assert loaded["schema"] == SCHEMA_NAME
        assert loaded["schema_version"] == SCHEMA_VERSION
        assert loaded["tier"] == "quick" and loaded["repeats"] == 2
        assert loaded["summary"]["scenarios"] == 2
        assert loaded["summary"]["failures"] == 0
        assert len(loaded["scenarios"]) == 2
        first = loaded["scenarios"][0]
        for key in ("scenario", "group", "wall_time_s", "io_cost", "lower_bound", "gap"):
            assert key in first
        assert loaded["env"]["python"]

    def test_summary_counts_failures(self):
        bad = ScenarioRecord(
            scenario="x",
            group="g",
            tier="quick",
            game="prbp",
            variant="one-shot",
            solver_requested="auto",
            reference="",
            error="kaput",
        )
        report = build_report([bad], tier="quick")
        assert report["summary"]["failures"] == 1
        assert report["summary"]["failed_scenarios"] == ["x"]

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else", "scenarios": []}))
        with pytest.raises(ValueError, match="not a"):
            load_report(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "vnext.json"
        path.write_text(
            json.dumps({"schema": SCHEMA_NAME, "schema_version": 99, "scenarios": []})
        )
        with pytest.raises(ValueError, match="schema_version"):
            load_report(path)

    def test_load_rejects_missing_scenarios(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"schema": SCHEMA_NAME, "schema_version": SCHEMA_VERSION}))
        with pytest.raises(ValueError, match="scenarios"):
            load_report(path)

    def test_load_accepts_version_1_baselines(self, tmp_path):
        # schema 2 added the refine_* fields; v1 documents (which lack them)
        # must stay loadable so --compare can gate against older baselines
        path = tmp_path / "v1.json"
        path.write_text(
            json.dumps(
                {
                    "schema": SCHEMA_NAME,
                    "schema_version": 1,
                    "scenarios": [{"scenario": "a", "tier": "quick", "io_cost": 5}],
                }
            )
        )
        doc = load_report(path)
        assert doc["schema_version"] == 1
        assert report_records(doc)[0].get("refine_initial_cost") is None

    def test_records_carry_refinement_trajectory_fields(self):
        # a scenario whose auto dispatch lands on greedy + refinement
        record = run_scenario("random-layered-sparse", tier="quick")
        assert record.error is None
        assert record.refine_initial_cost is not None
        assert record.refine_steps is not None and record.refine_steps > 0
        assert record.io_cost <= record.refine_initial_cost
        doc = record.to_dict()
        for key in (
            "refine_initial_cost",
            "refine_steps",
            "refine_accepted",
            "refine_time_to_best_s",
        ):
            assert key in doc

    def test_comparator_tolerates_v1_baseline_against_v2_run(self):
        baseline = {
            "schema": SCHEMA_NAME,
            "schema_version": 1,
            "scenarios": [_rec("a", cost=10)],
        }
        current = _doc([dict(_rec("a", cost=8), refine_initial_cost=10, refine_steps=96)])
        result = compare_reports(current, baseline)
        assert result.ok
        assert any("fell" in note for note in result.improvements)


# --------------------------------------------------------------------------- #
# comparator
# --------------------------------------------------------------------------- #


def _doc(records):
    return {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "scenarios": records,
    }


def _rec(name, wall=0.1, cost=10, error=None, expected_ok=True, tier="quick"):
    return {
        "scenario": name,
        "tier": tier,
        "wall_time_s": wall,
        "io_cost": cost,
        "error": error,
        "expected_ok": expected_ok,
    }


class TestComparator:
    def test_identical_reports_pass(self):
        doc = _doc([_rec("a"), _rec("b")])
        result = compare_reports(doc, doc)
        assert result.ok and not result.regressions

    def test_doctored_faster_baseline_fails_on_wall_time(self):
        current = _doc([_rec("a", wall=0.5)])
        baseline = _doc([_rec("a", wall=0.05)])
        result = compare_reports(current, baseline, threshold=1.25)
        assert not result.ok
        assert [r.kind for r in result.regressions] == ["wall-time"]

    def test_wall_time_noise_below_floor_is_ignored(self):
        current = _doc([_rec("a", wall=0.004)])
        baseline = _doc([_rec("a", wall=0.0005)])  # 8x, but both sub-floor
        result = compare_reports(current, baseline, threshold=1.25)
        assert result.ok

    def test_any_cost_increase_fails(self):
        current = _doc([_rec("a", cost=11)])
        baseline = _doc([_rec("a", cost=10)])
        result = compare_reports(current, baseline)
        assert not result.ok
        assert result.regressions[0].kind == "io-cost"

    def test_cost_decrease_is_an_improvement(self):
        current = _doc([_rec("a", cost=9)])
        baseline = _doc([_rec("a", cost=10)])
        result = compare_reports(current, baseline)
        assert result.ok and result.improvements

    def test_new_failure_fails(self):
        current = _doc([_rec("a", error="exploded")])
        baseline = _doc([_rec("a")])
        result = compare_reports(current, baseline)
        assert not result.ok and result.regressions[0].kind == "failure"

    def test_already_failing_baseline_is_skipped(self):
        current = _doc([_rec("a", error="still broken")])
        baseline = _doc([_rec("a", error="was broken")])
        result = compare_reports(current, baseline)
        assert result.ok and result.skipped

    def test_missing_scenario_fails(self):
        current = _doc([_rec("a")])
        baseline = _doc([_rec("a"), _rec("gone")])
        result = compare_reports(current, baseline)
        assert not result.ok and result.regressions[0].kind == "missing"

    def test_new_scenario_is_informational(self):
        current = _doc([_rec("a"), _rec("new")])
        baseline = _doc([_rec("a")])
        result = compare_reports(current, baseline)
        assert result.ok and any("new scenario" in note for note in result.skipped)

    def test_threshold_below_one_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_reports(_doc([]), _doc([]), threshold=0.8)

    def test_describe_lists_findings(self):
        current = _doc([_rec("a", cost=11)])
        baseline = _doc([_rec("a", cost=10)])
        text = compare_reports(current, baseline).describe()
        assert "REGRESSION" in text and "io-cost" in text


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


class TestCLI:
    def test_list_exits_zero(self, capsys):
        assert _bench_cli(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig1-prbp-optimal" in out

    def test_run_writes_report_and_exits_zero(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_repro.json"
        code = _bench_cli(
            ["--quick", "--scenario", "fig1-appA1-prbp", "--output", str(out_path)]
        )
        assert code == 0
        doc = load_report(out_path)
        assert doc["summary"]["scenarios"] == 1

    def test_no_matching_scenarios_exits_one(self, capsys):
        assert _bench_cli(["--group", "no-such-group"]) == 1

    def test_compare_against_doctored_baseline_exits_two(self, tmp_path, capsys):
        out_path = tmp_path / "current.json"
        assert (
            _bench_cli(
                ["--quick", "--scenario", "zipper-prbp", "--output", str(out_path)]
            )
            == 0
        )
        doc = json.loads(out_path.read_text())
        doc["scenarios"][0]["wall_time_s"] /= 1000.0  # impossibly fast baseline
        doc["scenarios"][0]["io_cost"] -= 1  # and cheaper, too
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(doc))
        code = _bench_cli(
            [
                "--input",
                str(out_path),
                "--compare",
                str(baseline_path),
                "--threshold",
                "1.25",
            ]
        )
        assert code == 2

    def test_compare_against_self_exits_zero(self, tmp_path, capsys):
        out_path = tmp_path / "current.json"
        _bench_cli(["--quick", "--scenario", "zipper-prbp", "--output", str(out_path)])
        assert _bench_cli(["--input", str(out_path), "--compare", str(out_path)]) == 0


# --------------------------------------------------------------------------- #
# SolveStats hooks (the api-side half of the runner contract)
# --------------------------------------------------------------------------- #


class TestSolveStats:
    def test_exhaustive_result_carries_search_counters(self):
        result = solve(PebblingProblem(figure1_gadget(), 4, game="prbp"))
        stats = result.solve_stats
        assert stats is not None and stats.wall_time_s > 0
        assert stats.states_expanded > 0
        assert stats.states_frontier_peak >= 1

    def test_non_search_solver_has_no_counters(self):
        result = solve(
            PebblingProblem(figure1_gadget(), 4, game="prbp"), solver="figure1"
        )
        stats = result.solve_stats
        assert stats is not None and stats.wall_time_s > 0
        assert stats.states_expanded is None
        assert stats.states_frontier_peak is None
