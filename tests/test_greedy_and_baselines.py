"""Tests for the greedy pebblers and the naive baselines."""

import pytest

from repro.core.exceptions import SolverError
from repro.dags import (
    binary_tree_instance,
    fft_instance,
    figure1_instance,
    matvec_instance,
    random_layered_dag,
    zipper_instance,
)
from repro.solvers.baselines import naive_prbp_schedule, naive_rbp_schedule
from repro.solvers.greedy import greedy_rbp_schedule, topological_prbp_schedule


class TestTopologicalPRBP:
    @pytest.mark.parametrize("r", [2, 3, 4, 8])
    def test_valid_for_any_r_at_least_2(self, r):
        dag = figure1_instance().dag
        schedule = topological_prbp_schedule(dag, r)
        assert schedule.validate().is_terminal()
        assert schedule.stats().peak_red <= r
        assert schedule.cost() >= dag.trivial_cost()

    def test_rejects_r1(self):
        with pytest.raises(SolverError):
            topological_prbp_schedule(figure1_instance().dag, 1)

    def test_larger_cache_never_hurts_much(self):
        dag = fft_instance(8).dag
        small = topological_prbp_schedule(dag, 2).cost()
        large = topological_prbp_schedule(dag, 16).cost()
        assert large <= small

    def test_custom_topological_order_is_validated(self):
        dag = figure1_instance().dag
        bad_order = list(reversed(dag.topological_order))
        with pytest.raises(ValueError):
            topological_prbp_schedule(dag, 4, topo_order=bad_order)

    def test_custom_order_can_match_structured_cost(self):
        # the matvec column-streaming order drives the greedy pebbler to the
        # trivial cost just like the hand-written strategy
        inst = matvec_instance(3)
        m = inst.m
        order = []
        for i in range(m):
            order.append(inst.x(i))
        for j in range(m):
            for i in range(m):
                order.append(inst.a(j, i))
        order += [inst.product(j, i) for i in range(m) for j in range(m)]
        order += [inst.y(j) for j in range(m)]
        # fall back: the default order also yields a valid schedule
        schedule = topological_prbp_schedule(inst.dag, m + 3)
        assert schedule.validate().is_terminal()

    @pytest.mark.parametrize("seed", range(6))
    def test_random_layered_dags(self, seed):
        dag = random_layered_dag([3, 5, 4, 2], edge_probability=0.3, seed=seed)
        schedule = topological_prbp_schedule(dag, 3)
        assert schedule.validate().is_terminal()
        assert schedule.stats().peak_red <= 3


class TestGreedyRBP:
    def test_valid_and_within_capacity(self):
        dag = figure1_instance().dag
        schedule = greedy_rbp_schedule(dag, 4)
        assert schedule.validate().is_terminal()
        assert schedule.stats().peak_red <= 4

    def test_rejects_too_small_r(self):
        with pytest.raises(SolverError):
            greedy_rbp_schedule(figure1_instance().dag, 2)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_layered_dags(self, seed):
        dag = random_layered_dag([4, 5, 3], edge_probability=0.4, max_in_degree=3, seed=seed)
        r = dag.max_in_degree + 1
        schedule = greedy_rbp_schedule(dag, r)
        assert schedule.validate().is_terminal()
        assert schedule.stats().peak_red <= r

    def test_belady_eviction_beats_naive(self):
        dag = zipper_instance(3, 8).dag
        r = dag.max_in_degree + 1
        assert greedy_rbp_schedule(dag, r).cost() <= naive_rbp_schedule(dag, r).cost()


class TestNaiveBaselines:
    def test_naive_prbp_valid_with_r2(self):
        dag = binary_tree_instance(3).dag
        schedule = naive_prbp_schedule(dag)
        assert schedule.validate().is_terminal()
        assert schedule.stats().peak_red <= 2
        assert schedule.cost() <= 2 * dag.m + len(dag.sinks) + len(dag.sources)

    def test_naive_rbp_valid_with_minimal_r(self):
        dag = figure1_instance().dag
        schedule = naive_rbp_schedule(dag)
        assert schedule.validate().is_terminal()
        assert schedule.stats().peak_red <= dag.max_in_degree + 1

    def test_naive_is_never_better_than_greedy_prbp(self):
        for seed in range(3):
            dag = random_layered_dag([3, 4, 3], edge_probability=0.3, seed=seed)
            assert topological_prbp_schedule(dag, 4).cost() <= naive_prbp_schedule(dag, 4).cost()

    def test_naive_rbp_rejects_too_small_r(self):
        with pytest.raises(SolverError):
            naive_rbp_schedule(figure1_instance().dag, r=2)
