"""Unit tests for the PRBP engine (partial computes, pebble states, variants)."""

import pytest

from repro.core.dag import ComputationalDAG
from repro.core.exceptions import CapacityExceededError, IllegalMoveError, IncompletePebblingError
from repro.core.moves import PRBPMove, MoveKind, prbp
from repro.core.pebbles import PRBPState
from repro.core.prbp import (
    PRBPGame,
    is_valid_prbp_schedule,
    prbp_schedule_cost,
    run_prbp_schedule,
)
from repro.core.variants import GameVariant, NO_DELETE, RECOMPUTE, SLIDING


def chain3() -> ComputationalDAG:
    return ComputationalDAG(3, [(0, 1), (1, 2)], name="chain3")


def fanin() -> ComputationalDAG:
    # two sources aggregated into one sink: 0 -> 2 <- 1
    return ComputationalDAG(3, [(0, 2), (1, 2)], name="fanin2")


class TestPebbleStates:
    def test_enum_properties(self):
        assert PRBPState.DARK_RED.has_red and PRBPState.DARK_RED.is_dark_red
        assert PRBPState.BLUE_LIGHT_RED.has_red and PRBPState.BLUE_LIGHT_RED.has_blue
        assert PRBPState.BLUE.has_blue and not PRBPState.BLUE.has_red
        assert not PRBPState.NONE.has_blue and not PRBPState.NONE.has_red
        assert PRBPState.BLUE_LIGHT_RED.is_light_red

    def test_initial_state(self):
        game = PRBPGame(fanin(), r=2)
        assert game.node_state(0) is PRBPState.BLUE
        assert game.node_state(1) is PRBPState.BLUE
        assert game.node_state(2) is PRBPState.NONE
        assert game.red_count() == 0


class TestBasicRules:
    def test_aggregation_one_input_at_a_time(self):
        dag = fanin()
        moves = [
            prbp.load(0),
            prbp.compute(0, 2),
            prbp.delete(0),
            prbp.load(1),
            prbp.compute(1, 2),
            prbp.save(2),
        ]
        game = run_prbp_schedule(dag, 2, moves)
        assert game.io_cost == 3
        assert game.is_terminal()

    def test_r2_suffices_for_any_dag(self):
        dag = chain3()
        moves = [
            prbp.load(0),
            prbp.compute(0, 1),
            prbp.delete(0),
            prbp.compute(1, 2),
            prbp.delete(1),
            prbp.save(2),
        ]
        game = run_prbp_schedule(dag, 2, moves)
        assert game.io_cost == 2

    def test_compute_requires_tail_fully_computed(self):
        game = PRBPGame(chain3(), r=3)
        game.apply(prbp.load(0))
        game.apply(prbp.compute(0, 1))
        # node 1 is fully computed now, so (1, 2) is allowed
        game.apply(prbp.compute(1, 2))
        assert game.is_fully_computed(2)

    def test_compute_rejects_unfinished_tail(self):
        game = PRBPGame(fanin(), r=3)
        game.apply(prbp.load(0))
        game.apply(prbp.compute(0, 2))
        # node 2 is not fully computed, and it has no out-edges anyway
        with pytest.raises(IllegalMoveError):
            game.apply(prbp.compute(2, 0))  # not even an edge

    def test_compute_requires_tail_red(self):
        game = PRBPGame(chain3(), r=2)
        with pytest.raises(IllegalMoveError):
            game.apply(prbp.compute(0, 1))  # source 0 not loaded

    def test_compute_rejects_blue_only_head(self):
        dag = fanin()
        game = PRBPGame(dag, r=3)
        game.apply(prbp.load(0))
        game.apply(prbp.compute(0, 2))
        game.apply(prbp.save(2))
        game.apply(prbp.delete(2))  # partial value now only in slow memory
        game.apply(prbp.load(1))
        with pytest.raises(IllegalMoveError):
            game.apply(prbp.compute(1, 2))  # must reload node 2 first
        game.apply(prbp.load(2))
        game.apply(prbp.compute(1, 2))
        assert game.node_state(2) is PRBPState.DARK_RED

    def test_compute_marks_edge_once(self):
        game = PRBPGame(chain3(), r=3)
        game.apply(prbp.load(0))
        game.apply(prbp.compute(0, 1))
        with pytest.raises(IllegalMoveError):
            game.apply(prbp.compute(0, 1))

    def test_save_requires_dark_red(self):
        game = PRBPGame(chain3(), r=2)
        game.apply(prbp.load(0))
        with pytest.raises(IllegalMoveError):
            game.apply(prbp.save(0))  # light red, already up to date in slow memory

    def test_load_requires_blue(self):
        game = PRBPGame(chain3(), r=2)
        with pytest.raises(IllegalMoveError):
            game.apply(prbp.load(2))

    def test_delete_dark_red_requires_marked_out_edges(self):
        game = PRBPGame(chain3(), r=3)
        game.apply(prbp.load(0))
        game.apply(prbp.compute(0, 1))
        with pytest.raises(IllegalMoveError):
            game.apply(prbp.delete(1))  # (1, 2) unmarked; the value would be lost
        game.apply(prbp.compute(1, 2))
        game.apply(prbp.delete(1))
        assert game.node_state(1) is PRBPState.NONE

    def test_delete_light_red_always_allowed(self):
        game = PRBPGame(chain3(), r=2)
        game.apply(prbp.load(0))
        game.apply(prbp.delete(0))
        assert game.node_state(0) is PRBPState.BLUE

    def test_capacity_enforced(self):
        game = PRBPGame(fanin(), r=1)
        game.apply(prbp.load(0))
        with pytest.raises(CapacityExceededError):
            game.apply(prbp.compute(0, 2))

    def test_capacity_not_consumed_when_head_already_red(self):
        game = PRBPGame(fanin(), r=2)
        game.apply(prbp.load(0))
        game.apply(prbp.compute(0, 2))
        game.apply(prbp.delete(0))
        game.apply(prbp.load(1))
        game.apply(prbp.compute(1, 2))  # 2 already dark red: no new pebble needed
        assert game.red_count() == 2

    def test_sliding_variant_rejected(self):
        with pytest.raises(ValueError):
            PRBPGame(chain3(), r=2, variant=SLIDING)


class TestTerminalCondition:
    def test_all_edges_must_be_marked(self):
        dag = fanin()
        # pebble the sink via only one of its two inputs: invalid even if the
        # sink got a blue pebble, because one edge stays unmarked
        moves = [prbp.load(0), prbp.compute(0, 2), prbp.save(2)]
        with pytest.raises(IncompletePebblingError):
            run_prbp_schedule(dag, 2, moves)

    def test_sinks_need_blue(self):
        dag = chain3()
        moves = [
            prbp.load(0),
            prbp.compute(0, 1),
            prbp.delete(0),
            prbp.compute(1, 2),
            prbp.delete(1),
        ]
        with pytest.raises(IncompletePebblingError):
            run_prbp_schedule(dag, 2, moves)

    def test_validity_helpers(self):
        dag = chain3()
        good = [
            prbp.load(0),
            prbp.compute(0, 1),
            prbp.delete(0),
            prbp.compute(1, 2),
            prbp.save(2),
        ]
        assert is_valid_prbp_schedule(dag, 2, good)
        assert prbp_schedule_cost(dag, 2, good) == 2
        assert not is_valid_prbp_schedule(dag, 2, good[:-1])

    def test_legal_moves_are_legal(self):
        game = PRBPGame(fanin(), r=2)
        game.apply(prbp.load(0))
        game.apply(prbp.compute(0, 2))
        for mv in game.legal_moves():
            game.copy().apply(mv)

    def test_copy_is_independent(self):
        game = PRBPGame(chain3(), r=2)
        game.apply(prbp.load(0))
        clone = game.copy()
        clone.apply(prbp.compute(0, 1))
        assert clone.is_marked(0, 1)
        assert not game.is_marked(0, 1)


class TestVariants:
    def test_clear_requires_recompute_variant(self):
        game = PRBPGame(chain3(), r=3)
        game.apply(prbp.load(0))
        game.apply(prbp.compute(0, 1))
        with pytest.raises(IllegalMoveError):
            game.apply(prbp.clear(1))

    def test_clear_resets_node(self):
        game = PRBPGame(chain3(), r=3, variant=RECOMPUTE)
        game.apply(prbp.load(0))
        game.apply(prbp.compute(0, 1))
        game.apply(prbp.clear(1))
        assert game.node_state(1) is PRBPState.NONE
        assert not game.is_marked(0, 1)
        # the edge can be computed again
        game.apply(prbp.compute(0, 1))
        assert game.is_marked(0, 1)

    def test_clear_rejected_on_sources_and_sinks(self):
        game = PRBPGame(chain3(), r=3, variant=RECOMPUTE)
        with pytest.raises(IllegalMoveError):
            game.apply(prbp.clear(0))
        with pytest.raises(IllegalMoveError):
            game.apply(prbp.clear(2))

    def test_no_delete_variant_blocks_dark_red_deletion(self):
        game = PRBPGame(chain3(), r=3, variant=NO_DELETE)
        game.apply(prbp.load(0))
        game.apply(prbp.compute(0, 1))
        game.apply(prbp.compute(1, 2))
        with pytest.raises(IllegalMoveError):
            game.apply(prbp.delete(1))
        # saving first makes the pebble light red and hence removable
        game.apply(prbp.save(1))
        game.apply(prbp.delete(1))
        assert game.node_state(1) is PRBPState.BLUE

    def test_split_compute_cost(self):
        dag = fanin()
        variant = GameVariant(compute_cost=1.0, split_compute_cost=True)
        moves = [
            prbp.load(0),
            prbp.load(1),
            prbp.compute(0, 2),
            prbp.compute(1, 2),
            prbp.save(2),
        ]
        game = run_prbp_schedule(dag, 3, moves, variant=variant)
        assert game.io_cost == 3
        # the sink has in-degree 2, so each partial compute costs 1/2
        assert game.total_cost == pytest.approx(3 + 1.0)

    def test_flat_compute_cost(self):
        dag = fanin()
        variant = GameVariant(compute_cost=0.5)
        moves = [
            prbp.load(0),
            prbp.load(1),
            prbp.compute(0, 2),
            prbp.compute(1, 2),
            prbp.save(2),
        ]
        game = run_prbp_schedule(dag, 3, moves, variant=variant)
        assert game.total_cost == pytest.approx(3 + 2 * 0.5)


class TestMoveDataclass:
    def test_compute_targets_edge(self):
        with pytest.raises(ValueError):
            PRBPMove(MoveKind.COMPUTE, node=1)
        with pytest.raises(ValueError):
            PRBPMove(MoveKind.LOAD, edge=(0, 1))

    def test_str(self):
        assert "partial compute (0, 1)" == str(prbp.compute(0, 1))
        assert "save 2" == str(prbp.save(2))
        assert prbp.load(0).is_io and not prbp.compute(0, 1).is_io
