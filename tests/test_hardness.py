"""Tests for the independent-set machinery and the Theorem 4.8 / 7.1 constructions."""

import pytest

from repro.hardness.independent_set import (
    UndirectedGraph,
    clique_number,
    independence_number,
    max_clique_via_vertex_oracle,
    maxclique_vertex,
    maximum_independent_set,
    maxinset_vertex,
)
from repro.hardness.levels import (
    CrossEdge,
    LevelRef,
    TowerSpec,
    build_towers_dag,
    demo_theorem71_instance,
    insert_auxiliary_levels,
)
from repro.hardness.reduction_thm48 import Theorem48Parameters, build_theorem48_instance


def cycle5() -> UndirectedGraph:
    return UndirectedGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])


def path4() -> UndirectedGraph:
    return UndirectedGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])


class TestUndirectedGraph:
    def test_normalisation(self):
        g = UndirectedGraph.from_edges(3, [(1, 0), (0, 1), (2, 1)])
        assert len(g.edges) == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.neighbors(1) == frozenset({0, 2})
        assert g.degree(1) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            UndirectedGraph.from_edges(2, [(0, 0)])
        with pytest.raises(ValueError):
            UndirectedGraph.from_edges(2, [(0, 5)])

    def test_complement(self):
        g = path4()
        comp = g.complement()
        assert comp.has_edge(0, 2) and comp.has_edge(0, 3) and comp.has_edge(1, 3)
        assert not comp.has_edge(0, 1)
        assert len(comp.edges) == 6 - 3


class TestIndependentSets:
    def test_cycle5(self):
        g = cycle5()
        assert independence_number(g) == 2
        mis = maximum_independent_set(g)
        assert len(mis) == 2
        assert not any(g.has_edge(u, v) for u in mis for v in mis if u != v)

    def test_path4(self):
        assert independence_number(path4()) == 2
        assert clique_number(path4()) == 2

    def test_empty_and_complete_graphs(self):
        empty = UndirectedGraph.from_edges(4, [])
        complete = UndirectedGraph.from_edges(
            4, [(i, j) for i in range(4) for j in range(i + 1, 4)]
        )
        assert independence_number(empty) == 4
        assert independence_number(complete) == 1
        assert clique_number(complete) == 4

    def test_maxinset_vertex_every_node_of_c5(self):
        g = cycle5()
        assert all(maxinset_vertex(g, v) for v in range(5))

    def test_maxinset_vertex_negative_case(self):
        # star graph: the centre is only in the (size-1) independent set {centre},
        # while the leaves form the unique maximum independent set
        star = UndirectedGraph.from_edges(5, [(0, i) for i in range(1, 5)])
        assert not maxinset_vertex(star, 0)
        assert all(maxinset_vertex(star, v) for v in range(1, 5))

    def test_maxclique_vertex_is_complement_of_maxinset(self):
        g = path4()
        for v in range(g.n):
            assert maxclique_vertex(g, v) == maxinset_vertex(g.complement(), v)

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            maxinset_vertex(path4(), 9)


class TestLemmaA1SelfReduction:
    @pytest.mark.parametrize(
        "graph",
        [cycle5(), path4(), UndirectedGraph.from_edges(4, []), UndirectedGraph.from_edges(6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)])],
    )
    def test_oracle_reduction_finds_a_maximum_clique(self, graph):
        found = max_clique_via_vertex_oracle(graph)
        assert len(found) == clique_number(graph)
        assert all(graph.has_edge(u, v) for u in found for v in found if u != v)


class TestTheorem48Construction:
    def test_parameters_follow_appendix_a4(self):
        g = cycle5()
        params = Theorem48Parameters.from_graph(g, b=8)
        assert params.r == 8 + 4 * 5 + 5
        assert params.group_size == params.r - 2
        assert params.ell == 2 * params.ell0 + params.n0 + (params.r - 2)
        # the soundness inequality of A.4 holds with the exact parameters
        lhs = params.ell0 / (2 * (params.r - 2)) - (params.r - 1)
        rhs = params.n0 * params.b + 2 * params.num_edges0 + 6
        assert lhs > rhs

    def test_b_must_exceed_3(self):
        with pytest.raises(ValueError):
            Theorem48Parameters.from_graph(cycle5(), b=3)

    def test_structure_of_small_instance(self):
        g = path4()
        inst = build_theorem48_instance(g, v0=1, chain_scale=0.02)
        dag = inst.dag
        params = inst.params
        # two gadgets per G0 node, each with a chain of length ell
        assert all(len(inst.h1_chain[u]) == params.ell for u in range(g.n))
        assert all(len(inst.h2_chain[u]) == params.ell for u in range(g.n))
        # every source group has exactly r - 2 members and shares the b merged nodes
        for u in range(g.n):
            assert len(inst.h1_sources[u]) == params.group_size
            assert len(inst.h2_sources[u]) == params.group_size
            assert inst.h1_sources[u][: params.b] == inst.merged_sources[u]
            assert inst.h2_sources[u][: params.b] == inst.merged_sources[u]
        # the cross replacements: for each G0 edge, a middle chain node of
        # H1(u) appears among the sources of H2(neighbour)
        for (a, b_node) in g.edges:
            assert any(s in inst.h1_chain[a] for s in inst.h2_sources[b_node])
            assert any(s in inst.h1_chain[b_node] for s in inst.h2_sources[a])
        # the discriminator sink w aggregates exactly Z1 and Z2
        assert set(dag.predecessors(inst.w)) == set(inst.z1) | set(inst.z2)
        assert dag.is_sink(inst.w)
        assert dag.max_in_degree >= 2

    def test_size_is_polynomial(self):
        g = path4()
        full = build_theorem48_instance(g, v0=0)
        # n = O(n0 * ell) = O(n0 * (n0^2 + n0*|E0|) * r); for the path graph this
        # stays comfortably below n0^5
        assert full.dag.n < g.n**5 * 100
        assert full.dag.n > 2 * g.n * full.params.ell  # both chains are present

    def test_unknown_v0_rejected(self):
        with pytest.raises(ValueError):
            build_theorem48_instance(path4(), v0=7)


class TestTheorem71Levels:
    def test_auxiliary_insertion_counts(self):
        spec = TowerSpec(level_sizes=(4, 4, 2, 3))
        adapted = insert_auxiliary_levels(spec)
        # one aux before level 1 (same size), (4-2+2)=4 aux before level 2,
        # one aux before level 3, one aux on top
        assert sum(adapted.is_auxiliary) == 1 + 4 + 1 + 1
        assert len(adapted.levels) == 4 + 7
        # aux levels have the size of the following original level
        first_aux = adapted.entry_aux_of_original[1]
        assert adapted.levels[first_aux] == 4
        shrink_aux = adapted.entry_aux_of_original[2]
        assert adapted.levels[shrink_aux] == 2
        assert shrink_aux in adapted.shrink_extra

    def test_tower_spec_validation(self):
        with pytest.raises(ValueError):
            TowerSpec(level_sizes=())
        with pytest.raises(ValueError):
            TowerSpec(level_sizes=(3, 0))

    def test_adapted_dag_is_larger_but_polynomial(self):
        plain = demo_theorem71_instance(adapted=False)
        adapted = demo_theorem71_instance(adapted=True)
        assert adapted.dag.n > plain.dag.n
        assert adapted.dag.n < 10 * plain.dag.n

    def test_shrink_protection_edges_exist(self):
        inst = demo_theorem71_instance(adapted=True)
        tower = inst.towers[0]
        # find an auxiliary level protecting the shrink from size 4 to size 2
        aux_levels = [i for i, orig in tower.shrink_extra.items()]
        assert aux_levels
        for aux in aux_levels:
            last_node = inst.level_nodes(0, aux)[-1]
            wide_level_phys = tower.original_index.index(tower.shrink_extra[aux])
            wide_nodes = inst.level_nodes(0, wide_level_phys)
            # the "extra" wide nodes u_{l'+1}..u_l feed the last auxiliary node
            assert any(inst.dag.has_edge(u, last_node) for u in wide_nodes[2:])

    def test_cross_edges_are_rerouted_to_auxiliary_levels(self):
        spec_a = TowerSpec(level_sizes=(3, 3))
        spec_b = TowerSpec(level_sizes=(3, 3))
        cross = [CrossEdge(src=LevelRef(0, 0), dst=LevelRef(1, 1))]
        plain = build_towers_dag([spec_a, spec_b], cross, adapted=False)
        adapted = build_towers_dag([spec_a, spec_b], cross, adapted=True)
        # in the plain construction the edges hit the original level directly
        dst_plain = plain.level_nodes(1, 1)
        assert any(
            plain.dag.has_edge(u, v)
            for u in plain.level_nodes(0, 0)
            for v in dst_plain
        )
        # in the adapted construction they hit the auxiliary level below it
        aux_phys = adapted.towers[1].entry_aux_of_original[1]
        dst_adapted = adapted.level_nodes(1, aux_phys)
        assert any(
            adapted.dag.has_edge(u, v)
            for u in adapted.level_nodes(0, 0)
            for v in dst_adapted
        )

    def test_demo_instance_is_a_valid_dag(self):
        inst = demo_theorem71_instance()
        inst.dag.validate_no_isolated()
        assert len(inst.dag.sources) >= 2
        assert inst.dag.m > inst.dag.n
