"""Tests for the structured strategies: validity and the paper's closed-form costs."""

import pytest

from repro.bounds.analytic import (
    chained_gadget_prbp_optimal_cost,
    matvec_prbp_optimal_cost,
    matvec_rbp_lower_bound,
    zipper_prbp_cost_estimate,
    zipper_rbp_cost_estimate,
)
from repro.core.exceptions import SolverError
from repro.dags import (
    attention_instance,
    chained_gadget_instance,
    fanin_groups_instance,
    fft_instance,
    figure1_instance,
    kary_tree_instance,
    matmul_instance,
    matvec_instance,
    pebble_collection_instance,
    zipper_instance,
)
from repro.dags.trees import optimal_prbp_tree_cost, optimal_rbp_tree_cost
from repro.solvers.structured import (
    attention_flash_prbp_schedule,
    chained_gadget_prbp_schedule,
    collection_full_prbp_schedule,
    collection_full_rbp_schedule,
    fanin_groups_prbp_schedule,
    fft_blocked_prbp_schedule,
    fft_blocked_rbp_schedule,
    figure1_prbp_schedule,
    figure1_rbp_schedule,
    matmul_tiled_prbp_schedule,
    matvec_prbp_schedule,
    tree_prbp_schedule,
    tree_rbp_schedule,
    zipper_prbp_schedule,
    zipper_rbp_schedule,
)


class TestFigure1Strategies:
    def test_appendix_a1_costs(self):
        assert figure1_prbp_schedule().cost() == 2
        assert figure1_rbp_schedule().cost() == 3

    def test_peak_memory_respects_r(self):
        assert figure1_prbp_schedule().stats().peak_red <= 4
        assert figure1_rbp_schedule().stats().peak_red <= 4

    def test_rejects_variant_gadgets(self):
        with pytest.raises(ValueError):
            figure1_prbp_schedule(figure1_instance(with_z_layer=True))
        with pytest.raises(ValueError):
            figure1_rbp_schedule(figure1_instance(include_endpoints=False))


class TestChainedGadget:
    @pytest.mark.parametrize("copies", [1, 3, 10, 25])
    def test_cost_is_two_for_any_length(self, copies):
        inst = chained_gadget_instance(copies)
        schedule = chained_gadget_prbp_schedule(inst)
        assert schedule.cost() == chained_gadget_prbp_optimal_cost() == 2
        assert schedule.stats().peak_red <= 4

    def test_requires_r_at_least_4(self):
        with pytest.raises(SolverError):
            chained_gadget_prbp_schedule(chained_gadget_instance(2), r=3)


class TestMatVec:
    @pytest.mark.parametrize("m", [1, 3, 5, 7])
    def test_cost_matches_proposition43(self, m):
        inst = matvec_instance(m)
        schedule = matvec_prbp_schedule(inst)
        assert schedule.cost() == matvec_prbp_optimal_cost(m) == m * m + 2 * m
        assert schedule.cost() == inst.dag.trivial_cost()
        assert schedule.stats().peak_red <= m + 3

    def test_prbp_beats_rbp_lower_bound(self):
        for m in (3, 4, 6):
            assert matvec_prbp_optimal_cost(m) < matvec_rbp_lower_bound(m)

    def test_requires_enough_memory(self):
        with pytest.raises(SolverError):
            matvec_prbp_schedule(matvec_instance(4), r=5)


class TestZipper:
    @pytest.mark.parametrize("d,length", [(3, 4), (3, 9), (4, 8), (5, 6)])
    def test_costs_match_estimates(self, d, length):
        inst = zipper_instance(d, length)
        prbp = zipper_prbp_schedule(inst)
        rbp = zipper_rbp_schedule(inst)
        assert prbp.cost() == zipper_prbp_cost_estimate(d, length)
        assert rbp.cost() == zipper_rbp_cost_estimate(d, length)
        assert prbp.stats().peak_red <= d + 2
        assert rbp.stats().peak_red <= d + 2

    @pytest.mark.parametrize("d", [3, 4, 6])
    def test_proposition44_prbp_wins_for_d_at_least_3(self, d):
        length = 10
        inst = zipper_instance(d, length)
        assert zipper_prbp_schedule(inst).cost() < zipper_rbp_schedule(inst).cost()

    def test_length_one_is_rejected_by_the_generator(self):
        with pytest.raises(ValueError):
            zipper_instance(3, 1)

    def test_length_two_edge_case(self):
        inst = zipper_instance(3, 2)
        assert zipper_prbp_schedule(inst).validate().is_terminal()


class TestTrees:
    @pytest.mark.parametrize("k,depth", [(2, 2), (2, 4), (2, 6), (3, 3), (3, 4), (4, 4)])
    def test_costs_match_appendix_a2(self, k, depth):
        inst = kary_tree_instance(k, depth)
        assert tree_rbp_schedule(inst).cost() == optimal_rbp_tree_cost(k, depth)
        assert tree_prbp_schedule(inst).cost() == optimal_prbp_tree_cost(k, depth)

    @pytest.mark.parametrize("k,depth", [(2, 3), (2, 5), (3, 4)])
    def test_peak_memory_is_k_plus_1(self, k, depth):
        inst = kary_tree_instance(k, depth)
        assert tree_rbp_schedule(inst).stats().peak_red <= k + 1
        assert tree_prbp_schedule(inst).stats().peak_red <= k + 1

    def test_prbp_gap_grows_with_depth(self):
        gaps = [
            tree_rbp_schedule(kary_tree_instance(2, d)).cost()
            - tree_prbp_schedule(kary_tree_instance(2, d)).cost()
            for d in (3, 4, 5)
        ]
        assert gaps == sorted(gaps)
        assert gaps[0] > 0


class TestCollectionGadget:
    def test_full_pebbles_give_trivial_cost(self):
        inst = pebble_collection_instance(3, 15)
        assert collection_full_rbp_schedule(inst).cost() == inst.dag.trivial_cost()
        assert collection_full_prbp_schedule(inst).cost() == inst.dag.trivial_cost()

    def test_requires_d_plus_2(self):
        with pytest.raises(SolverError):
            collection_full_prbp_schedule(pebble_collection_instance(3, 10), r=4)


class TestFanIn:
    def test_trivial_cost_with_three_pebbles(self):
        inst = fanin_groups_instance(7, 20)
        schedule = fanin_groups_prbp_schedule(inst)
        assert schedule.cost() == inst.dag.trivial_cost() == 8
        assert schedule.stats().peak_red <= 3


class TestFFT:
    @pytest.mark.parametrize("m,r", [(8, 4), (16, 4), (16, 8), (32, 8)])
    def test_blocked_strategy_is_valid(self, m, r):
        inst = fft_instance(m)
        rbp = fft_blocked_rbp_schedule(inst, r=r)
        assert rbp.stats().peak_red <= r
        prbp = fft_blocked_prbp_schedule(inst, r=r)
        assert prbp.cost() == rbp.cost()

    def test_larger_cache_reduces_io(self):
        inst = fft_instance(32)
        assert fft_blocked_rbp_schedule(inst, r=16).cost() < fft_blocked_rbp_schedule(inst, r=4).cost()

    def test_io_has_the_right_shape(self):
        # cost ≈ 2m per pass, ceil(log m / s) passes
        inst = fft_instance(64)
        cost_r4 = fft_blocked_rbp_schedule(inst, r=4).cost()
        assert cost_r4 == 2 * 64 * 6  # one pass per level at s = 1

    def test_requires_r_at_least_4(self):
        with pytest.raises(SolverError):
            fft_blocked_rbp_schedule(fft_instance(8), r=3)


class TestMatMul:
    @pytest.mark.parametrize("dims,r", [((3, 3, 3), 9), ((4, 4, 4), 16), ((2, 5, 3), 8)])
    def test_tiled_strategy_is_valid(self, dims, r):
        inst = matmul_instance(*dims)
        schedule = matmul_tiled_prbp_schedule(inst, r=r)
        assert schedule.stats().peak_red <= r
        assert schedule.cost() >= inst.dag.trivial_cost()

    def test_larger_cache_reduces_io(self):
        inst = matmul_instance(6, 6, 6)
        small = matmul_tiled_prbp_schedule(inst, r=4).cost()
        large = matmul_tiled_prbp_schedule(inst, r=16).cost()
        assert large < small

    def test_requires_r_at_least_4(self):
        with pytest.raises(SolverError):
            matmul_tiled_prbp_schedule(matmul_instance(3, 3, 3), r=3)


class TestAttention:
    @pytest.mark.parametrize("m,d", [(4, 2), (6, 2), (4, 3)])
    def test_flash_strategy_is_valid(self, m, d):
        inst = attention_instance(m, d)
        schedule = attention_flash_prbp_schedule(inst, r=max(d * d + d + 4, 2 * d + 4))
        assert schedule.stats().peak_red <= max(d * d + d + 4, 2 * d + 4)
        assert schedule.cost() >= inst.dag.trivial_cost()

    def test_larger_cache_reduces_io(self):
        inst = attention_instance(8, 2)
        small = attention_flash_prbp_schedule(inst, r=2 * 2 + 4).cost()
        large = attention_flash_prbp_schedule(inst, r=8 * 2 + 6).cost()
        assert large < small

    def test_rejects_softmax_instance(self):
        with pytest.raises(SolverError):
            attention_flash_prbp_schedule(attention_instance(4, 2, include_softmax=True))
