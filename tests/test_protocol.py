"""Wire protocol of repro.service: framing, schemas, round trips, and fuzz."""

import asyncio
import base64
import json
import struct

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import PebblingProblem, solve
from repro.core.schedule_ir import ir_from_arrays, pack_arrays, unpack_arrays
from repro.core.variants import ONE_SHOT, RECOMPUTE, GameVariant
from repro.dags import chained_gadget_dag, figure1_gadget, kary_tree_dag
from repro.dags.random_dags import random_layered_dag
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    make_request,
    problem_from_wire,
    problem_to_wire,
    read_frame,
    result_from_wire,
    result_to_wire,
    validate_request,
)


def _read_all(data: bytes, max_bytes: int = MAX_FRAME_BYTES):
    """Feed raw bytes to a fresh StreamReader and read frames until EOF."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = []
        while True:
            frame = await read_frame(reader, max_bytes=max_bytes)
            if frame is None:
                return frames
            frames.append(frame)

    return asyncio.run(run())


def _problems():
    """Both games, both variant bundles, a tagged family, and custom labels."""
    labeled = kary_tree_dag(2, 3)
    return [
        PebblingProblem(figure1_gadget(), r=4, game="prbp"),
        PebblingProblem(figure1_gadget(), r=4, game="rbp", variant=ONE_SHOT),
        PebblingProblem(labeled, r=3, game="prbp", variant=RECOMPUTE),
        PebblingProblem(chained_gadget_dag(4), r=4, game="rbp"),
        PebblingProblem(random_layered_dag((3, 4, 3), 0.4, 3, 7), r=4, game="prbp"),
    ]


class TestFraming:
    def test_round_trip_single_frame(self):
        doc = {"v": PROTOCOL_VERSION, "op": "ping", "id": "r1", "nested": {"a": [1, 2]}}
        assert _read_all(encode_frame(doc)) == [doc]

    def test_round_trip_back_to_back_frames(self):
        docs = [{"op": "ping", "id": f"r{i}", "v": 1} for i in range(5)]
        stream = b"".join(encode_frame(doc) for doc in docs)
        assert _read_all(stream) == docs

    def test_decode_rejects_non_object_payloads(self):
        for payload in (b"[1,2]", b'"hello"', b"42", b"null"):
            with pytest.raises(ProtocolError):
                decode_frame(payload)

    def test_decode_rejects_invalid_utf8_and_json(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\xff\xfe garbage")
        with pytest.raises(ProtocolError):
            decode_frame(b"{not json")

    def test_encode_rejects_unserializable_and_oversized(self):
        with pytest.raises(ProtocolError):
            encode_frame({"fn": object()})
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_truncated_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-header"):
            _read_all(b"\x00\x00")

    def test_truncated_payload_raises(self):
        frame = encode_frame({"op": "ping", "id": "r1", "v": 1})
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read_all(frame[:-3])

    def test_zero_length_frame_raises(self):
        with pytest.raises(ProtocolError, match="zero-length"):
            _read_all(struct.pack(">I", 0))

    def test_oversized_length_prefix_raises_without_allocating(self):
        # A garbage prefix claiming 4 GiB must be refused from the header
        # alone — the 8 payload bytes present are never awaited.
        with pytest.raises(ProtocolError, match="exceeds"):
            _read_all(struct.pack(">I", 0xFFFFFFFF) + b"x" * 8)

    def test_custom_max_bytes_is_enforced(self):
        frame = encode_frame({"op": "ping", "id": "r1", "v": 1, "pad": "y" * 64})
        with pytest.raises(ProtocolError, match="exceeds"):
            _read_all(frame, max_bytes=32)

    def test_clean_eof_returns_none(self):
        assert _read_all(b"") == []

    @given(st.binary(min_size=0, max_size=200))
    def test_fuzz_arbitrary_bytes_never_hang_or_crash(self, blob):
        # Whatever the bytes, the reader either parses frames or raises
        # ProtocolError — no other exception type, no hang on fed-EOF data.
        try:
            frames = _read_all(blob, max_bytes=4096)
        except ProtocolError:
            return
        for frame in frames:
            assert isinstance(frame, dict)

    @given(
        st.dictionaries(
            st.text(max_size=8),
            st.recursive(
                st.none() | st.booleans() | st.integers() | st.text(max_size=8),
                lambda children: st.lists(children, max_size=3),
                max_leaves=8,
            ),
            max_size=4,
        )
    )
    def test_fuzz_json_objects_round_trip(self, doc):
        assert _read_all(encode_frame(doc)) == [json.loads(json.dumps(doc))]


class TestRequestValidation:
    def _solve_request(self, **overrides):
        doc = make_request(
            "solve", "r1", problem={"dag": {}}, solver="auto", options={}, stream=False, wait=True
        )
        doc.update(overrides)
        return doc

    def test_accepts_every_request_op(self):
        assert validate_request(make_request("ping", "r1"))["op"] == "ping"
        assert validate_request(make_request("stats", "r2"))["op"] == "stats"
        assert validate_request(make_request("shutdown", "r3", drain=False))["op"] == "shutdown"
        assert validate_request(make_request("poll", "r4", job_id="job-1"))["op"] == "poll"
        assert validate_request(self._solve_request())["op"] == "solve"

    def test_rejects_wrong_protocol_version(self):
        with pytest.raises(ProtocolError, match="version"):
            validate_request({"v": PROTOCOL_VERSION + 1, "op": "ping", "id": "r1"})
        with pytest.raises(ProtocolError, match="version"):
            validate_request({"op": "ping", "id": "r1"})  # missing version

    def test_rejects_unknown_op_and_bad_id(self):
        with pytest.raises(ProtocolError, match="unknown request op"):
            validate_request({"v": PROTOCOL_VERSION, "op": "solve-all", "id": "r1"})
        for bad_id in ("", None, 7):
            with pytest.raises(ProtocolError, match="'id'"):
                validate_request({"v": PROTOCOL_VERSION, "op": "ping", "id": bad_id})

    def test_solve_requires_problem_and_scalar_options(self):
        with pytest.raises(ProtocolError, match="'problem'"):
            validate_request(self._solve_request(problem=None))
        with pytest.raises(ProtocolError, match="scalar"):
            validate_request(self._solve_request(options={"hook": [1, 2]}))
        with pytest.raises(ProtocolError, match="scalar"):
            validate_request(self._solve_request(options={"nested": {"a": 1}}))

    def test_solve_flag_and_priority_typing(self):
        with pytest.raises(ProtocolError, match="'stream'"):
            validate_request(self._solve_request(stream="yes"))
        with pytest.raises(ProtocolError, match="'priority'"):
            validate_request(self._solve_request(priority=True))
        with pytest.raises(ProtocolError, match="'priority'"):
            validate_request(self._solve_request(priority=1.5))
        with pytest.raises(ProtocolError, match="'deadline_s'"):
            validate_request(self._solve_request(deadline_s=-1))
        with pytest.raises(ProtocolError, match="'deadline_s'"):
            validate_request(self._solve_request(deadline_s=True))

    def test_stream_requires_wait(self):
        with pytest.raises(ProtocolError, match="'stream' requires 'wait'"):
            validate_request(self._solve_request(stream=True, wait=False))

    def test_cache_only_probe_shape(self):
        # the well-formed peer-fetch probe of the cluster router
        assert validate_request(self._solve_request(cache_only=True))["cache_only"] is True
        with pytest.raises(ProtocolError, match="'cache_only' must be a boolean"):
            validate_request(self._solve_request(cache_only="yes"))
        with pytest.raises(ProtocolError, match="cannot stream"):
            validate_request(self._solve_request(cache_only=True, stream=True))
        with pytest.raises(ProtocolError, match="requires 'wait'"):
            validate_request(self._solve_request(cache_only=True, wait=False))

    def test_client_id_must_be_a_nonempty_string_or_absent(self):
        assert validate_request(self._solve_request(client_id="tenant-a"))["client_id"] == "tenant-a"
        assert "client_id" not in validate_request(self._solve_request())
        for bad in ("", 7, ["x"]):
            with pytest.raises(ProtocolError, match="'client_id'"):
                validate_request(self._solve_request(client_id=bad))

    def test_poll_requires_job_id(self):
        with pytest.raises(ProtocolError, match="'job_id'"):
            validate_request(make_request("poll", "r1"))


class TestProblemRoundTrip:
    def test_round_trips_every_problem_shape(self):
        for problem in _problems():
            doc = json.loads(json.dumps(problem_to_wire(problem)))
            rebuilt = problem_from_wire(doc)
            assert rebuilt == problem
            assert rebuilt.dag.edges == problem.dag.edges
            assert rebuilt.variant == problem.variant
            assert [rebuilt.dag.label(v) for v in range(rebuilt.n)] == [
                problem.dag.label(v) for v in range(problem.n)
            ]

    def test_family_tuples_survive_json(self):
        # layer_sizes is a tuple; plain JSON would hand back a list and the
        # rebuilt DAG's family (hence its digest inputs) would drift.
        problem = PebblingProblem(random_layered_dag((3, 4, 3), 0.4, 3, 7), r=4, game="prbp")
        doc = json.loads(json.dumps(problem_to_wire(problem)))
        rebuilt = problem_from_wire(doc)
        assert rebuilt.dag.family == problem.dag.family
        assert rebuilt.dag.family.params == problem.dag.family.params

    def test_digest_mismatch_is_refused(self):
        doc = problem_to_wire(_problems()[0])
        doc["dag_digest"] = "0" * 64
        with pytest.raises(ProtocolError, match="digest mismatch"):
            problem_from_wire(doc)

    def test_tampered_edges_are_refused_by_the_digest(self):
        doc = problem_to_wire(PebblingProblem(kary_tree_dag(2, 3), r=3, game="prbp"))
        doc["dag"]["edges"] = doc["dag"]["edges"][:-1]
        with pytest.raises(ProtocolError, match="digest mismatch"):
            problem_from_wire(doc)

    def test_malformed_problem_documents_are_refused(self):
        good = problem_to_wire(_problems()[0])
        for mutate in (
            lambda d: d.pop("dag"),
            lambda d: d.__setitem__("r", 0),
            lambda d: d.__setitem__("r", "four"),
            lambda d: d.__setitem__("game", "chess"),
            lambda d: d.__setitem__("variant", "one-shot"),
            lambda d: d["dag"].__setitem__("n", -1),
            lambda d: d["dag"].__setitem__("edges", [[0, 1, 2]]),
            lambda d: d["dag"].__setitem__("labels", ["only-one"]),
            lambda d: d["dag"].__setitem__("family", {"params": []}),
        ):
            doc = json.loads(json.dumps(good))
            mutate(doc)
            with pytest.raises(ProtocolError):
                problem_from_wire(doc)

    def test_cyclic_edge_list_is_a_protocol_error(self):
        doc = problem_to_wire(PebblingProblem(figure1_gadget(), r=4, game="prbp"))
        doc["dag"]["edges"] = [[0, 1], [1, 0]]
        with pytest.raises(ProtocolError, match="valid DAG"):
            problem_from_wire(doc)

    @given(st.binary(max_size=64))
    def test_fuzz_problem_from_wire_raises_protocol_error_only(self, blob):
        doc = {"dag": {"n": 1, "edges": [], "labels": None}, "raw": blob.hex()}
        with pytest.raises(ProtocolError):
            problem_from_wire(doc)


class TestResultRoundTrip:
    def _round_trip(self, problem, **options):
        local = solve(problem, **options)
        doc = json.loads(json.dumps(result_to_wire(local)))
        return local, result_from_wire(problem, doc)

    def test_result_round_trips_bit_identical(self):
        for problem in _problems():
            local, remote = self._round_trip(problem)
            assert remote.cost == local.cost
            assert remote.schedule.moves == local.schedule.moves
            assert remote.solver == local.solver
            assert remote.exact_solver == local.exact_solver
            assert remote.lower_bound == local.lower_bound
            assert remote.lower_bound_source == local.lower_bound_source
            assert remote.stats == local.stats

    def test_refinement_trajectory_survives_the_wire(self):
        problem = PebblingProblem(chained_gadget_dag(8), r=4, game="rbp")
        local, remote = self._round_trip(problem, refine_steps=64, seed=0)
        assert local.solve_stats is not None and local.solve_stats.refinement is not None
        assert remote.solve_stats is not None
        assert remote.solve_stats.refinement == local.solve_stats.refinement
        assert remote.solve_stats.wall_time_s == local.solve_stats.wall_time_s

    def test_claimed_cost_must_match_the_replay(self):
        problem = _problems()[0]
        doc = result_to_wire(solve(problem))
        doc["io_cost"] = doc["io_cost"] + 1
        with pytest.raises(ProtocolError, match="replays to"):
            result_from_wire(problem, doc)

    def test_illegal_schedules_are_refused(self):
        problem = PebblingProblem(kary_tree_dag(2, 3), r=3, game="prbp")
        doc = result_to_wire(solve(problem))
        # drop the first move: still representable columns, no longer legal
        op, node, arg = unpack_arrays(doc["schedule"])
        truncated = ir_from_arrays(
            problem.game, problem.dag, problem.r, problem.variant, op[1:], node[1:], arg[1:]
        )
        doc["schedule"] = {**pack_arrays(truncated), "description": ""}
        with pytest.raises(ProtocolError):
            result_from_wire(problem, doc)

    def test_columns_from_the_wrong_game_are_refused(self):
        rbp = PebblingProblem(figure1_gadget(), r=4, game="rbp")
        prbp = PebblingProblem(figure1_gadget(), r=4, game="prbp")
        with pytest.raises(ProtocolError):
            result_from_wire(rbp, result_to_wire(solve(prbp)))

    def test_tampered_columns_are_refused(self):
        problem = _problems()[0]
        good = result_to_wire(solve(problem))
        for mutate in (
            lambda d: d["schedule"].__setitem__("ops", "not base64!"),
            lambda d: d["schedule"].__setitem__("nodes", base64.b64encode(b"\x07").decode()),
            lambda d: d["schedule"].__setitem__("count", -1),
            lambda d: d["schedule"].pop("args"),
            lambda d: d.__setitem__("schedule", None),
            # an out-of-range op code, packed exactly like a real column
            lambda d: d["schedule"].__setitem__(
                "ops",
                base64.b64encode(
                    np.full(d["schedule"]["count"], 7, dtype="<i4").tobytes()
                ).decode(),
            ),
        ):
            doc = json.loads(json.dumps(good))
            mutate(doc)
            with pytest.raises(ProtocolError):
                result_from_wire(problem, doc)


class TestVariantCodec:
    def test_all_variant_combinations_round_trip(self):
        for one_shot in (True, False):
            for sliding in (True, False):
                variant = GameVariant(
                    one_shot=one_shot,
                    allow_sliding=sliding,
                    allow_delete=True,
                    compute_cost=0.5 if sliding else 0.0,
                )
                problem = PebblingProblem(figure1_gadget(), r=4, game="rbp", variant=variant)
                doc = json.loads(json.dumps(problem_to_wire(problem)))
                assert problem_from_wire(doc).variant == variant

    def test_unknown_variant_fields_are_refused(self):
        doc = problem_to_wire(_problems()[0])
        doc["variant"]["time_travel"] = True
        with pytest.raises(ProtocolError, match="unknown variant fields"):
            problem_from_wire(doc)


class TestObservabilityWire:
    """v4 observability additions: trace propagation, metrics op, attempts."""

    def _solve_request(self, **overrides):
        doc = make_request(
            "solve", "r1", problem={"dag": {}}, solver="auto", options={}, stream=False, wait=True
        )
        doc.update(overrides)
        return doc

    def test_v3_stamped_requests_are_still_accepted(self):
        # a v3 peer never sends trace/metrics, but its frames must validate
        assert validate_request({"v": 3, "op": "ping", "id": "r1"})["op"] == "ping"
        doc = self._solve_request()
        doc["v"] = 3
        assert validate_request(doc)["v"] == 3

    def test_metrics_op_is_a_valid_request(self):
        assert validate_request(make_request("metrics", "r1"))["op"] == "metrics"

    def test_trace_context_shape_is_enforced(self):
        good = {"trace_id": "a" * 32, "span_id": "b" * 16}
        assert validate_request(self._solve_request(trace=good))["trace"] == good
        with pytest.raises(ProtocolError, match="'trace'"):
            validate_request(self._solve_request(trace="not-an-object"))
        for bad in (
            {"trace_id": "", "span_id": "b"},  # empty
            {"trace_id": "a" * 65, "span_id": "b"},  # oversized
            {"trace_id": 7, "span_id": "b"},  # non-string
            {"trace_id": "a"},  # span_id missing
        ):
            with pytest.raises(ProtocolError, match="trace"):
                validate_request(self._solve_request(trace=bad))

    def test_auto_portfolio_attempts_survive_the_wire(self):
        problem = PebblingProblem(figure1_gadget(), r=4, game="prbp")
        result = solve(problem, solver="auto")
        attempts = result.solve_stats.attempts
        assert attempts, "auto solve should record portfolio attempts"
        doc = json.loads(json.dumps(result_to_wire(result)))
        decoded = result_from_wire(problem, doc)
        assert decoded.solve_stats.attempts == attempts
        assert any(a.outcome == "won" for a in decoded.solve_stats.attempts)

    def test_missing_attempts_key_decodes_to_empty_for_v3_peers(self):
        problem = PebblingProblem(figure1_gadget(), r=4, game="prbp")
        doc = json.loads(json.dumps(result_to_wire(solve(problem, solver="greedy"))))
        doc["solve_stats"].pop("attempts", None)
        assert result_from_wire(problem, doc).solve_stats.attempts == ()
        doc["solve_stats"]["attempts"] = [{"solver": "greedy"}]  # fields missing
        with pytest.raises(ProtocolError, match="attempt"):
            result_from_wire(problem, doc)
