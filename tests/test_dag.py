"""Unit tests for the computational DAG substrate."""

import pytest

from repro.core.dag import ComputationalDAG
from repro.core.exceptions import DAGError


def diamond() -> ComputationalDAG:
    # 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
    return ComputationalDAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)], name="diamond")


class TestConstruction:
    def test_basic_counts(self):
        dag = diamond()
        assert dag.n == 4
        assert dag.m == 4
        assert len(dag) == 4
        assert list(iter(dag)) == [0, 1, 2, 3]

    def test_sources_and_sinks(self):
        dag = diamond()
        assert dag.sources == (0,)
        assert dag.sinks == (3,)
        assert dag.is_source(0) and not dag.is_source(1)
        assert dag.is_sink(3) and not dag.is_sink(2)

    def test_degrees(self):
        dag = diamond()
        assert dag.in_degree(3) == 2
        assert dag.out_degree(0) == 2
        assert dag.max_in_degree == 2
        assert dag.max_out_degree == 2

    def test_neighbours(self):
        dag = diamond()
        assert set(dag.predecessors(3)) == {1, 2}
        assert set(dag.successors(0)) == {1, 2}
        assert dag.in_edges(3) == [(1, 3), (2, 3)]
        assert dag.out_edges(0) == [(0, 1), (0, 2)]

    def test_edge_ids_are_dense_and_stable(self):
        dag = diamond()
        ids = {dag.edge_id(u, v) for u, v in dag.edges}
        assert ids == set(range(dag.m))
        assert dag.has_edge(0, 1)
        assert not dag.has_edge(1, 0)

    def test_labels(self):
        dag = ComputationalDAG(2, [(0, 1)], labels={0: "in", 1: "out"})
        assert dag.label(0) == "in"
        assert dag.label(1) == "out"
        relabeled = dag.relabel({1: "sink"})
        assert relabeled.label(1) == "sink"
        assert relabeled.label(0) == "in"

    def test_from_edge_list_infers_n(self):
        dag = ComputationalDAG.from_edge_list([(0, 3), (3, 5)])
        assert dag.n == 6

    def test_cycle_rejected(self):
        with pytest.raises(DAGError):
            ComputationalDAG(3, [(0, 1), (1, 2), (2, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(DAGError):
            ComputationalDAG(2, [(0, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(DAGError):
            ComputationalDAG(2, [(0, 1), (0, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(DAGError):
            ComputationalDAG(2, [(0, 5)])

    def test_negative_n_rejected(self):
        with pytest.raises(DAGError):
            ComputationalDAG(-1, [])

    def test_edge_id_unknown_edge(self):
        with pytest.raises(DAGError):
            diamond().edge_id(3, 0)


class TestStructure:
    def test_topological_order(self):
        dag = diamond()
        pos = dag.topological_position()
        for u, v in dag.edges:
            assert pos[u] < pos[v]

    def test_ancestors_descendants(self):
        dag = diamond()
        assert dag.ancestors(3) == {0, 1, 2}
        assert dag.descendants(0) == {1, 2, 3}
        assert dag.ancestors(0) == set()
        assert dag.descendants(3) == set()

    def test_reachability(self):
        dag = diamond()
        assert dag.has_path(0, 3)
        assert dag.has_path(1, 3)
        assert not dag.has_path(1, 2)
        assert dag.has_path(2, 2)
        assert dag.reachable_from([1]) == {1, 3}

    def test_isolated_node_detection(self):
        dag = ComputationalDAG(3, [(0, 1)])
        with pytest.raises(DAGError):
            dag.validate_no_isolated()
        diamond().validate_no_isolated()

    def test_induced_subgraph(self):
        dag = diamond()
        sub = dag.induced_subgraph([0, 1, 3])
        assert sub.n == 3
        assert sub.m == 2  # 0->1 and 1->3 survive (renumbered)

    def test_trivial_cost(self):
        assert diamond().trivial_cost() == 2

    def test_equality_and_hash(self):
        a = diamond()
        b = ComputationalDAG(4, [(0, 2), (0, 1), (2, 3), (1, 3)])
        assert a == b
        assert hash(a) == hash(b)
        c = ComputationalDAG(4, [(0, 1), (0, 2), (1, 3)])
        assert a != c


class TestNetworkxInterop:
    def test_roundtrip(self):
        dag = diamond()
        g = dag.to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 4
        back = ComputationalDAG.from_networkx(g)
        assert back == dag

    def test_from_networkx_relabels_non_integer_nodes(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        dag = ComputationalDAG.from_networkx(g)
        assert dag.n == 3
        assert dag.m == 2
        assert sorted(dag.label(v) for v in dag.nodes()) == ["a", "b", "c"]
