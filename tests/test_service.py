"""Integration tests of the repro.service daemon over real TCP connections.

Every test starts a :class:`~repro.service.SolveService` on an ephemeral
port inside one ``asyncio.run`` and talks to it through the actual client
library — the frames on the wire are the production protocol, not mocks.
The pool runs in thread mode (``prefer_processes=False``) so tests stay
fast and sandbox-safe; the process path is covered by the CI smoke
(``python -m repro.service smoke``) and shares all code above the executor.

Slow, uncacheable solves (a ``time_budget_s`` on the anytime refiner) are
the control knob for scheduling tests: they occupy a worker for a known
wall-clock window without touching the cache or the dedup table.
"""

import asyncio
import json
import struct

import pytest

from repro.api import PebblingProblem, solve
from repro.dags import chained_gadget_dag, figure1_gadget, kary_tree_dag
from repro.dags.random_dags import random_layered_dag
from repro.service import (
    ProtocolError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    SolveService,
)
from repro.obs.metrics import parse_exposition
from repro.obs.tracing import Tracer
from repro.service.protocol import PROTOCOL_VERSION, encode_frame, make_request, read_frame


def _mixed_workload():
    """Mixed RBP/PRBP quick-tier problems across solver territories."""
    return [
        PebblingProblem(figure1_gadget(), r=4, game="prbp"),
        PebblingProblem(figure1_gadget(), r=4, game="rbp"),
        PebblingProblem(kary_tree_dag(2, 4), r=3, game="prbp"),
        PebblingProblem(kary_tree_dag(3, 3), r=4, game="rbp"),
        PebblingProblem(chained_gadget_dag(8), r=4, game="rbp"),
        PebblingProblem(random_layered_dag((4, 6, 4), 0.3, 3, 0), r=5, game="prbp"),
    ]


#: A solve that holds a worker for ~this many seconds and is never cached
#: (wall-clock budgets are uncacheable by policy), so it cannot interfere
#: with cache/dedup assertions made around it.
SLOW_BUDGET_S = 0.4


def _slow_problem():
    return PebblingProblem(chained_gadget_dag(16), r=4, game="rbp")


def _slow_options():
    return {"solver": "anytime", "time_budget_s": SLOW_BUDGET_S, "seed": 0}


def _run_with_service(fn, **config):
    """Start a service, run ``await fn(service, host, port)``, shut down."""
    config.setdefault("prefer_processes", False)

    async def run():
        service = SolveService(ServiceConfig(port=0, **config))
        await service.start()
        try:
            host, port = service.address
            return await fn(service, host, port)
        finally:
            await service.shutdown(drain=True)

    return asyncio.run(run())


class TestConcurrentClients:
    def test_four_concurrent_clients_match_serial_solves(self):
        """Acceptance: >= 4 clients, mixed quick-tier RBP/PRBP, bit-identical."""
        workload = _mixed_workload()
        serial = [solve(problem) for problem in workload]

        async def client_pass(host, port, offset):
            rotated = workload[offset:] + workload[:offset]
            wanted = serial[offset:] + serial[:offset]
            async with await ServiceClient.connect(host, port) as client:
                for problem, want in zip(rotated, wanted):
                    got = await client.solve(problem)
                    assert got.cost == want.cost
                    assert got.solver == want.solver
                    assert got.exact_solver == want.exact_solver
                    assert got.lower_bound == want.lower_bound
                    assert got.schedule.moves == want.schedule.moves
                    assert got.stats == want.stats

        async def scenario(service, host, port):
            await asyncio.gather(*(client_pass(host, port, i) for i in range(4)))
            stats = service.stats()
            assert stats["jobs"]["completed"] >= len(workload)
            # 4 clients x 6 problems but only 6 distinct solves were needed:
            # the rest were answered by the cache or shared in flight.
            assert stats["jobs"]["completed"] == len(workload)
            assert (
                stats["jobs"]["cache_answers"] + stats["jobs"]["dedup_shared"]
                == 4 * len(workload) - len(workload)
            )

        _run_with_service(scenario, workers=3)

    def test_repeat_requests_hit_the_shared_cache(self):
        workload = _mixed_workload()[:3]

        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                for problem in workload:
                    _, meta = await client.solve_detailed(problem)
                    assert meta["cache_hit"] is False
                for problem in workload:
                    _, meta = await client.solve_detailed(problem)
                    assert meta["cache_hit"] is True
                stats = await client.stats()
                assert stats["jobs"]["cache_answers"] == len(workload)
                assert stats["jobs"]["admitted"] == len(workload)

        _run_with_service(scenario)

    def test_disk_cache_survives_a_service_restart(self, tmp_path):
        problem = PebblingProblem(kary_tree_dag(2, 4), r=3, game="prbp")

        async def first(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                result, meta = await client.solve_detailed(problem)
                assert meta["cache_hit"] is False
                return result

        async def second(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                result, meta = await client.solve_detailed(problem)
                assert meta["cache_hit"] is True, "expected the disk tier to answer"
                assert service.stats()["jobs"]["admitted"] == 0
                return result

        cold = _run_with_service(first, cache_dir=tmp_path)
        warm = _run_with_service(second, cache_dir=tmp_path)
        assert warm.cost == cold.cost and warm.schedule.moves == cold.schedule.moves

    def test_identical_concurrent_requests_share_one_solve(self):
        shared_problem = PebblingProblem(kary_tree_dag(2, 4), r=3, game="prbp")

        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as occupier:
                # Pin the single worker so the shared problem stays queued
                # (and in the in-flight table) long enough to be joined.
                await occupier.submit(_slow_problem(), **_slow_options())

                async def one_solve():
                    async with await ServiceClient.connect(host, port) as client:
                        return await client.solve(shared_problem)

                first = asyncio.ensure_future(one_solve())
                await asyncio.sleep(0.05)  # let the first request get admitted
                second = asyncio.ensure_future(one_solve())
                results = await asyncio.gather(first, second)

            assert results[0].cost == results[1].cost
            assert results[0].schedule.moves == results[1].schedule.moves
            stats = service.stats()
            assert stats["jobs"]["dedup_shared"] == 1
            assert stats["jobs"]["cache_answers"] == 0

        _run_with_service(scenario, workers=1)


class TestStreaming:
    def test_streamed_anytime_progress_is_monotone_and_improving(self):
        """Acceptance: >= 2 strictly improving cost events before the result."""
        problem = _slow_problem()
        options = {"refine_steps": 192, "seed": 0}
        local = solve(problem, **options)

        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                seen_live = []
                result, events = await client.solve_stream(
                    problem, on_progress=lambda ev: seen_live.append(ev), **options
                )
            assert events == seen_live
            costs = [event.cost for event in events]
            assert len(costs) >= 3  # the seed event plus >= 2 improvements
            improvements = [c for prev, c in zip(costs, costs[1:]) if c < prev]
            assert len(improvements) >= 2
            assert costs == sorted(costs, reverse=True)
            assert costs[-1] == result.cost
            # The stream is the refinement trajectory of a local solve:
            # same seed cost first, same final cost last.
            trajectory = local.solve_stats.refinement
            assert costs[0] == trajectory.initial_cost
            assert result.cost == local.cost
            assert result.schedule.moves == local.schedule.moves
            assert service.stats()["streamed_events"] == len(events)

        _run_with_service(scenario)

    def test_cache_answered_stream_returns_no_events(self):
        problem = _slow_problem()
        options = {"refine_steps": 96, "seed": 0}

        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                fresh, fresh_events = await client.solve_stream(problem, **options)
                assert len(fresh_events) >= 2
                # the repeat is a cache answer: no solve runs, so nothing
                # streams — the documented contract of solve_stream
                cached, cached_events = await client.solve_stream(problem, **options)
            assert cached_events == []
            assert cached.cost == fresh.cost
            assert cached.schedule.moves == fresh.schedule.moves
            assert service.stats()["jobs"]["cache_answers"] == 1

        _run_with_service(scenario)

    def test_two_streaming_clients_get_independent_feeds(self):
        problem = _slow_problem()
        options = {"refine_steps": 96, "seed": 3}

        async def one_stream(host, port):
            async with await ServiceClient.connect(host, port) as client:
                return await client.solve_stream(problem, **options)

        async def scenario(service, host, port):
            (res_a, ev_a), (res_b, ev_b) = await asyncio.gather(
                one_stream(host, port), one_stream(host, port)
            )
            # Streamed requests never dedup (each needs its own event feed),
            # and the refiner is deterministic, so the feeds are equal.
            assert res_a.cost == res_b.cost
            assert [e.cost for e in ev_a] == [e.cost for e in ev_b]
            assert service.stats()["jobs"]["dedup_shared"] == 0
            assert service.stats()["jobs"]["admitted"] == 2

        _run_with_service(scenario, workers=2)


class TestJobs:
    def test_submit_poll_wait_lifecycle(self):
        problem = PebblingProblem(figure1_gadget(), r=4, game="prbp")
        want = solve(problem)

        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                job_id = await client.submit(problem)
                assert job_id.startswith("job-")
                result = await client.wait(job_id, problem)
                assert result.cost == want.cost
                assert result.schedule.moves == want.schedule.moves
                state, again = await client.poll(job_id, problem)
                assert state == "done" and again is not None

        _run_with_service(scenario)

    def test_submit_of_a_cached_problem_still_returns_a_pollable_job(self):
        problem = PebblingProblem(figure1_gadget(), r=4, game="prbp")

        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                want = await client.solve(problem)  # warms the shared cache
                job_id = await client.submit(problem)  # fast path: cache answer
                state, result = await client.poll(job_id, problem)
                assert state == "done" and result is not None
                assert result.cost == want.cost
                assert result.schedule.moves == want.schedule.moves
                stats = service.stats()
                assert stats["jobs"]["cache_answers"] == 1
                assert stats["jobs"]["admitted"] == 1  # the repeat never queued

        _run_with_service(scenario)

    def test_a_bad_option_fails_one_job_without_degrading_the_pool(self):
        # a non-optimal solve, so the refinement pass (which parses the bad
        # option) actually runs — an optimally solved problem would skip it
        problem = PebblingProblem(chained_gadget_dag(8), r=4, game="rbp")

        async def scenario(service, host, port):
            mode = service.stats()["pool"]["mode"]
            async with await ServiceClient.connect(host, port) as client:
                with pytest.raises(ServiceError) as err:
                    # schema-valid (a JSON scalar) but rejected by the solver
                    # machinery: must fail this job only, not the pool
                    await client.solve(problem, refine_steps="not-a-number")
                assert err.value.code == "internal"
                good = await client.solve(problem)
                assert good.cost == solve(problem).cost
            stats = service.stats()
            assert stats["pool"]["mode"] == mode  # no thread-mode degradation
            assert stats["pool"]["fallback_reason"] is None or mode == "thread"

        # run with real worker processes: the regression this pins was the
        # process pool being torn down on a task's own exception
        _run_with_service(scenario, prefer_processes=True)

    def test_polling_an_unknown_job_is_an_error(self):
        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                with pytest.raises(ServiceError) as err:
                    await client.poll("job-nope")
                assert err.value.code == "unknown-job"

        _run_with_service(scenario)

    def test_solver_failures_travel_as_solver_error(self):
        infeasible = PebblingProblem(kary_tree_dag(2, 3), r=1, game="prbp")

        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                with pytest.raises(ServiceError) as err:
                    await client.solve(infeasible)
                assert err.value.code == "solver-error"
                assert service.stats()["jobs"]["failed"] == 1
                # the connection survives an application-level failure
                assert (await client.ping())["op"] == "pong"

        _run_with_service(scenario)

    def test_queued_job_past_its_deadline_is_expired_unstarted(self):
        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                await client.submit(_slow_problem(), **_slow_options())
                with pytest.raises(ServiceError) as err:
                    await client.solve(
                        PebblingProblem(kary_tree_dag(2, 4), r=3, game="prbp"),
                        deadline_s=0.05,
                    )
                assert err.value.code == "deadline"
                stats = service.stats()
                assert stats["jobs"]["expired"] == 1
                # the expired job never reached a worker
                assert stats["jobs"]["failed"] == 0

        _run_with_service(scenario, workers=1)

    def test_expired_job_does_not_poison_later_identical_requests(self):
        problem = PebblingProblem(kary_tree_dag(2, 4), r=3, game="prbp")
        want = solve(problem)

        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                await client.submit(_slow_problem(), **_slow_options())
                with pytest.raises(ServiceError) as err:
                    await client.solve(problem, deadline_s=0.05)
                assert err.value.code == "deadline"
                # regression: the expired job must leave the in-flight dedup
                # table, or this identical (deadline-free) request would be
                # answered with the stale deadline error forever
                got = await client.solve(problem)
                assert got.cost == want.cost
                assert got.schedule.moves == want.schedule.moves

        _run_with_service(scenario, workers=1)

    def test_full_queue_turns_requests_away(self):
        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                await client.submit(_slow_problem(), **_slow_options())
                await asyncio.sleep(0.1)  # the dispatcher takes it off the queue
                await client.submit(  # fills the single pending slot
                    PebblingProblem(kary_tree_dag(2, 4), r=3, game="prbp")
                )
                with pytest.raises(ServiceError) as err:
                    await client.solve(PebblingProblem(figure1_gadget(), r=4, game="prbp"))
                assert err.value.code == "queue-full"
                assert service.stats()["jobs"]["rejected_full"] == 1

        _run_with_service(scenario, workers=1, max_pending=1)

    def test_higher_priority_jobs_dequeue_first(self):
        fast_low = PebblingProblem(figure1_gadget(), r=4, game="prbp")
        fast_high = PebblingProblem(kary_tree_dag(2, 4), r=3, game="prbp")

        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                await client.submit(_slow_problem(), **_slow_options())  # pins the worker
                low_id = await client.submit(fast_low, priority=0)
                high_id = await client.submit(fast_high, priority=5)
                await client.wait(high_id, fast_high)
                high_done_order = service._jobs[high_id].finished_at
                await client.wait(low_id, fast_low)
                low_done_order = service._jobs[low_id].finished_at
                assert high_done_order < low_done_order

        _run_with_service(scenario, workers=1)


class TestShutdown:
    def test_graceful_shutdown_drains_queued_jobs(self):
        """Acceptance: shutdown with drain finishes everything admitted."""
        workload = _mixed_workload()[:4]
        serial = [solve(problem) for problem in workload]

        async def client_solve(host, port, problem, want):
            async with await ServiceClient.connect(host, port) as client:
                got = await client.solve(problem)
                assert got.cost == want.cost and got.schedule.moves == want.schedule.moves

        async def scenario(service, host, port):
            solvers = [
                asyncio.ensure_future(client_solve(host, port, problem, want))
                for problem, want in zip(workload, serial)
            ]
            # wait until every request is admitted — a shutdown racing the
            # admissions would (correctly) reject the stragglers, which is
            # not what this test is about
            while service.stats()["jobs"]["admitted"] < len(workload):
                await asyncio.sleep(0.01)
            async with await ServiceClient.connect(host, port) as admin:
                await admin.shutdown_server(drain=True)
            await asyncio.gather(*solvers)  # every in-flight request still answered
            await service.wait_closed()
            stats = service.stats()
            assert stats["jobs"]["completed"] == len(workload)
            assert stats["closing"] is True

        async def run():
            service = SolveService(ServiceConfig(port=0, prefer_processes=False, workers=1))
            await service.start()
            host, port = service.address
            await scenario(service, host, port)

        asyncio.run(run())

    def test_abort_shutdown_fails_queued_jobs(self):
        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                await client.submit(_slow_problem(), **_slow_options())  # runs
                queued = asyncio.ensure_future(
                    client.__class__.connect(host, port)
                )
                queued_client = await queued
                waiter = asyncio.ensure_future(
                    queued_client.solve(PebblingProblem(kary_tree_dag(2, 4), r=3, game="prbp"))
                )
                await asyncio.sleep(0.05)
                await client.shutdown_server(drain=False)
                with pytest.raises(ServiceError) as err:
                    await waiter
                assert err.value.code == "shutting-down"
                await queued_client.close()
            await service.wait_closed()

        async def run():
            service = SolveService(ServiceConfig(port=0, prefer_processes=False, workers=1))
            await service.start()
            host, port = service.address
            await scenario(service, host, port)

        asyncio.run(run())

    def test_draining_service_refuses_new_work(self):
        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                service.request_shutdown(drain=True)
                await asyncio.sleep(0)  # let the shutdown task flip the flag
                with pytest.raises(ServiceError) as err:
                    await client.solve(PebblingProblem(figure1_gadget(), r=4, game="prbp"))
                assert err.value.code == "shutting-down"
            await service.wait_closed()

        async def run():
            service = SolveService(ServiceConfig(port=0, prefer_processes=False))
            await service.start()
            host, port = service.address
            await scenario(service, host, port)

        asyncio.run(run())


class TestWireRobustness:
    def test_garbage_bytes_get_a_protocol_error_then_hangup(self):
        async def scenario(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(struct.pack(">I", 12) + b"not-json-at!")
            await writer.drain()
            doc = await read_frame(reader)
            assert doc["op"] == "error" and doc["code"] == "protocol"
            assert await reader.read() == b""  # server hung up after the error
            writer.close()
            assert service.stats()["protocol_errors"] == 1

        _run_with_service(scenario)

    def test_oversized_length_prefix_closes_the_connection(self):
        async def scenario(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(struct.pack(">I", 0xFFFFFFF0))
            await writer.drain()
            doc = await read_frame(reader)
            assert doc["op"] == "error" and doc["code"] == "protocol"
            assert await reader.read() == b""
            writer.close()

        _run_with_service(scenario)

    def test_bad_message_keeps_the_connection_alive(self):
        async def scenario(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame({"v": 1, "op": "warp", "id": "r1"}))
            await writer.drain()
            doc = await read_frame(reader)
            assert doc["op"] == "error" and doc["code"] == "bad-request"
            assert doc["id"] == "r1"
            # framing stayed synchronized: the next request works
            writer.write(encode_frame(make_request("ping", "r2")))
            await writer.drain()
            doc = await read_frame(reader)
            assert doc["op"] == "pong" and doc["id"] == "r2"
            writer.close()

        _run_with_service(scenario)

    def test_wrong_protocol_version_is_refused(self):
        async def scenario(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame({"v": 999, "op": "ping", "id": "r1"}))
            await writer.drain()
            doc = await read_frame(reader)
            assert doc["op"] == "error" and doc["code"] == "bad-request"
            assert "version" in doc["error"]
            writer.close()

        _run_with_service(scenario)

    def test_undecodable_problem_is_bad_request_not_a_crash(self):
        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                good = PebblingProblem(figure1_gadget(), r=4, game="prbp")
                from repro.service.protocol import problem_to_wire

                doc = problem_to_wire(good)
                doc["dag_digest"] = "f" * 64
                with pytest.raises(ServiceError) as err:
                    await client._roundtrip(
                        "solve", problem=doc, solver="auto", options={}, stream=False, wait=True
                    )
                assert err.value.code == "bad-request"
                assert (await client.ping())["op"] == "pong"

        _run_with_service(scenario)

    def test_client_rejects_mismatched_response_ids(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"v": 1, "op": "pong", "id": "stale"}))
            reader.feed_eof()

            class _NullWriter:
                def write(self, data):
                    pass

                async def drain(self):
                    pass

                def close(self):
                    pass

                async def wait_closed(self):
                    pass

            client = ServiceClient(reader, _NullWriter())
            with pytest.raises(ProtocolError, match="does not match"):
                await client.ping()

        asyncio.run(scenario())


class TestObservability:
    def test_stats_snapshot_shape(self):
        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                await client.solve(PebblingProblem(figure1_gadget(), r=4, game="prbp"))
                stats = await client.stats()
            assert stats["protocol_version"] == PROTOCOL_VERSION
            assert stats["pool"]["mode"] == "thread"
            assert stats["queue"]["max_pending"] == 256
            assert stats["jobs"]["admitted"] == 1
            assert stats["requests"]["solve"] == 1
            assert stats["cache"]["memory_entries"] == 1
            assert stats["connections"]["total"] >= 1

        _run_with_service(scenario)

    def test_metrics_op_exposes_core_series(self):
        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                await client.solve(PebblingProblem(figure1_gadget(), r=4, game="prbp"))
                doc = await client.metrics()
            families = parse_exposition(doc["exposition"])
            assert families["repro_request_latency_seconds"]["type"] == "histogram"
            assert families["repro_requests_total"]["type"] == "counter"
            assert families["repro_queue_depth"]["type"] == "gauge"
            assert "repro_request_latency_seconds" in doc["snapshot"]
            # the stats() dict carries the same histograms, summarised
            latency = service.stats()["latency"]["repro_request_latency_seconds"]
            assert latency["count"] >= 1

        _run_with_service(scenario)

    def test_one_trace_id_spans_admission_queue_and_solver(self, tmp_path):
        """Acceptance: request, queue-wait and solver spans stitch under one id."""
        trace_file = tmp_path / "spans.jsonl"
        problem = PebblingProblem(figure1_gadget(), r=4, game="prbp")

        async def scenario(service, host, port):
            tracer = Tracer(node="client")
            async with await ServiceClient.connect(host, port) as client:
                with tracer.span("client.solve") as span:
                    await client.solve(problem)
            return span.context.trace_id

        trace_id = _run_with_service(scenario, trace_file=trace_file)
        spans = [json.loads(line) for line in trace_file.read_text().splitlines()]
        names = {span["name"] for span in spans if span["trace_id"] == trace_id}
        # the ambient client context crossed the wire: the request span,
        # the retroactive queue-wait span and the solver span all joined it
        assert {"server.solve_request", "queue_wait", "solve_exec"} <= names
        for span in spans:
            if span["trace_id"] == trace_id:
                assert span["node"].startswith("service:")

    def test_cache_can_be_disabled(self):
        problem = PebblingProblem(figure1_gadget(), r=4, game="prbp")

        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                _, first = await client.solve_detailed(problem)
                _, second = await client.solve_detailed(problem)
            assert first["cache_hit"] is False and second["cache_hit"] is False
            stats = service.stats()
            assert stats["cache"] is None
            assert stats["jobs"]["admitted"] == 2

        _run_with_service(scenario, enable_cache=False)


class TestCommandLine:
    """The ``python -m repro.service`` / service-bench entry points."""

    def test_smoke_subcommand_passes_end_to_end(self, capsys):
        from repro.service.__main__ import main

        assert main(["smoke", "--no-processes"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out
        assert "[FAIL]" not in out

    def test_client_subcommands_against_a_live_server(self, capsys):
        import os
        import re
        import subprocess
        import sys

        import repro

        from repro.service.__main__ import main

        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve", "--port", "0", "--no-processes"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = server.stdout.readline()
            match = re.search(r"listening on .*:(\d+)", banner)
            assert match, f"no listening banner in {banner!r}"
            port = match.group(1)

            assert main(["ping", "--port", port]) == 0
            assert "pong" in capsys.readouterr().out

            assert (
                main(
                    [
                        "solve",
                        "--port",
                        port,
                        "--scenario",
                        "chained-rbp-greedy",
                        "--stream",
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert "anytime cost" in out and "progress events" in out

            assert main(["stats", "--port", port]) == 0
            assert '"admitted": 1' in capsys.readouterr().out

            assert main(["shutdown", "--port", port]) == 0
            assert "shutdown requested" in capsys.readouterr().out
            assert server.wait(timeout=10) == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()

    def test_connecting_to_a_dead_port_reports_cleanly(self, capsys):
        from repro.service.__main__ import main

        # bind-and-release: the port exists but nothing listens on it
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        assert main(["ping", "--port", str(port)]) == 1
        assert "no service is listening" in capsys.readouterr().err

    def test_service_bench_cli_runs_and_reports(self, capsys, tmp_path):
        import json

        from repro.bench.service_bench import main

        out_path = tmp_path / "SERVICE_BENCH.json"
        assert (
            main(
                [
                    "--clients",
                    "2",
                    "--no-processes",
                    "--scenario",
                    "tree-prbp-critical",
                    "--scenario",
                    "chained-prbp-constant",
                    "--output",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cold:" in out and "warm:" in out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro-prbp-service-bench"
        assert doc["phases"]["warm"]["cache_hits"] == doc["phases"]["warm"]["requests"]
        warm_latency = doc["phases"]["warm"]["latency_s"]
        assert warm_latency["p99"] >= warm_latency["p50"]
        assert doc["server"]["admitted"] == 2


class TestCacheProbe:
    """cache_only solves: answer from the shared cache or fail typed, never solve."""

    def test_probe_misses_then_hits_after_a_solve(self):
        problem = _mixed_workload()[0]

        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                assert await client.probe(problem) is None  # nothing solved yet
                solved = await client.solve(problem)
                probed = await client.probe(problem)
                assert probed is not None
                assert probed.cost == solved.cost
                assert probed.schedule.moves == solved.schedule.moves
                stats = await client.stats()
                assert stats["jobs"]["probe_misses"] == 1
                assert stats["jobs"]["probe_hits"] == 1
                # the miss did not enqueue a solve: only the real one ran
                assert stats["jobs"]["admitted"] == 1

        _run_with_service(scenario)

    def test_uncacheable_options_always_probe_miss(self):
        async def scenario(service, host, port):
            async with await ServiceClient.connect(host, port) as client:
                await client.solve(_slow_problem(), **_slow_options())
                # wall-clock budgets are uncacheable, so the probe cannot
                # serve what the solve just computed
                probed = await client.probe(_slow_problem(), "anytime", **{
                    k: v for k, v in _slow_options().items() if k != "solver"
                })
                assert probed is None

        _run_with_service(scenario, workers=1)
