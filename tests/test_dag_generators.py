"""Structural tests for every DAG family generator."""

import pytest

from repro.dags import (
    attention_instance,
    binary_tree_instance,
    chained_gadget_instance,
    fanin_groups_instance,
    fft_instance,
    figure1_instance,
    kary_tree_instance,
    matmul_instance,
    matvec_instance,
    pebble_collection_instance,
    pyramid_instance,
    random_dag,
    random_layered_dag,
    zipper_instance,
)


class TestFigure1:
    def test_paper_shape(self):
        inst = figure1_instance()
        dag = inst.dag
        assert dag.n == 10
        assert dag.m == 14
        assert dag.sources == (inst.u0,)
        assert dag.sinks == (inst.v0,)
        assert dag.max_in_degree == 2
        assert dag.max_out_degree == 3
        assert dag.trivial_cost() == 2

    def test_core_gadget(self):
        inst = figure1_instance(include_endpoints=False)
        assert inst.dag.n == 8
        assert set(inst.dag.sources) == {inst.u1, inst.u2}
        assert set(inst.dag.sinks) == {inst.v1, inst.v2}
        assert not inst.has_z_layer and not inst.has_w0

    def test_z_layer_variant(self):
        inst = figure1_instance(with_z_layer=True)
        assert inst.has_z_layer
        assert inst.dag.n == 12
        assert set(inst.dag.successors(inst.u0)) == {inst.z1, inst.z2}
        assert set(inst.dag.predecessors(inst.u1)) == {inst.z1, inst.z2}

    def test_w0_variant(self):
        inst = figure1_instance(with_w0=True)
        assert inst.has_w0
        assert inst.dag.has_edge(inst.u1, inst.w0)
        assert inst.dag.has_edge(inst.w0, inst.w3)
        assert inst.dag.in_degree(inst.w3) == 3

    def test_z_layer_requires_endpoints(self):
        with pytest.raises(ValueError):
            figure1_instance(include_endpoints=False, with_z_layer=True)


class TestChainedGadget:
    @pytest.mark.parametrize("copies", [1, 2, 5])
    def test_size_grows_linearly(self, copies):
        inst = chained_gadget_instance(copies)
        # 8 own nodes for the first copy, 6 new per further copy, plus u0 and v0
        assert inst.dag.n == 2 + 8 + 6 * (copies - 1)
        assert inst.dag.sources == (inst.u0,)
        assert inst.dag.sinks == (inst.v0,)
        assert inst.dag.max_in_degree == 2
        assert inst.dag.max_out_degree == 3

    def test_copies_are_merged(self):
        inst = chained_gadget_instance(3)
        for i in range(2):
            assert inst.gadget_nodes[i]["v1"] == inst.gadget_nodes[i + 1]["u1"]
            assert inst.gadget_nodes[i]["v2"] == inst.gadget_nodes[i + 1]["u2"]

    def test_rejects_zero_copies(self):
        with pytest.raises(ValueError):
            chained_gadget_instance(0)


class TestZipper:
    def test_shape(self):
        inst = zipper_instance(d=3, length=5)
        dag = inst.dag
        assert dag.n == 2 * 3 + 5
        assert len(dag.sources) == 6
        assert dag.sinks == (inst.chain[-1],)
        # chain node 0 depends on group A only; later nodes also on the previous node
        assert set(dag.predecessors(inst.chain[0])) == set(inst.group_a)
        assert set(dag.predecessors(inst.chain[1])) == set(inst.group_b) | {inst.chain[0]}
        assert inst.group_for(0) == inst.group_a
        assert inst.group_for(1) == inst.group_b

    def test_in_degree(self):
        inst = zipper_instance(d=4, length=6)
        assert inst.dag.max_in_degree == 5  # d group inputs + previous chain node

    def test_validation(self):
        with pytest.raises(ValueError):
            zipper_instance(0, 5)
        with pytest.raises(ValueError):
            zipper_instance(3, 1)


class TestPebbleCollection:
    def test_shape(self):
        inst = pebble_collection_instance(d=3, length=7)
        dag = inst.dag
        assert dag.n == 10
        assert len(dag.sources) == 3
        assert dag.sinks == (inst.chain[-1],)
        assert inst.source_for(0) == inst.sources[0]
        assert inst.source_for(3) == inst.sources[0]
        assert inst.source_for(4) == inst.sources[1]
        # chain node i >= 1 has in-degree 2
        assert dag.in_degree(inst.chain[0]) == 1
        assert all(dag.in_degree(c) == 2 for c in inst.chain[1:])


class TestTrees:
    @pytest.mark.parametrize("k,depth", [(2, 1), (2, 4), (3, 2), (4, 2)])
    def test_shape(self, k, depth):
        inst = kary_tree_instance(k, depth)
        dag = inst.dag
        assert dag.n == sum(k**i for i in range(depth + 1))
        assert len(inst.leaves) == k**depth
        assert dag.sinks == (inst.root,)
        assert set(dag.sources) == set(inst.leaves)
        assert all(dag.in_degree(v) == k for v in dag.nodes() if not dag.is_source(v))

    def test_children_accessor(self):
        inst = binary_tree_instance(3)
        kids = inst.children(0, 0)
        assert len(kids) == 2
        assert all(inst.dag.has_edge(c, inst.root) for c in kids)

    def test_validation(self):
        with pytest.raises(ValueError):
            kary_tree_instance(1, 3)
        with pytest.raises(ValueError):
            kary_tree_instance(2, 0)


class TestPyramid:
    def test_shape(self):
        inst = pyramid_instance(4)
        dag = inst.dag
        assert dag.n == sum(range(1, 6))
        assert len(inst.base) == 5
        assert dag.sinks == (inst.apex,)
        assert all(dag.in_degree(v) == 2 for v in dag.nodes() if not dag.is_source(v))


class TestLinalg:
    def test_matvec_shape(self):
        inst = matvec_instance(3)
        dag = inst.dag
        m = 3
        assert dag.n == 2 * m * m + 2 * m
        assert len(dag.sources) == m * m + m
        assert len(dag.sinks) == m
        assert all(dag.in_degree(inst.product(j, i)) == 2 for j in range(m) for i in range(m))
        assert all(dag.in_degree(inst.y(j)) == m for j in range(m))
        assert dag.has_edge(inst.a(1, 2), inst.product(1, 2))
        assert dag.has_edge(inst.x(2), inst.product(1, 2))

    def test_matmul_shape(self):
        inst = matmul_instance(2, 3, 4)
        dag = inst.dag
        assert dag.n == 2 * 3 + 3 * 4 + 2 * 3 * 4 + 2 * 4
        assert len(dag.sources) == 2 * 3 + 3 * 4
        assert len(dag.sinks) == 2 * 4
        assert inst.internal_edges == 24
        # every product node has out-degree exactly 1 (the paper's internal edge)
        for i in range(2):
            for k in range(3):
                for j in range(4):
                    assert dag.out_degree(inst.product(i, k, j)) == 1
        assert all(dag.in_degree(inst.c(i, j)) == 3 for i in range(2) for j in range(4))


class TestFFT:
    @pytest.mark.parametrize("m", [2, 4, 8, 16])
    def test_shape(self, m):
        inst = fft_instance(m)
        dag = inst.dag
        levels = m.bit_length() - 1
        assert dag.n == m * (levels + 1)
        assert len(dag.sources) == m
        assert len(dag.sinks) == m
        assert all(dag.in_degree(v) == 2 for v in dag.nodes() if not dag.is_source(v))
        assert all(dag.out_degree(v) == 2 for v in dag.nodes() if not dag.is_sink(v))

    def test_butterfly_wiring(self):
        inst = fft_instance(8)
        # node (1, 5) depends on (0, 5) and (0, 4)
        preds = set(inst.dag.predecessors(inst.node(1, 5)))
        assert preds == {inst.node(0, 5), inst.node(0, 4)}

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft_instance(6)
        with pytest.raises(ValueError):
            fft_instance(1)


class TestAttention:
    def test_truncated_shape(self):
        inst = attention_instance(m=3, d=2)
        dag = inst.dag
        assert dag.n == 2 * 3 * 2 + 9 * 2 + 9 + 9
        assert len(dag.sources) == 2 * 3 * 2
        assert len(dag.sinks) == 9  # the exp nodes
        assert inst.internal_edges == 9 * 2
        # score nodes are not sinks: each feeds its exp node
        assert all(dag.out_degree(inst.score(i, j)) == 1 for i in range(3) for j in range(3))

    def test_softmax_extension(self):
        inst = attention_instance(m=2, d=2, include_softmax=True)
        dag = inst.dag
        assert len(dag.sinks) == 4  # the normalised outputs
        assert dag.in_degree(inst.rowsum(0)) == 2
        assert dag.in_degree(inst.output(0, 1)) == 2

    def test_softmax_accessors_guarded(self):
        inst = attention_instance(m=2, d=2)
        with pytest.raises(ValueError):
            inst.rowsum(0)


class TestFanIn:
    def test_shape(self):
        inst = fanin_groups_instance(num_groups=7, group_size=5)
        dag = inst.dag
        assert dag.n == 7 + 35 + 1
        assert len(dag.sources) == 7
        assert dag.sinks == (inst.sink,)
        assert dag.in_degree(inst.sink) == 35
        for gi in range(7):
            for w in inst.groups[gi]:
                assert set(dag.predecessors(w)) == {inst.sources[gi]}


class TestRandomDAGs:
    def test_layered_is_reproducible_and_valid(self):
        a = random_layered_dag([3, 4, 2], edge_probability=0.5, seed=7)
        b = random_layered_dag([3, 4, 2], edge_probability=0.5, seed=7)
        assert a == b
        a.validate_no_isolated()
        assert len(a.sources) <= 3

    def test_layered_respects_max_in_degree(self):
        dag = random_layered_dag([4, 6, 6], edge_probability=0.9, max_in_degree=2, seed=1)
        assert dag.max_in_degree <= 2

    def test_random_dag_no_isolated(self):
        for seed in range(5):
            dag = random_dag(12, edge_probability=0.15, seed=seed)
            dag.validate_no_isolated()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_layered_dag([3])
        with pytest.raises(ValueError):
            random_dag(1)
        with pytest.raises(ValueError):
            random_layered_dag([2, 2], edge_probability=1.5)
