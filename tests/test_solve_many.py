"""Batch-solving consistency: solve_many ≡ serial solve(), cache included.

The contract under test is the one :mod:`repro.api.batch` documents: for any
batch, any job count and any cache state, ``solve_many`` returns results
identical to a serial ``solve()`` loop — same costs, same winning solvers,
same move lists.  Corruption of on-disk cache entries must be detected and
answered with recomputation, never with a damaged result.
"""

import pickle

import pytest

from repro.api import (
    PebblingProblem,
    ResultCache,
    SolveResult,
    cacheable_options,
    problem_digest,
    solve,
    solve_many,
    solve_many_detailed,
)
from repro.core.exceptions import SolverError
from repro.dags import figure1_gadget, kary_tree_dag
from repro.dags.random_dags import random_dag, random_layered_dag


def _mixed_batch():
    """Exhaustive, structured and greedy territory in one batch."""
    return [
        PebblingProblem(figure1_gadget(), r=4, game="prbp"),
        PebblingProblem(figure1_gadget(), r=4, game="rbp"),
        PebblingProblem(kary_tree_dag(2, 3), r=3, game="prbp"),
        PebblingProblem(kary_tree_dag(2, 3), r=3, game="rbp"),
        PebblingProblem(random_layered_dag((4, 6, 4), 0.3, 3, 0), r=5, game="prbp"),
        PebblingProblem(random_dag(6, edge_probability=0.3, seed=11), r=3, game="prbp"),
    ]


def _assert_identical(batch_results, serial_results):
    assert len(batch_results) == len(serial_results)
    for got, want in zip(batch_results, serial_results):
        assert isinstance(got, SolveResult)
        assert got.cost == want.cost
        assert got.solver == want.solver
        assert got.exact_solver == want.exact_solver
        assert got.lower_bound == want.lower_bound
        assert got.lower_bound_source == want.lower_bound_source
        assert got.stats == want.stats
        assert got.schedule.moves == want.schedule.moves
        assert got.problem == want.problem


class TestSerialEquivalence:
    def test_batch_matches_serial_loop(self):
        problems = _mixed_batch()
        _assert_identical(solve_many(problems), [solve(p) for p in problems])

    def test_parallel_matches_serial_loop(self):
        problems = _mixed_batch()
        _assert_identical(solve_many(problems, jobs=4), [solve(p) for p in problems])

    def test_cached_second_pass_matches_serial_loop(self, tmp_path):
        problems = _mixed_batch()
        serial = [solve(p) for p in problems]
        cache = ResultCache(directory=tmp_path)
        _assert_identical(solve_many(problems, cache=cache), serial)
        assert cache.stats.stores == len(problems)
        # a fresh cache object reads everything back from disk
        cache2 = ResultCache(directory=tmp_path)
        _assert_identical(solve_many(problems, cache=cache2), serial)
        assert cache2.stats.hits == len(problems)
        assert cache2.stats.misses == 0

    def test_parallel_cached_combination(self, tmp_path):
        problems = _mixed_batch()
        serial = [solve(p) for p in problems]
        cache = ResultCache(directory=tmp_path)
        _assert_identical(solve_many(problems, jobs=3, cache=cache), serial)
        _assert_identical(solve_many(problems, jobs=3, cache=cache), serial)
        assert cache.stats.hits == len(problems)

    def test_duplicates_are_solved_once_per_digest(self, tmp_path):
        problem = PebblingProblem(figure1_gadget(), r=4, game="prbp")
        cache = ResultCache(directory=tmp_path)
        results, info = solve_many_detailed([problem, problem, problem], cache=cache)
        assert cache.stats.stores == 1
        assert [r.cost for r in results] == [2, 2, 2]
        assert info.digests[0] == info.digests[1] == info.digests[2]

    def test_duplicates_dedupe_without_a_cache(self):
        problem = PebblingProblem(figure1_gadget(), r=4, game="prbp")
        results, info = solve_many_detailed([problem, problem])
        assert [r.cost for r in results] == [2, 2]
        assert results[0] is results[1]  # one solve, shared outcome
        assert info.digests[0] == info.digests[1] is not None

    def test_parallel_anytime_matches_serial_loop_with_trajectories(self):
        # the anytime pass runs inside the workers; with a fixed seed the
        # refined schedules AND their trajectory stats must be identical to
        # a serial solve() loop (wall-clock fields excepted, of course)
        problems = [
            PebblingProblem(
                random_layered_dag((6, 8, 8, 6, 4), 0.3, 4, s), r=6, game="prbp"
            )
            for s in (0, 1)
        ] + [
            PebblingProblem(
                random_layered_dag((6, 8, 8, 6, 4), 0.3, 4, 3), r=6, game="rbp"
            )
        ]
        serial = [solve(p, seed=5, refine_steps=64) for p in problems]
        batch = solve_many(problems, jobs=2, seed=5, refine_steps=64)
        _assert_identical(batch, serial)
        for got, want in zip(batch, serial):
            t_got = got.solve_stats.refinement
            t_want = want.solve_stats.refinement
            assert t_got is not None and t_want is not None
            assert (
                t_got.initial_cost,
                t_got.refined_cost,
                t_got.steps,
                t_got.accepted,
                t_got.seed,
                t_got.seed_solver,
            ) == (
                t_want.initial_cost,
                t_want.refined_cost,
                t_want.steps,
                t_want.accepted,
                t_want.seed,
                t_want.seed_solver,
            )
            assert t_got.refined_cost == got.cost <= t_got.initial_cost

    def test_anytime_solver_parallel_matches_serial(self):
        problems = [
            PebblingProblem(
                random_layered_dag((6, 8, 8, 6, 4), 0.35, 4, s), r=6, game="prbp"
            )
            for s in (7, 8)
        ]
        serial = [solve(p, solver="anytime", seed=2, refine_steps=48) for p in problems]
        batch = solve_many(problems, solver="anytime", jobs=2, seed=2, refine_steps=48)
        _assert_identical(batch, serial)

    def test_per_problem_solvers(self):
        problems = [
            PebblingProblem(figure1_gadget(), r=4, game="prbp"),
            PebblingProblem(kary_tree_dag(2, 3), r=3, game="prbp"),
        ]
        results = solve_many(problems, solver=["exhaustive", "tree"])
        assert [r.solver for r in results] == ["exhaustive", "tree"]

    def test_solver_count_mismatch_is_rejected(self):
        with pytest.raises(ValueError):
            solve_many([PebblingProblem(figure1_gadget(), r=4)], solver=["auto", "auto"])


class TestErrorPolicy:
    def _with_infeasible(self):
        return [
            PebblingProblem(figure1_gadget(), r=4, game="prbp"),
            # RBP needs r >= max in-degree + 1; r=2 is infeasible on figure 1
            PebblingProblem(figure1_gadget(), r=2, game="rbp"),
        ]

    def test_default_raises_first_solver_error(self):
        with pytest.raises(SolverError):
            solve_many(self._with_infeasible())

    def test_return_exceptions_keeps_positions(self):
        results = solve_many(self._with_infeasible(), return_exceptions=True)
        assert isinstance(results[0], SolveResult) and results[0].cost == 2
        assert isinstance(results[1], SolverError)

    def test_return_exceptions_parallel(self):
        results = solve_many(self._with_infeasible(), jobs=2, return_exceptions=True)
        assert isinstance(results[0], SolveResult) and results[0].cost == 2
        assert isinstance(results[1], SolverError)

    def test_solver_errors_are_never_cached(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        solve_many(self._with_infeasible(), cache=cache, return_exceptions=True)
        assert cache.stats.stores == 1  # only the solvable problem


class TestCacheIntegrity:
    def _prime(self, tmp_path):
        problem = PebblingProblem(figure1_gadget(), r=4, game="prbp")
        cache = ResultCache(directory=tmp_path)
        [result] = solve_many([problem], cache=cache)
        digest = problem_digest(problem)
        path = cache._path(digest)
        assert path.exists()
        return problem, digest, path, result

    def test_bit_flip_is_detected_and_recomputed(self, tmp_path):
        problem, digest, path, want = self._prime(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        cache = ResultCache(directory=tmp_path)
        [got] = solve_many([problem], cache=cache)
        assert cache.stats.corrupt == 1
        assert not path.exists() or cache.stats.stores == 1  # entry was replaced
        assert got.cost == want.cost and got.schedule.moves == want.schedule.moves

    def test_truncation_is_detected_and_recomputed(self, tmp_path):
        problem, digest, path, want = self._prime(tmp_path)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 3])
        cache = ResultCache(directory=tmp_path)
        [got] = solve_many([problem], cache=cache)
        assert cache.stats.corrupt == 1
        assert got.cost == want.cost

    def test_forged_entry_for_wrong_problem_is_rejected(self, tmp_path):
        problem, digest, path, _ = self._prime(tmp_path)
        # A checksum-valid entry whose payload answers a different problem:
        other = solve(PebblingProblem(kary_tree_dag(2, 2), r=3, game="prbp"))
        payload = pickle.dumps(
            {"digest": digest, "result": other}, protocol=pickle.HIGHEST_PROTOCOL
        )
        import hashlib

        path.write_bytes(hashlib.sha256(payload).hexdigest().encode() + b"\n" + payload)
        cache = ResultCache(directory=tmp_path)
        [got] = solve_many([problem], cache=cache)
        assert cache.stats.corrupt == 1
        assert got.problem == problem and got.cost == 2

    def test_old_format_entry_is_recomputed_not_misread(self, tmp_path):
        # A pre-v3 entry (the whole SolveResult pickled under "result") with
        # a *valid* checksum, planted at the v3 path for the right problem:
        # the read path must recognise the foreign layout and recompute,
        # never try to interpret the old pickle as a current entry.
        import hashlib

        problem, digest, path, want = self._prime(tmp_path)
        payload = pickle.dumps(
            {"digest": digest, "result": want}, protocol=pickle.HIGHEST_PROTOCOL
        )
        path.write_bytes(hashlib.sha256(payload).hexdigest().encode() + b"\n" + payload)
        cache = ResultCache(directory=tmp_path)
        [got] = solve_many([problem], cache=cache)
        assert cache.stats.corrupt == 1
        assert cache.stats.stores == 1  # recomputed and re-stored in v3 form
        assert got.cost == want.cost and got.schedule.moves == want.schedule.moves

    def test_tampered_columns_are_rejected(self, tmp_path):
        # Checksum-valid entry whose packed node column was edited: the IR
        # digest (and the kernel replay behind it) must catch the edit, the
        # same way a tampered JSONL record is rejected by the corpus layer.
        import hashlib

        from repro.core.schedule_ir import ir_from_arrays, pack_arrays, unpack_arrays

        problem, digest, path, want = self._prime(tmp_path)
        _, payload = path.read_bytes().split(b"\n", 1)
        doc = pickle.loads(payload)
        op, node, arg = unpack_arrays(doc["arrays"])
        node = node.copy()
        node[0] = (int(node[0]) + 1) % problem.dag.n  # different, still-valid node id
        doc["arrays"] = pack_arrays(
            ir_from_arrays(
                problem.game,
                problem.dag,
                problem.r,
                problem.variant,
                op,
                node,
                arg,
                description=str(doc["description"]),
            )
        )
        payload = pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL)
        path.write_bytes(hashlib.sha256(payload).hexdigest().encode() + b"\n" + payload)
        cache = ResultCache(directory=tmp_path)
        [got] = solve_many([problem], cache=cache)
        assert cache.stats.corrupt == 1
        assert got.cost == want.cost and got.schedule.moves == want.schedule.moves

    def test_memory_only_cache(self):
        problems = _mixed_batch()[:2]
        cache = ResultCache(directory=None)
        first = solve_many(problems, cache=cache)
        second = solve_many(problems, cache=cache)
        assert cache.stats.hits == len(problems)
        _assert_identical(second, first)

    def test_clear_empties_the_store(self, tmp_path):
        problem, digest, path, _ = self._prime(tmp_path)
        cache = ResultCache(directory=tmp_path)
        cache.clear()
        assert not path.exists()
        assert cache.get(problem, digest) is None


class TestDigest:
    def test_digest_is_stable_across_rebuilds(self):
        a = PebblingProblem(figure1_gadget(), r=4, game="prbp")
        b = PebblingProblem(figure1_gadget(), r=4, game="prbp")
        assert problem_digest(a) == problem_digest(b)

    def test_digest_separates_every_solve_ingredient(self):
        base = PebblingProblem(figure1_gadget(), r=4, game="prbp")
        variants = [
            problem_digest(base.with_r(5)),
            problem_digest(base.with_game("rbp")),
            problem_digest(base, solver="greedy"),
            problem_digest(base, options={"budget": 10}),
            problem_digest(base, options={"seed": 1}),
            problem_digest(base, options={"seed": 2}),
            problem_digest(base, options={"refine_steps": 32}),
            problem_digest(PebblingProblem(kary_tree_dag(2, 2), r=4, game="prbp")),
        ]
        digests = [problem_digest(base)] + variants
        assert len(set(digests)) == len(digests)

    def test_wall_clock_budget_never_enters_the_digest(self):
        # a wall-clock budget does not deterministically identify a result,
        # so two different budgets (or none) must share a digest — and the
        # batch layer must therefore refuse to cache such solves at all
        base = PebblingProblem(figure1_gadget(), r=4, game="prbp")
        assert (
            problem_digest(base)
            == problem_digest(base, options={"time_budget_s": 0.5})
            == problem_digest(base, options={"time_budget_s": 2.0})
            == problem_digest(base, options={"time_budget_s": None})
        )

    def test_cacheable_options_flags_wall_clock_budgets(self):
        assert cacheable_options(None)
        assert cacheable_options({})
        assert cacheable_options({"seed": 3, "refine_steps": 64, "budget": 100})
        assert cacheable_options({"time_budget_s": None})
        assert not cacheable_options({"time_budget_s": 0.5})


class TestWallClockBudgetCachePolicy:
    """Wall-clock budgets share digests by design; the cache must sit out.

    The corruption-style scenario: a cache primed by a budget-free run holds
    an entry under the exact digest a time-budgeted run would compute.
    Serving it would answer "solve within 0.01s" with a result produced
    under no budget at all — a false hit on cost-bearing fields — so the
    batch layer must bypass the cache in both directions.
    """

    def _problem(self):
        return PebblingProblem(
            random_layered_dag((6, 8, 8, 6, 4), 0.3, 4, 0), r=6, game="prbp"
        )

    def test_primed_entry_is_not_served_to_a_time_budgeted_solve(self, tmp_path):
        problem = self._problem()
        cache = ResultCache(directory=tmp_path)
        [primed] = solve_many([problem], cache=cache, seed=0)
        assert cache.stats.stores == 1
        cache2 = ResultCache(directory=tmp_path)
        [fresh] = solve_many(
            [problem], cache=cache2, seed=0, refine_steps=32, time_budget_s=5.0
        )
        assert cache2.stats.hits == 0  # the lookup was skipped, not missed
        assert isinstance(fresh, SolveResult)
        assert fresh.cost <= primed.solve_stats.refinement.initial_cost

    def test_time_budgeted_results_are_never_stored(self, tmp_path):
        problem = self._problem()
        cache = ResultCache(directory=tmp_path)
        solve_many([problem], cache=cache, seed=0, refine_steps=32, time_budget_s=5.0)
        assert cache.stats.stores == 0
        # and a later budget-free run computes fresh instead of hitting
        solve_many([problem], cache=cache, seed=0)
        assert cache.stats.hits == 0
        assert cache.stats.stores == 1

    def test_time_budgeted_duplicates_are_not_deduped(self):
        problem = self._problem()
        results, info = solve_many_detailed(
            [problem, problem], seed=0, refine_steps=32, time_budget_s=5.0
        )
        assert info.digests[0] == info.digests[1]
        # same digest, but each position was solved independently
        assert results[0] is not results[1]
        assert results[0].cost == results[1].cost  # step-bounded, so deterministic

    def test_per_problem_wall_clock_budget_only_exempts_that_problem(self, tmp_path):
        problems = [self._problem(), self._problem().with_r(7)]
        cache = ResultCache(directory=tmp_path)
        solve_many(
            problems,
            cache=cache,
            seed=0,
            per_problem_options=[{"refine_steps": 32, "time_budget_s": 5.0}, {}],
        )
        assert cache.stats.stores == 1  # only the budget-free problem


class TestTimeout:
    def test_parallel_timeout_becomes_solver_error(self):
        # PRBP searches on dense 11-node DAGs take far longer than 10 ms;
        # the workers are terminated after collection, so nothing lingers.
        # Two distinct seeds — identical problems would dedup to one task.
        hard = [
            PebblingProblem(random_dag(11, edge_probability=0.5, seed=s), r=3, game="prbp")
            for s in (3, 4)
        ]
        results = solve_many(
            hard,
            solver="exhaustive",
            budget=2_000_000,
            jobs=2,
            timeout_s=0.01,
            return_exceptions=True,
        )
        assert all(isinstance(r, SolverError) for r in results)
        assert any("timed out" in str(r) for r in results)

    def test_single_miss_with_timeout_still_uses_a_worker(self):
        # Even one pending problem must honour timeout_s (a serial solve
        # cannot be pre-empted), so the pool is used despite the dedup.
        hard = PebblingProblem(
            random_dag(11, edge_probability=0.5, seed=3), r=3, game="prbp"
        )
        results = solve_many(
            [hard, hard],  # dedups to a single unique miss
            solver="exhaustive",
            budget=2_000_000,
            jobs=2,
            timeout_s=0.01,
            return_exceptions=True,
        )
        assert all(isinstance(r, SolverError) for r in results)
        assert all("timed out" in str(r) for r in results)


class TestDiskSizeCap:
    """max_disk_bytes: oldest-first pruning keeps the disk tier bounded."""

    def _fill(self, tmp_path, max_disk_bytes=None, count=4):
        """Store ``count`` distinct results with strictly increasing mtimes.

        Returns the cache plus the (problem, digest) pairs in write order.
        Explicit mtimes make "oldest-first" deterministic even when every
        put lands within the same filesystem timestamp granule.
        """
        import os

        problems = [
            PebblingProblem(kary_tree_dag(2, 2), r=3, game="prbp"),
            PebblingProblem(kary_tree_dag(2, 3), r=3, game="prbp"),
            PebblingProblem(figure1_gadget(), r=4, game="prbp"),
            PebblingProblem(figure1_gadget(), r=4, game="rbp"),
        ][:count]
        cache = ResultCache(directory=tmp_path, max_disk_bytes=max_disk_bytes)
        stored = []
        for i, problem in enumerate(problems):
            digest = problem_digest(problem)
            cache.put(digest, solve(problem))
            path = cache._path(digest)
            if path.exists():
                os.utime(path, (1_000_000 + i, 1_000_000 + i))
            stored.append((problem, digest))
        return cache, stored

    def test_no_cap_keeps_every_entry(self, tmp_path):
        cache, stored = self._fill(tmp_path)
        assert all(cache._path(digest).exists() for _, digest in stored)
        assert cache.stats.evicted == 0
        assert cache.disk_bytes() == sum(
            cache._path(digest).stat().st_size for _, digest in stored
        )

    def test_generous_cap_prunes_nothing(self, tmp_path):
        cache, stored = self._fill(tmp_path, max_disk_bytes=10_000_000)
        assert all(cache._path(digest).exists() for _, digest in stored)
        assert cache.stats.evicted == 0

    def test_oldest_entries_are_pruned_first(self, tmp_path):
        probe = ResultCache(directory=tmp_path)
        entry_size = None
        # size one entry to set a cap that holds exactly two of them
        problem = PebblingProblem(kary_tree_dag(2, 2), r=3, game="prbp")
        probe.put(problem_digest(problem), solve(problem))
        entry_size = probe.disk_bytes()
        probe.clear()

        cache, stored = self._fill(tmp_path, max_disk_bytes=int(entry_size * 2.5))
        assert cache.disk_bytes() <= int(entry_size * 2.5)
        assert cache.stats.evicted >= 1
        # the newest write always survives its own put()
        assert cache._path(stored[-1][1]).exists()
        # survivors are a suffix of the write order: every pruned entry is
        # strictly older than every kept one
        alive = [cache._path(d).exists() for _, d in stored]
        assert alive == sorted(alive)  # False... then True...

    def test_pruned_entries_miss_but_survivors_serve(self, tmp_path):
        cache, stored = self._fill(tmp_path, max_disk_bytes=1)
        # a fresh instance has no memory tier; pruned disk entries are misses
        fresh = ResultCache(directory=tmp_path)
        for problem, digest in stored:
            if cache._path(digest).exists():
                assert fresh.get(problem, digest) is not None
            else:
                assert fresh.get(problem, digest) is None

    def test_cap_below_one_entry_degrades_to_memory_only(self, tmp_path):
        problem = PebblingProblem(kary_tree_dag(2, 2), r=3, game="prbp")
        digest = problem_digest(problem)
        cache = ResultCache(directory=tmp_path, max_disk_bytes=1)
        result = solve(problem)
        cache.put(digest, result)
        assert cache.disk_bytes() == 0  # the write itself was pruned
        assert cache.stats.evicted == 1
        # ... but the memory tier still answers within this process
        assert cache.get(problem, digest) is not None

    def test_foreign_files_are_never_pruned(self, tmp_path):
        foreign = tmp_path / "README.txt"
        foreign.write_text("not a cache entry")
        nested = tmp_path / "ab" / "notes.log"
        nested.parent.mkdir(parents=True, exist_ok=True)
        nested.write_text("x" * 10_000)
        cache, _ = self._fill(tmp_path, max_disk_bytes=1)
        assert foreign.exists() and nested.exists()
        assert cache.stats.evicted >= 1

    def test_solve_many_respects_the_cap(self, tmp_path):
        problems = _mixed_batch()
        cache = ResultCache(directory=tmp_path, max_disk_bytes=1)
        first = solve_many(problems, cache=cache)
        assert cache.disk_bytes() == 0
        # batch answers are unaffected: memory tier plus recomputation
        second = solve_many(problems, cache=cache)
        _assert_identical(second, first)


class TestDiskLRUTouchOnRead:
    """Reads refresh recency: pruning is LRU by use, not FIFO by write time."""

    def _fill(self, tmp_path, count=4):
        """Four distinct entries with strictly increasing (ancient) mtimes."""
        import os

        problems = [
            PebblingProblem(kary_tree_dag(2, 2), r=3, game="prbp"),
            PebblingProblem(kary_tree_dag(2, 3), r=3, game="prbp"),
            PebblingProblem(figure1_gadget(), r=4, game="prbp"),
            PebblingProblem(figure1_gadget(), r=4, game="rbp"),
        ][:count]
        cache = ResultCache(directory=tmp_path)
        stored = []
        for i, problem in enumerate(problems):
            digest = problem_digest(problem)
            cache.put(digest, solve(problem))
            os.utime(cache._path(digest), (1_000_000 + i, 1_000_000 + i))
            stored.append((problem, digest))
        return cache, stored

    def test_read_refreshes_mtime(self, tmp_path):
        cache, stored = self._fill(tmp_path)
        problem, digest = stored[0]
        before = cache._path(digest).stat().st_mtime
        # a fresh instance has an empty memory tier, so the get() must go
        # through the disk read that carries the touch
        reader = ResultCache(directory=tmp_path)
        assert reader.get(problem, digest) is not None
        assert cache._path(digest).stat().st_mtime > before

    def test_freshly_read_entry_survives_a_prune_that_evicts_older_unread(self, tmp_path):
        """The LRU regression: under mtime-FIFO the oldest *write* dies first,
        so reading entry 0 would not save it.  With touch-on-read it must
        outlive entry 1, which was written later but never read."""
        cache, stored = self._fill(tmp_path)
        entry_size = cache.disk_bytes() // len(stored)
        reader = ResultCache(directory=tmp_path)
        assert reader.get(*stored[0]) is not None  # entry 0 is now the hottest
        cache._prune_disk(int(entry_size * 2.5))  # room for two entries
        assert cache._path(stored[0][1]).exists()  # read entry survives
        assert not cache._path(stored[1][1]).exists()  # unread older write dies
        assert not cache._path(stored[2][1]).exists()
        assert cache._path(stored[3][1]).exists()  # newest write survives

    def test_touch_failure_does_not_break_the_read(self, tmp_path, monkeypatch):
        import os as _os

        cache, stored = self._fill(tmp_path, count=1)

        def deny_utime(*args, **kwargs):
            raise OSError("read-only store")

        reader = ResultCache(directory=tmp_path)
        monkeypatch.setattr("repro.api.cache.os.utime", deny_utime)
        result = reader.get(*stored[0])
        assert result is not None  # serving must not depend on the touch


class TestPruneVanishRace:
    """Files vanishing between the prune's scan and unlink are not errors."""

    def test_prune_tolerates_files_deleted_by_a_peer(self, tmp_path):
        problem = PebblingProblem(kary_tree_dag(2, 2), r=3, game="prbp")
        digest = problem_digest(problem)
        cache = ResultCache(directory=tmp_path)
        cache.put(digest, solve(problem))
        real = cache._path(digest)
        ghost = tmp_path / "ff" / "deadbeef.pkl"

        original = cache._disk_entries

        def with_ghost():
            return original() + [(0.0, 4096, ghost)]  # oldest: pruned first

        cache._disk_entries = with_ghost  # a peer deletes it post-scan
        cache._prune_disk(0)  # must evict everything without raising
        assert not real.exists()
        assert cache.stats.evicted >= 1

    def test_prune_scan_tolerates_stat_races(self, tmp_path):
        """An entry vanishing between glob and stat is skipped, not fatal."""
        problem = PebblingProblem(kary_tree_dag(2, 2), r=3, game="prbp")
        cache = ResultCache(directory=tmp_path)
        cache.put(problem_digest(problem), solve(problem))
        # a plausible peer artifact: an empty shard dir left after its prune
        (tmp_path / "aa").mkdir(exist_ok=True)
        assert len(cache._disk_entries()) == 1
