"""Tests for the repro.api facade: problem, registry, portfolio dispatch, results."""

import pytest

from repro.api import (
    PebblingProblem,
    SolveResult,
    get_solver,
    list_solvers,
    register_solver,
    solve,
    solver_names,
    unregister_solver,
)
from repro.core.dag import DAGFamily
from repro.core.exceptions import SolverError
from repro.core.variants import ONE_SHOT
from repro.dags import (
    attention_dag,
    chained_gadget_dag,
    fanin_groups_dag,
    fft_dag,
    figure1_gadget,
    kary_tree_dag,
    matmul_dag,
    matvec_dag,
    pebble_collection_gadget,
    pyramid_dag,
    random_layered_dag,
    zipper_gadget,
)
from repro.solvers.greedy import topological_prbp_schedule


class TestPebblingProblem:
    def test_validation(self):
        dag = figure1_gadget()
        with pytest.raises(ValueError):
            PebblingProblem(dag, r=4, game="hybrid")
        with pytest.raises(ValueError):
            PebblingProblem(dag, r=0)
        with pytest.raises(TypeError):
            PebblingProblem("not a dag", r=4)

    def test_views_and_transforms(self):
        problem = PebblingProblem(kary_tree_dag(2, 3), r=3, game="prbp")
        assert problem.n == 15
        assert problem.family.name == "kary_tree"
        assert problem.family.param("k") == 2
        assert problem.trivial_cost == 8 + 1
        assert problem.with_game("rbp").game == "rbp"
        assert problem.with_r(5).r == 5
        assert "kary_tree" in problem.describe()


class TestRegistry:
    def test_builtins_are_registered(self):
        names = solver_names()
        for expected in ("exhaustive", "greedy", "naive", "tree", "fft-blocked"):
            assert expected in names

    def test_duplicate_name_raises(self):
        @register_solver("test-dup", games=("prbp",))
        def first(problem, **options):
            return topological_prbp_schedule(problem.dag, problem.r)

        try:
            with pytest.raises(ValueError):
                @register_solver("test-dup", games=("prbp",))
                def second(problem, **options):
                    return topological_prbp_schedule(problem.dag, problem.r)
        finally:
            unregister_solver("test-dup")

    def test_bad_game_tag_raises(self):
        with pytest.raises(ValueError):
            register_solver("test-bad-game", games=("chess",))

    def test_unknown_solver_raises_with_known_names(self):
        with pytest.raises(SolverError, match="exhaustive"):
            get_solver("no-such-solver")

    def test_list_solvers_filters(self):
        exact_prbp = [info.name for info in list_solvers(game="prbp", exact=True)]
        assert exact_prbp == ["exhaustive"]
        rbp = [info.name for info in list_solvers(game="rbp")]
        assert "greedy" in rbp and "matmul-tiled" not in rbp
        fft_capable = [info.name for info in list_solvers(game="prbp", family="fft")]
        assert "fft-blocked" in fft_capable and "tree" not in fft_capable
        assert "greedy" in fft_capable  # family-agnostic solvers always qualify

    def test_custom_solver_roundtrip(self):
        @register_solver("test-custom", games=("prbp",), description="test only")
        def custom(problem, **options):
            return topological_prbp_schedule(problem.dag, problem.r)

        try:
            result = solve(PebblingProblem(pyramid_dag(3), r=4), solver="test-custom")
            assert result.solver == "test-custom"
            assert result.cost == result.schedule.cost()
        finally:
            unregister_solver("test-custom")


# (dag, r, game, expected winning solver) — all DAGs large enough to skip the
# exhaustive step, so the family match must win over the greedy fallback.
FAMILY_CASES = [
    (chained_gadget_dag(4), 4, "prbp", "chained-gadget"),
    (zipper_gadget(3, 10), 5, "prbp", "zipper"),
    (zipper_gadget(3, 10), 5, "rbp", "zipper"),
    (pebble_collection_gadget(3, 15), 5, "prbp", "collection"),
    (kary_tree_dag(2, 4), 3, "prbp", "tree"),
    (kary_tree_dag(2, 4), 3, "rbp", "tree"),
    (matvec_dag(4), 7, "prbp", "matvec-streaming"),
    (matmul_dag(3, 3, 3), 9, "prbp", "matmul-tiled"),
    (fft_dag(64), 16, "prbp", "fft-blocked"),
    (fft_dag(64), 16, "rbp", "fft-blocked"),
    (attention_dag(4, 2), 8, "prbp", "attention-flash"),
    (fanin_groups_dag(7, 5), 3, "prbp", "fanin-streaming"),
]


class TestAutoDispatch:
    def test_small_dag_uses_exhaustive(self):
        result = solve(PebblingProblem(figure1_gadget(), r=4, game="rbp"))
        assert result.solver == "exhaustive"
        assert result.exact_solver and result.optimal
        assert result.cost == 3

    @pytest.mark.parametrize(
        "dag,r,game,expected", FAMILY_CASES, ids=[c[3] + "-" + c[2] for c in FAMILY_CASES]
    )
    def test_family_tagged_dags_pick_structured_strategy(self, dag, r, game, expected):
        assert dag.n > 14  # too large for the exhaustive step of the portfolio
        result = solve(PebblingProblem(dag, r, game=game))
        assert result.solver == expected, f"expected {expected}, portfolio chose {result.solver}"
        # the reported cost is the replayed schedule cost
        assert result.cost == result.schedule.cost()
        assert result.stats.peak_red <= r
        assert result.lower_bound is not None and result.cost >= result.lower_bound

    def test_untagged_dag_falls_back_to_greedy(self):
        dag = random_layered_dag([6, 8, 8, 6], edge_probability=0.3, max_in_degree=4, seed=1)
        result = solve(PebblingProblem(dag, r=6, game="prbp"))
        assert result.solver == "greedy"
        assert result.cost == result.schedule.cost()

    def test_budget_overrun_falls_through_to_structured(self):
        # 14 nodes: exhaustive is attempted but a tiny budget forces the
        # portfolio onto the family strategy instead of failing outright.
        dag = zipper_gadget(3, 8)
        assert dag.n == 14
        result = solve(PebblingProblem(dag, r=5, game="prbp"), budget=50)
        assert result.solver == "zipper"

    def test_capacity_below_every_solver_raises(self):
        # RBP needs r >= max in-degree + 1 = 3 on a binary tree; the tree
        # strategy needs r >= 3 too, so r = 2 must raise, not mis-solve.
        with pytest.raises(SolverError, match="no solver could handle"):
            solve(PebblingProblem(kary_tree_dag(2, 4), r=2, game="rbp"))

    def test_tree_at_critical_capacity_is_provably_optimal(self):
        result = solve(PebblingProblem(kary_tree_dag(2, 5), r=3, game="prbp"))
        assert result.solver == "tree"
        assert not result.exact_solver
        assert result.optimal  # cost meets the Appendix A.2 closed form
        assert result.lower_bound_source == "appA.2"


class TestNamedDispatch:
    def test_named_solver_below_family_minimum_raises(self):
        problem = PebblingProblem(kary_tree_dag(2, 4), r=2, game="prbp")
        with pytest.raises(SolverError, match="r >= 3"):
            solve(problem, solver="tree")

    def test_named_solver_wrong_game_raises(self):
        problem = PebblingProblem(matmul_dag(2, 2, 2), r=8, game="rbp")
        with pytest.raises(SolverError, match="plays prbp"):
            solve(problem, solver="matmul-tiled")

    def test_named_solver_wrong_family_raises(self):
        problem = PebblingProblem(fft_dag(8), r=4, game="prbp")
        with pytest.raises(SolverError, match="restricted to the families"):
            solve(problem, solver="tree")

    def test_forged_family_tag_is_rejected(self):
        dag = pyramid_dag(4)
        dag.family = DAGFamily.tag("kary_tree", k=2, depth=3)
        with pytest.raises(SolverError, match="does not reproduce"):
            solve(PebblingProblem(dag, r=5, game="prbp"), solver="tree")

    def test_malformed_family_tag_raises_solver_error_not_typeerror(self):
        # a tag missing its parameters must not leak a TypeError from min_r
        dag = pyramid_dag(4)
        dag.family = DAGFamily.tag("matvec")  # no "m" recorded
        with pytest.raises(SolverError, match="minimum capacity"):
            solve(PebblingProblem(dag, r=10, game="prbp"), solver="matvec-streaming")

    def test_malformed_family_tag_degrades_to_greedy_in_auto(self):
        dag = random_layered_dag([6, 8, 8, 6], edge_probability=0.3, max_in_degree=4, seed=2)
        dag.family = DAGFamily.tag("kary_tree")  # no k/depth recorded
        result = solve(PebblingProblem(dag, r=6, game="prbp"), exact_node_limit=0)
        assert result.solver == "greedy"

    def test_exhaustive_honours_budget(self):
        problem = PebblingProblem(kary_tree_dag(2, 3), r=3, game="prbp")
        with pytest.raises(SolverError, match="budget"):
            solve(problem, solver="exhaustive", budget=3)

    def test_auto_honours_budget_zero(self):
        # budget=0 must not silently become the 500k default: the exhaustive
        # step fails immediately and the portfolio moves on.
        result = solve(PebblingProblem(figure1_gadget(), r=4, game="prbp"), budget=0)
        assert result.solver == "figure1"  # family strategy, not exhaustive


class TestSolveResult:
    def test_replayed_cost_and_flags(self):
        result = solve(PebblingProblem(figure1_gadget(), r=4, game="prbp"))
        assert isinstance(result, SolveResult)
        assert result.cost == 2 == result.schedule.cost()
        assert result.optimal and not result.upper_bound
        assert result.gap == result.cost - result.lower_bound
        assert result.problem.variant == ONE_SHOT
        assert "cost 2" in result.describe()

    def test_upper_bound_flagging(self):
        result = solve(PebblingProblem(fft_dag(16), r=4, game="prbp"))
        assert not result.exact_solver
        assert result.upper_bound  # neither strategy is known optimal here
        assert result.lower_bound is not None

    def test_auto_prefers_greedy_when_it_beats_the_family_strategy(self):
        # away from the critical capacity r = k + 1, the fixed tree schedule
        # is beatable; the portfolio must not return the worse schedule
        result = solve(PebblingProblem(kary_tree_dag(2, 4), r=17, game="rbp"))
        assert result.solver == "greedy"
        assert result.cost == 17  # trivial cost: everything fits in cache
        assert result.optimal

    def test_stale_family_tag_contributes_no_closed_form_bound(self):
        # a tag copied onto a graph it does not describe must not smuggle in
        # the closed-form bound of the full family instance
        sub = kary_tree_dag(2, 3).induced_subgraph(range(7))
        sub.family = DAGFamily.tag("kary_tree", k=2, depth=3)
        result = solve(PebblingProblem(sub, r=3, game="prbp"), exact_node_limit=0)
        assert result.lower_bound == sub.trivial_cost()  # 5, not the 11 of the full tree
        assert result.lower_bound_source == "trivial"
        assert result.cost >= result.lower_bound

    def test_inconsistent_lower_bound_raises_instead_of_proving_optimality(self):
        from repro.core.exceptions import PebblingError

        good = solve(PebblingProblem(figure1_gadget(), r=4, game="prbp"))
        from dataclasses import replace

        broken = replace(good, lower_bound=good.cost + 1, exact_solver=False)
        with pytest.raises(PebblingError, match="strictly below"):
            broken.optimal


class TestBackCompat:
    def test_all_pre_facade_names_still_importable(self):
        from repro import (  # noqa: F401
            ComputationalDAG,
            GameVariant,
            PebblingProblem,
            SolveResult,
            attention_dag,
            binary_tree_dag,
            convert_rbp_to_prbp,
            figure1_gadget,
            optimal_prbp_cost,
            optimal_prbp_schedule,
            optimal_rbp_cost,
            optimal_rbp_schedule,
            solve,
            topological_prbp_schedule,
        )

    def test_top_level_quickstart(self):
        import repro

        dag = repro.figure1_gadget()
        rbp = repro.solve(repro.PebblingProblem(dag, r=4, game="rbp"))
        prbp = repro.solve(repro.PebblingProblem(dag, r=4, game="prbp"))
        assert (rbp.cost, prbp.cost) == (3, 2)
