"""Tests for the analysis helpers (comparison harness, sweeps, reporting)."""


from repro.analysis.comparison import ModelComparison, compare_models
from repro.analysis.reporting import format_markdown_table, format_table
from repro.analysis.sweep import run_sweep
from repro.dags import binary_tree_instance, chained_gadget_instance, figure1_gadget


class TestComparison:
    def test_figure1_exact_comparison(self):
        cmp = compare_models(figure1_gadget(), r=4)
        assert cmp.rbp_cost == 3 and cmp.rbp_exact
        assert cmp.prbp_cost == 2 and cmp.prbp_exact
        assert cmp.gap == 1
        assert cmp.prbp_strictly_better
        assert cmp.trivial_cost == 2

    def test_large_dag_falls_back_to_greedy(self):
        inst = chained_gadget_instance(10)
        cmp = compare_models(inst.dag, r=4)
        assert not cmp.rbp_exact and not cmp.prbp_exact
        assert cmp.prbp_cost is not None and cmp.rbp_cost is not None
        assert cmp.prbp_cost >= inst.dag.trivial_cost()

    def test_infeasible_rbp_reports_none(self):
        inst = binary_tree_instance(2)
        cmp = compare_models(inst.dag, r=2)  # RBP needs r >= 3, PRBP works with 2
        assert cmp.rbp_cost is None
        assert cmp.prbp_cost is not None

    def test_gap_none_when_side_missing(self):
        cmp = ModelComparison("x", 3, 2, 2, None, False, 4, True)
        assert cmp.gap is None and cmp.prbp_strictly_better is None


class TestSweepAndReporting:
    def test_run_sweep_collects_rows(self):
        result = run_sweep(
            ["m"],
            [(2,), (3,), (4,)],
            {"square": lambda m: m * m, "double": lambda m: 2 * m},
        )
        assert len(result) == 3
        assert result.column("square") == [4, 9, 16]
        table = result.as_table(title="demo")
        assert "demo" in table and "square" in table

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_markdown_table(self):
        md = format_markdown_table(["x", "y"], [[1, 2]])
        assert md.splitlines()[0] == "| x | y |"
        assert md.splitlines()[1] == "|---|---|"
        assert "| 1 | 2 |" in md
