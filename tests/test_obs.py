"""The observability layer: metrics registry, tracer, and solve telemetry."""

import asyncio
import json
import threading

import pytest

from repro.api import PebblingProblem, solve
from repro.dags import figure1_gadget, kary_tree_dag
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    OVERFLOW_LABEL_VALUE,
    MetricsRegistry,
    exponential_buckets,
    parse_exposition,
    summarise_buckets,
)
from repro.obs.telemetry import (
    SolveTelemetry,
    TelemetryLog,
    configure_telemetry,
    read_telemetry_file,
)
from repro.obs.tracing import TraceContext, Tracer, current_trace


class TestHistogramBuckets:
    def test_exponential_buckets_are_geometric(self):
        buckets = exponential_buckets(0.001, 2.0, 5)
        assert buckets == pytest.approx((0.001, 0.002, 0.004, 0.008, 0.016))
        assert list(buckets) == sorted(buckets)

    def test_default_latency_buckets_cover_ms_to_minutes(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(0.001)
        assert DEFAULT_LATENCY_BUCKETS[-1] > 60.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_observation_on_a_bound_lands_in_that_bucket(self):
        # buckets are upper-inclusive (value <= bound), matching the
        # cumulative le= semantics of the exposition format
        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", "t", buckets=(1.0, 2.0, 4.0))
        for value in (1.0, 2.0, 4.0):
            hist.observe(value)
        hist.observe(4.00001)  # strictly above the last bound -> +Inf bucket
        series = registry.snapshot()["t_seconds"]["series"][0]
        assert series["buckets"] == [[1.0, 1], [2.0, 1], [4.0, 1], ["+Inf", 1]]
        assert series["count"] == 4

    def test_quantiles_interpolate_within_the_bucket(self):
        # 100 observations spread over (0, 1]: p50 must land mid-bucket,
        # not snap to a bucket edge
        summary = summarise_buckets((1.0, 2.0), [100, 0, 0], 50.0)
        assert 0.0 < summary["p50"] < 1.0
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(0.5)

    def test_quantile_of_overflow_clamps_to_last_finite_bound(self):
        summary = summarise_buckets((1.0,), [0, 10], 1000.0)
        assert summary["p99"] == pytest.approx(1.0)

    def test_merged_summary_combines_label_series(self):
        registry = MetricsRegistry()
        hist = registry.histogram("m_seconds", "m", labels=("op",), buckets=(1.0, 2.0))
        hist.observe(0.5, op="a")
        hist.observe(1.5, op="b")
        merged = hist.merged_summary()
        assert merged["count"] == 2
        assert merged["sum"] == pytest.approx(2.0)


class TestCardinalityGuard:
    def test_overflow_series_absorbs_excess_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "c", labels=("who",), max_series=3)
        for i in range(10):
            counter.inc(who=f"client-{i}")
        values = counter.values()
        # 3 real series, then the overflow catch-all absorbs the rest
        assert len(values) == 4
        assert values[(OVERFLOW_LABEL_VALUE,)] == 7.0
        assert sum(values.values()) == 10.0

    def test_dropped_series_are_counted_and_exposed(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "c", labels=("who",), max_series=2)
        for i in range(5):
            counter.inc(who=f"client-{i}")
        assert registry.dropped_series() == {"c_total": 3}
        assert "repro_metrics_dropped_series_total" in registry.exposition()

    def test_registration_is_idempotent_but_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "x", labels=("a",))
        assert registry.counter("x_total", "x", labels=("a",)) is first
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")
        with pytest.raises(ValueError):
            registry.counter("x_total", "x", labels=("b",))


class TestConcurrency:
    def test_threaded_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits", labels=("worker",))
        hist = registry.histogram("lat_seconds", "lat")

        def hammer(worker):
            for _ in range(2000):
                counter.inc(worker=str(worker % 2))
                hist.observe(0.001 * (worker + 1))

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(counter.values().values()) == 8 * 2000
        assert hist.merged_summary()["count"] == 8 * 2000

    def test_asyncio_tasks_and_threads_interleave_safely(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "ops")

        def thread_side():
            for _ in range(1000):
                counter.inc()

        async def run():
            thread = threading.Thread(target=thread_side)
            thread.start()

            async def task_side():
                for _ in range(250):
                    counter.inc()
                    await asyncio.sleep(0)

            await asyncio.gather(*(task_side() for _ in range(4)))
            thread.join()

        asyncio.run(run())
        assert counter.value() == 1000 + 4 * 250


class TestExposition:
    def test_text_format_round_trips_through_the_parser(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", labels=("op",)).inc(3, op="solve")
        registry.gauge("depth", "queue depth").set(7)
        hist = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        families = parse_exposition(registry.exposition())
        assert families["req_total"]["type"] == "counter"
        assert ({"op": "solve"}, 3.0) in families["req_total"]["samples"]
        assert ({}, 7.0) in families["depth"]["samples"]
        buckets = dict(
            (labels["le"], value) for labels, value in families["lat_seconds"]["lat_seconds_bucket"]
        )
        # cumulative: the 1.0 bucket includes the 0.1 bucket's observation
        # (integral bounds are formatted without a trailing .0)
        assert buckets["0.1"] == 1.0 and buckets["1"] == 2.0 and buckets["+Inf"] == 2.0
        assert families["lat_seconds"]["lat_seconds_count"][0][1] == 2.0

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("e_total", "e", labels=("path",)).inc(path='a"b\\c\nd')
        text = registry.exposition()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        families = parse_exposition(text)
        assert families["e_total"]["samples"][0][0]["path"] == 'a"b\\c\nd'

    def test_invalid_metric_and_label_names_are_refused(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name", "x")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "x", labels=("9bad",))
        with pytest.raises(ValueError):
            registry.histogram("ok_seconds", "x", labels=("le",))  # reserved


class TestTracer:
    def test_nested_spans_share_the_trace_and_chain_parents(self):
        tracer = Tracer(node="test")
        with tracer.span("outer") as outer:
            assert current_trace() == outer.context
            with tracer.span("inner"):
                pass
        assert current_trace() is None
        inner, outer_span = tracer.recent()[-2], tracer.recent()[-1]
        assert inner["name"] == "inner" and outer_span["name"] == "outer"
        assert inner["trace_id"] == outer_span["trace_id"]
        assert inner["parent_id"] == outer_span["span_id"]

    def test_exception_marks_the_span_as_error(self):
        tracer = Tracer(node="test")
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.recent()[-1]["status"] == "error"

    def test_record_emits_a_retroactive_child_span(self):
        tracer = Tracer(node="test")
        parent = TraceContext(trace_id="a" * 32, span_id="b" * 16)
        ctx = tracer.record("queue_wait", 0.25, parent=parent)
        span = tracer.recent()[-1]
        assert ctx.trace_id == parent.trace_id
        assert span["parent_id"] == parent.span_id
        assert span["duration_s"] == pytest.approx(0.25)

    def test_sink_appends_json_lines(self, tmp_path):
        sink = tmp_path / "spans.jsonl"
        tracer = Tracer(node="n1", sink=sink)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.close()
        docs = [json.loads(line) for line in sink.read_text().splitlines()]
        assert [doc["name"] for doc in docs] == ["a", "b"]
        assert all(doc["node"] == "n1" for doc in docs)

    def test_wire_codec_rejects_malformed_context(self):
        ctx = TraceContext(trace_id="t" * 32, span_id="s" * 16)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        for bad in (None, "x", {}, {"trace_id": "", "span_id": "s"},
                    {"trace_id": "t" * 65, "span_id": "s"}, {"trace_id": "t", "span_id": 7}):
            assert TraceContext.from_wire(bad) is None


class TestTelemetry:
    def test_ring_keeps_the_most_recent_records(self):
        log = TelemetryLog(ring_entries=2)
        for i in range(4):
            log.record(SolveTelemetry(
                digest=f"d{i}", solver_requested="auto", solver_used="greedy",
                cost=i, lower_bound=None, gap=None, wall_time_s=0.0,
                states_expanded=None,
            ))
        assert [doc.digest for doc in log.recent()] == ["d2", "d3"]

    def test_sink_round_trips_and_garbage_lines_are_skipped(self, tmp_path):
        sink = tmp_path / "telemetry.jsonl"
        log = TelemetryLog(sink=sink)
        log.record(SolveTelemetry(
            digest="abc", solver_requested="auto", solver_used="exhaustive",
            cost=5, lower_bound=5, gap=0, wall_time_s=0.1, states_expanded=42,
        ))
        log.close()
        with open(sink, "a", encoding="utf-8") as fh:
            fh.write("not json\n")
        records = read_telemetry_file(sink)
        assert len(records) == 1
        assert records[0]["digest"] == "abc" and records[0]["states_expanded"] == 42

    def test_solve_appends_one_record_per_solve(self, tmp_path):
        log = configure_telemetry(sink=tmp_path / "t.jsonl")
        try:
            problem = PebblingProblem(figure1_gadget(), r=4, game="prbp")
            result = solve(problem)
            records = log.recent()
            assert len(records) == 1
            doc = records[0]
            assert doc.digest
            assert doc.solver_requested == "auto"
            assert doc.solver_used == result.solver
            assert doc.cost == result.cost
            assert doc.wall_time_s > 0.0
            assert doc.features["n"] == problem.dag.n
            assert doc.trace_id
            # the auto portfolio's per-member attribution rides along
            assert any(a["outcome"] == "won" for a in doc.attempts)
        finally:
            configure_telemetry()

    def test_direct_solver_telemetry_has_no_attempts(self):
        log = configure_telemetry()
        try:
            problem = PebblingProblem(kary_tree_dag(2, 3), r=3, game="prbp")
            solve(problem, solver="greedy")
            doc = log.recent()[-1]
            assert doc.solver_requested == "greedy"
            assert list(doc.attempts) == []
        finally:
            configure_telemetry()


class TestAutoPortfolioAttribution:
    def test_auto_wall_time_covers_all_attempts(self):
        problem = PebblingProblem(kary_tree_dag(2, 4), r=3, game="prbp")
        result = solve(problem)
        stats = result.solve_stats
        assert stats is not None and stats.attempts
        assert [a.outcome for a in stats.attempts].count("won") == 1
        winner = next(a for a in stats.attempts if a.outcome == "won")
        assert winner.solver == result.solver
        # the headline wall time is the whole portfolio, so it can never be
        # smaller than the sum of the members it ran (the PR-10 fix)
        member_total = sum(a.wall_time_s for a in stats.attempts)
        assert stats.wall_time_s >= member_total * 0.99
        assert all(a.outcome in ("won", "lost", "failed", "skipped") for a in stats.attempts)

    def test_direct_solver_has_no_attempts(self):
        problem = PebblingProblem(kary_tree_dag(2, 3), r=3, game="prbp")
        result = solve(problem, solver="greedy")
        assert result.solve_stats is not None
        assert result.solve_stats.attempts == ()
