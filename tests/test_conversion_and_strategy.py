"""Tests for schedule containers, statistics and the Proposition 4.1 conversion."""

import pytest

from repro.core.conversion import convert_rbp_moves_to_prbp_moves, convert_rbp_to_prbp
from repro.core.dag import ComputationalDAG
from repro.core.exceptions import IllegalMoveError
from repro.core.moves import MoveKind, rbp
from repro.core.strategy import RBPSchedule
from repro.dags import (
    binary_tree_instance,
    fft_instance,
    figure1_instance,
    pebble_collection_instance,
    random_layered_dag,
    zipper_instance,
)
from repro.solvers.exhaustive import optimal_rbp_schedule
from repro.solvers.greedy import greedy_rbp_schedule
from repro.solvers.structured import (
    collection_full_rbp_schedule,
    fft_blocked_rbp_schedule,
    figure1_rbp_schedule,
    tree_rbp_schedule,
    zipper_rbp_schedule,
)


class TestScheduleContainers:
    def test_stats_counts_moves(self):
        schedule = figure1_rbp_schedule()
        stats = schedule.stats()
        assert stats.io_cost == 3
        assert stats.loads == 2
        assert stats.saves == 1
        assert stats.computes == 9  # u1, u2, w1..w4, v1, v2, v0
        assert stats.moves == len(schedule)

    def test_prbp_subsequence_boundaries(self):
        from repro.solvers.structured import matvec_prbp_schedule

        schedule = matvec_prbp_schedule(m=3)
        boundaries = schedule.io_subsequence_boundaries()
        assert len(boundaries) == schedule.cost() // schedule.r
        assert boundaries == sorted(boundaries)

    def test_invalid_schedule_raises_on_validate(self):
        inst = figure1_instance()
        schedule = RBPSchedule(inst.dag, 4, [rbp.compute(inst.w3)])
        with pytest.raises(IllegalMoveError):
            schedule.validate()


class TestProposition41Conversion:
    """Any RBP schedule converts to a PRBP schedule of the same I/O cost."""

    def _check(self, rbp_schedule):
        prbp_schedule = convert_rbp_to_prbp(rbp_schedule)
        game = prbp_schedule.validate()
        assert game.io_cost == rbp_schedule.cost()
        assert prbp_schedule.stats().peak_red <= rbp_schedule.r

    def test_figure1(self):
        self._check(figure1_rbp_schedule())

    def test_exhaustive_optimum(self):
        self._check(optimal_rbp_schedule(figure1_instance().dag, 4))

    def test_trees(self):
        self._check(tree_rbp_schedule(binary_tree_instance(4)))

    def test_zipper(self):
        self._check(zipper_rbp_schedule(zipper_instance(3, 7)))

    def test_collection(self):
        self._check(collection_full_rbp_schedule(pebble_collection_instance(3, 9)))

    def test_fft(self):
        self._check(fft_blocked_rbp_schedule(fft_instance(16), r=8))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_layered_greedy_schedules(self, seed):
        dag = random_layered_dag([3, 4, 4, 2], edge_probability=0.35, max_in_degree=3, seed=seed)
        r = dag.max_in_degree + 1
        self._check(greedy_rbp_schedule(dag, r))

    def test_move_translation_expands_computes(self):
        dag = ComputationalDAG(3, [(0, 2), (1, 2)])
        moves = [rbp.load(0), rbp.load(1), rbp.compute(2), rbp.save(2)]
        prbp_moves = convert_rbp_moves_to_prbp_moves(dag, moves)
        computes = [m for m in prbp_moves if m.kind is MoveKind.COMPUTE]
        assert len(computes) == 2
        assert {m.edge for m in computes} == {(0, 2), (1, 2)}

    def test_sliding_moves_cannot_be_converted(self):
        dag = ComputationalDAG(2, [(0, 1)])
        with pytest.raises(IllegalMoveError):
            convert_rbp_moves_to_prbp_moves(dag, [rbp.compute(1, slide_from=0)])
