"""Tests of the cluster front router: hashing, rate limits, tiered cache, failover.

The unit layer (hash ring, token buckets) runs with injected clocks and no
I/O.  The integration layer boots real backends and a real
:class:`~repro.service.SolveRouter` on ephemeral ports inside one
``asyncio.run`` and drives them through the production client — the same
wire frames a deployed cluster would carry.  Thread-mode workers keep the
tests fast and sandbox-safe (the process path shares everything above the
executor and is covered by the CI smokes).
"""

import asyncio
import contextlib
import json

import pytest

from repro.api import PebblingProblem, solve
from repro.api.cache import problem_digest
from repro.obs.metrics import parse_exposition
from repro.dags import chained_gadget_dag, figure1_gadget, kary_tree_dag
from repro.service import (
    BackendSpec,
    ClientRateLimiter,
    HashRing,
    RouterConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    SolveRouter,
    SolveService,
    TokenBucket,
)

# --------------------------------------------------------------------------- #
# hash ring
# --------------------------------------------------------------------------- #

NAMES = ("10.0.0.1:7421", "10.0.0.2:7421", "10.0.0.3:7421")


def _digests(count):
    return [
        problem_digest(PebblingProblem(kary_tree_dag(2, 3), r=2 + (i % 4)), solver=f"s{i}")
        for i in range(count)
    ]


class TestHashRing:
    def test_preference_lists_every_backend_exactly_once(self):
        ring = HashRing(NAMES)
        for digest in _digests(20):
            preference = ring.preference(digest)
            assert sorted(preference) == sorted(NAMES)
            assert preference[0] == ring.route(digest)

    def test_routing_is_deterministic_across_instances(self):
        a, b = HashRing(NAMES), HashRing(tuple(NAMES))
        for digest in _digests(50):
            assert a.preference(digest) == b.preference(digest)

    def test_load_spreads_over_all_backends(self):
        ring = HashRing(NAMES, replicas=64)
        counts = {name: 0 for name in NAMES}
        for digest in _digests(300):
            counts[ring.route(digest)] += 1
        # 300 keys over 3 nodes: every node owns a real share, not a sliver
        assert all(count >= 30 for count in counts.values()), counts

    def test_removing_a_backend_only_remaps_its_own_keys(self):
        full = HashRing(NAMES)
        reduced = HashRing(NAMES[:2])
        for digest in _digests(200):
            primary = full.route(digest)
            if primary in NAMES[:2]:
                # keys NOT owned by the removed node must not move
                assert reduced.route(digest) == primary

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(())
        with pytest.raises(ValueError):
            HashRing(("a", "a"))
        with pytest.raises(ValueError):
            HashRing(("a",), replicas=0)


# --------------------------------------------------------------------------- #
# token bucket / client rate limiter (injected clocks, no I/O)
# --------------------------------------------------------------------------- #


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_deny(self):
        clock = _Clock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]

    def test_continuous_refill_admits_rate_in_steady_state(self):
        clock = _Clock()
        # 0.125 is binary-exact, so each step refills exactly one token
        bucket = TokenBucket(rate=8.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        admitted = 0
        for _ in range(80):  # 10 seconds at 8 req/s offered every 125ms
            clock.now += 0.125
            admitted += bucket.try_acquire()
        assert admitted == 80  # rate matches exactly: fractions accumulate

    def test_refill_caps_at_burst(self):
        clock = _Clock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.now += 60.0
        assert bucket.tokens == pytest.approx(2.0)

    def test_denied_request_does_not_debit(self):
        clock = _Clock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        before = bucket.tokens
        assert not bucket.try_acquire()
        assert bucket.tokens == pytest.approx(before)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestClientRateLimiter:
    def test_disabled_limiter_always_allows_and_tracks_nothing(self):
        limiter = ClientRateLimiter(None)
        assert all(limiter.allow("x") for _ in range(1000))
        assert len(limiter) == 0
        assert limiter.rejected == 0

    def test_clients_get_independent_buckets(self):
        clock = _Clock()
        limiter = ClientRateLimiter(1.0, burst=1.0, clock=clock)
        assert limiter.allow("a")
        assert not limiter.allow("a")
        assert limiter.allow("b")  # b's bucket is untouched by a's burn
        assert limiter.rejected == 1

    def test_lru_turnover_bounds_the_table(self):
        clock = _Clock()
        limiter = ClientRateLimiter(1.0, burst=1.0, max_clients=3, clock=clock)
        for name in ("a", "b", "c", "d"):
            limiter.allow(name)
        assert len(limiter) == 3
        # "a" was dropped; its next request mints a fresh (full) bucket
        assert limiter.allow("a")


# --------------------------------------------------------------------------- #
# integration: real router over real backends
# --------------------------------------------------------------------------- #


def _run_with_cluster(fn, backends=2, workers=1, router_kwargs=None, backend_kwargs=None):
    """Boot N backends + 1 router, run ``await fn(router, services, host, port)``."""

    async def run():
        services = []
        for _ in range(backends):
            service = SolveService(
                ServiceConfig(
                    port=0, workers=workers, prefer_processes=False, **(backend_kwargs or {})
                )
            )
            await service.start()
            services.append(service)
        router = SolveRouter(
            RouterConfig(
                backends=tuple(BackendSpec(*service.address) for service in services),
                **(router_kwargs or {}),
            )
        )
        await router.start()
        try:
            host, port = router.address
            return await fn(router, services, host, port)
        finally:
            await router.shutdown()
            for service in services:
                with contextlib.suppress(Exception):
                    await service.shutdown(drain=False)

    return asyncio.run(run())


def _workload():
    return [
        PebblingProblem(figure1_gadget(), r=4, game="prbp"),
        PebblingProblem(kary_tree_dag(2, 4), r=3, game="prbp"),
        PebblingProblem(kary_tree_dag(3, 3), r=4, game="rbp"),
        PebblingProblem(chained_gadget_dag(8), r=4, game="rbp"),
    ]


#: Occupies a worker for a known window; wall-clock budgets are uncacheable,
#: so these requests always dispatch (no cache tier can answer them).
SLOW_BUDGET_S = 0.4


def _slow_problem():
    return PebblingProblem(chained_gadget_dag(16), r=4, game="rbp")


def _slow_kwargs():
    return {"solver": "anytime", "time_budget_s": SLOW_BUDGET_S, "seed": 0}


def _problem_with_primary(ring, primary, exclude=(), solver="auto", options=None):
    """A problem whose ring primary is ``primary`` (deterministic scan)."""
    for arity in (2, 3):
        for depth in (3, 4, 5):
            for r in (2, 3, 4, 5):
                problem = PebblingProblem(kary_tree_dag(arity, depth), r=r)
                digest = problem_digest(problem, solver=solver, options=options or {})
                if digest not in exclude and ring.route(digest) == primary:
                    return problem, digest
    raise AssertionError(f"no scan candidate hashes to {primary}")


class TestRouting:
    def test_requests_land_on_ring_predicted_backends_bit_identically(self):
        workload = _workload()
        local = [solve(problem) for problem in workload]

        async def scenario(router, services, host, port):
            ring = HashRing(tuple(spec.name for spec in router.config.backends))
            async with await ServiceClient.connect(host, port) as client:
                for problem, want in zip(workload, local):
                    got, meta = await client.solve_detailed(problem)
                    assert got.cost == want.cost
                    assert got.schedule.moves == want.schedule.moves
                    digest = problem_digest(problem, solver="auto", options={})
                    assert meta["backend"] == ring.route(digest)
                # same digests again: backends must not change
                for problem in workload:
                    _, meta = await client.solve_detailed(problem)
                    digest = problem_digest(problem, solver="auto", options={})
                    assert meta["backend"] == ring.route(digest)

        _run_with_cluster(scenario, backends=3)

    def test_repeats_hit_hot_lru_without_new_dispatch(self):
        workload = _workload()[:2]

        async def scenario(router, services, host, port):
            async with await ServiceClient.connect(host, port) as client:
                for problem in workload:
                    _, meta = await client.solve_detailed(problem)
                    assert meta["cache_hit"] is False
                dispatched = router.stats()["routing"]["dispatched"]
                for problem in workload:
                    _, meta = await client.solve_detailed(problem)
                    assert meta["cache_hit"] is True
                stats = router.stats()
                assert stats["routing"]["hot_hits"] >= len(workload)
                assert stats["routing"]["dispatched"] == dispatched

        _run_with_cluster(scenario, backends=2)

    def test_peer_fetch_serves_from_non_primary_cache(self):
        async def scenario(router, services, host, port):
            names = tuple(spec.name for spec in router.config.backends)
            ring = HashRing(names)
            by_name = dict(zip(names, services))
            problem, digest = _problem_with_primary(ring, names[0])
            donor_name = ring.preference(digest)[1]
            async with await ServiceClient.connect(*by_name[donor_name].address) as direct:
                seeded = await direct.solve(problem)
            async with await ServiceClient.connect(host, port) as client:
                got, meta = await client.solve_detailed(problem)
            assert got.cost == seeded.cost
            assert meta["cache_hit"] is True
            assert meta["backend"] == donor_name
            stats = router.stats()
            assert stats["routing"]["peer_fetch_hits"] == 1
            assert stats["routing"]["dispatched"] == 0  # the recompute was avoided

        _run_with_cluster(scenario, backends=3)

    def test_streamed_solve_routes_with_progress_events(self):
        problem = _slow_problem()

        async def scenario(router, services, host, port):
            async with await ServiceClient.connect(host, port) as client:
                result, events = await client.solve_stream(
                    problem, "anytime", time_budget_s=SLOW_BUDGET_S, seed=0
                )
            assert events, "streamed solve through the router pushed no events"
            costs = [event.cost for event in events]
            assert costs == sorted(costs, reverse=True)
            assert result.cost == costs[-1]

        _run_with_cluster(scenario, backends=2)

    def test_submit_and_poll_roundtrip_through_router(self):
        problem = _workload()[0]
        want = solve(problem)

        async def scenario(router, services, host, port):
            names = {spec.name for spec in router.config.backends}
            async with await ServiceClient.connect(host, port) as client:
                job_id = await client.submit(problem)
                backend_name, _, inner = job_id.partition("/")
                assert backend_name in names and inner
                got = await client.wait(job_id, problem)
                assert got.cost == want.cost
                with pytest.raises(ServiceError) as err:
                    await client.poll("nonsense-job-id")
                assert err.value.code == "unknown-job"

        _run_with_cluster(scenario, backends=2)

    def test_probe_through_router_misses_then_hits(self):
        problem = _workload()[1]

        async def scenario(router, services, host, port):
            async with await ServiceClient.connect(host, port) as client:
                assert await client.probe(problem) is None
                solved = await client.solve(problem)
                probed = await client.probe(problem)
                assert probed is not None and probed.cost == solved.cost

        _run_with_cluster(scenario, backends=2)


class TestAdmissionDefence:
    def test_rate_limited_client_is_shed_with_typed_error(self):
        problem = _workload()[0]

        async def scenario(router, services, host, port):
            async with await ServiceClient.connect(host, port) as client:
                await client.solve(problem, client_id="hammer")
                with pytest.raises(ServiceError) as err:
                    await client.solve(problem, client_id="hammer")
                assert err.value.code == "rate-limited"
                stats = router.stats()
                assert stats["shed"]["rate_limited"] == 1
                assert stats["rate_limit"]["rejected"] == 1

        _run_with_cluster(
            scenario,
            backends=2,
            router_kwargs={"rate_limit_per_s": 0.001, "rate_limit_burst": 1},
        )

    def test_overload_is_shed_with_typed_error(self):
        async def scenario(router, services, host, port):
            async def slow():
                async with await ServiceClient.connect(host, port) as client:
                    return await client.solve(_slow_problem(), **_slow_kwargs())

            async def quick_after_delay():
                await asyncio.sleep(SLOW_BUDGET_S / 4)  # land while slow() is in flight
                async with await ServiceClient.connect(host, port) as client:
                    return await client.solve(_workload()[0])

            results = await asyncio.gather(slow(), quick_after_delay(), return_exceptions=True)
            codes = [r.code for r in results if isinstance(r, ServiceError)]
            assert codes == ["overloaded"]
            assert router.stats()["shed"]["overloaded"] == 1

        _run_with_cluster(scenario, backends=2, router_kwargs={"max_inflight": 1})

    def test_deadline_expiry_under_load_relays_typed_error(self):
        """A queued request whose deadline passes is expired, not solved late."""

        async def scenario(router, services, host, port):
            async def occupy():
                async with await ServiceClient.connect(host, port) as client:
                    return await client.solve(_slow_problem(), **_slow_kwargs())

            async def doomed():
                await asyncio.sleep(SLOW_BUDGET_S / 4)
                async with await ServiceClient.connect(host, port) as client:
                    # uncacheable (wall-clock budget) so no tier can answer it;
                    # the only worker is busy for longer than this deadline
                    return await client.solve(
                        _slow_problem(),
                        "anytime",
                        deadline_s=SLOW_BUDGET_S / 8,
                        time_budget_s=SLOW_BUDGET_S,
                        seed=1,
                    )

            occupied, expired = await asyncio.gather(occupy(), doomed(), return_exceptions=True)
            assert not isinstance(occupied, Exception)
            assert isinstance(expired, ServiceError) and expired.code == "deadline"

        # one backend, one worker: the slow solve saturates the cluster
        _run_with_cluster(scenario, backends=1, workers=1)

    def test_all_backends_down_is_a_typed_no_backend_error(self):
        async def run():
            # nothing listens on this port: every dial fails immediately
            router = SolveRouter(
                RouterConfig(
                    backends=(BackendSpec("127.0.0.1", 1),),
                    failure_threshold=1,
                    cooldown_s=60.0,
                )
            )
            await router.start()
            try:
                host, port = router.address
                async with await ServiceClient.connect(host, port) as client:
                    with pytest.raises(ServiceError) as err:
                        await asyncio.wait_for(client.solve(_workload()[0]), timeout=10.0)
                    assert err.value.code == "no-backend"
                assert router.stats()["routing"]["no_backend"] == 1
            finally:
                await router.shutdown()

        asyncio.run(run())


class TestFailover:
    def test_killed_backend_requests_redispatch_or_fail_typed_never_hang(self):
        """Kill one backend under load: in-flight and subsequent requests either
        re-dispatch (bit-identical results) or fail with a typed error."""

        async def scenario(router, services, host, port):
            names = tuple(spec.name for spec in router.config.backends)
            ring = HashRing(names)
            victim_name = names[0]
            victim = services[0]

            # fresh problems pinned to the victim's shard, plus mixed others
            exclude = set()
            pinned = []
            for _ in range(2):
                problem, digest = _problem_with_primary(ring, victim_name, exclude)
                exclude.add(digest)
                pinned.append(problem)
            workload = pinned + _workload()[:2]
            local = [solve(problem) for problem in workload]
            # anything solved pre-kill may sit in the router's hot LRU, which
            # (correctly) reports the recording backend even after it dies —
            # keep the post-kill scans away from those digests
            exclude.update(
                problem_digest(problem, solver="auto", options={}) for problem in workload
            )

            async def request(problem):
                async with await ServiceClient.connect(host, port) as client:
                    return await client.solve(problem)

            async def kill_victim():
                await asyncio.sleep(0.05)
                await victim.shutdown(drain=False)

            outcomes = await asyncio.wait_for(
                asyncio.gather(
                    *(request(problem) for problem in workload),
                    kill_victim(),
                    return_exceptions=True,
                ),
                timeout=30.0,  # the acceptance bar: never hangs
            )
            request_outcomes = outcomes[:-1]
            for outcome, want in zip(request_outcomes, local):
                if isinstance(outcome, BaseException):
                    # a request caught mid-drain may surface as a typed error
                    assert isinstance(outcome, ServiceError), outcome
                    assert outcome.code in ("shutting-down", "no-backend"), outcome.code
                else:
                    assert outcome.cost == want.cost
                    assert outcome.schedule.moves == want.schedule.moves

            survivors = {name for name in names if name != victim_name}

            # an uncacheable request skips the probe tiers, so the dead
            # victim is discovered by the dispatch itself — the relay fails
            # over to the next ring node and the failover counter must move
            slow_options = {"time_budget_s": SLOW_BUDGET_S / 4, "seed": 0}
            uncacheable, _ = _problem_with_primary(
                ring, victim_name, solver="anytime", options=slow_options
            )
            async with await ServiceClient.connect(host, port) as client:
                result = await asyncio.wait_for(
                    client.solve(uncacheable, "anytime", **slow_options), timeout=30.0
                )
            assert result.cost >= 1

            # the victim's whole shard now fails over and cacheable answers
            # are still bit-identical to local solves
            problem, _ = _problem_with_primary(ring, victim_name, exclude)
            want = solve(problem)
            async with await ServiceClient.connect(host, port) as client:
                got, meta = await asyncio.wait_for(
                    client.solve_detailed(problem), timeout=30.0
                )
            assert got.cost == want.cost
            assert got.schedule.moves == want.schedule.moves
            assert meta["backend"] in survivors
            stats = router.stats()
            assert stats["routing"]["failovers"] >= 1
            assert any(not backend["alive"] for backend in stats["backends"])

        _run_with_cluster(
            scenario,
            backends=2,
            workers=2,
            router_kwargs={"failure_threshold": 1, "cooldown_s": 60.0},
        )

    def test_router_metrics_and_cluster_trace_stitch(self, tmp_path):
        """One request leaves one trace covering router tiering and the solve."""
        trace_file = tmp_path / "spans.jsonl"

        async def scenario(router, services, host, port):
            async with await ServiceClient.connect(host, port) as client:
                await client.solve(_workload()[0])
                doc = await client.metrics()
            families = parse_exposition(doc["exposition"])
            assert families["repro_router_requests_total"]["type"] == "counter"
            assert families["repro_router_tier_seconds"]["type"] == "histogram"
            assert router.stats()["latency"]["repro_router_tier_seconds"]["count"] >= 1

        _run_with_cluster(
            scenario,
            backends=2,
            router_kwargs={"trace_file": trace_file},
            backend_kwargs={"trace_file": trace_file},
        )
        traces = {}
        for line in trace_file.read_text().splitlines():
            span = json.loads(line)
            traces.setdefault(span["trace_id"], []).append(span)
        stitched = [
            spans
            for spans in traces.values()
            if {"router.route", "queue_wait", "solve_exec"} <= {s["name"] for s in spans}
        ]
        assert stitched, "no trace covered routing, queue wait and solver execution"
        nodes = {span["node"] for span in stitched[0]}
        assert any(node.startswith("router:") for node in nodes)
        assert any(node.startswith("service:") for node in nodes)

    def test_router_shutdown_refuses_new_work_with_typed_error(self):
        async def scenario(router, services, host, port):
            async with await ServiceClient.connect(host, port) as client:
                await client.solve(_workload()[0])
                router._closing = True  # drain begins: no new admissions
                with pytest.raises(ServiceError) as err:
                    await client.solve(_workload()[1])
                assert err.value.code == "shutting-down"
                router._closing = False  # let the fixture shut down normally

        _run_with_cluster(scenario, backends=2)
