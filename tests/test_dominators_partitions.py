"""Tests for dominator/terminal sets and the three partition concepts."""

import pytest

from repro.bounds.dominators import (
    edge_start_set,
    edge_terminal_set,
    is_dominator,
    is_edge_dominator,
    minimum_dominator_size,
    minimum_edge_dominator_size,
    terminal_set,
)
from repro.bounds.partitions import (
    SDominatorPartition,
    SEdgePartition,
    SPartition,
    dominator_partition_from_prbp_schedule,
    edge_partition_from_prbp_schedule,
    spartition_from_rbp_schedule,
)
from repro.core.dag import ComputationalDAG
from repro.core.exceptions import PartitionError
from repro.dags import (
    binary_tree_instance,
    fanin_groups_instance,
    figure1_instance,
    random_layered_dag,
    zipper_instance,
)
from repro.solvers.exhaustive import optimal_prbp_schedule, optimal_rbp_schedule
from repro.solvers.greedy import greedy_rbp_schedule, topological_prbp_schedule
from repro.solvers.structured import (
    figure1_prbp_schedule,
    figure1_rbp_schedule,
    matvec_prbp_schedule,
    tree_prbp_schedule,
    zipper_prbp_schedule,
)


def diamond() -> ComputationalDAG:
    return ComputationalDAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)], name="diamond")


class TestDominators:
    def test_source_dominates_everything_below(self):
        dag = diamond()
        assert is_dominator(dag, {0}, {1, 2, 3})
        assert is_dominator(dag, {0}, {3})

    def test_target_can_cover_itself(self):
        dag = diamond()
        assert is_dominator(dag, {3}, {3})
        assert is_dominator(dag, {1, 2}, {3})

    def test_uncovered_source_target(self):
        dag = diamond()
        # the empty path from source 0 to itself avoids {1, 2, 3}
        assert not is_dominator(dag, {1, 2, 3}, {0})
        assert is_dominator(dag, {0}, {0})

    def test_not_a_dominator(self):
        dag = diamond()
        assert not is_dominator(dag, {1}, {3})  # the path through 2 is uncovered

    def test_minimum_dominator_size(self):
        dag = diamond()
        assert minimum_dominator_size(dag, {3}) == 1  # {0} or {3}
        assert minimum_dominator_size(dag, {1, 2}) == 1  # {0}
        assert minimum_dominator_size(dag, set()) == 0

    def test_minimum_dominator_on_fanin(self):
        inst = fanin_groups_instance(num_groups=4, group_size=3)
        # dominating the sink needs all 4 sources (or the sink itself): minimum is 1 (the sink)
        assert minimum_dominator_size(inst.dag, {inst.sink}) == 1
        # dominating one full group needs its source or the whole group
        assert minimum_dominator_size(inst.dag, set(inst.groups[0])) == 1
        # dominating one node from each group plus the sink requires 5 nodes? no:
        # the 4 sources dominate everything
        targets = {g[0] for g in inst.groups}
        assert minimum_dominator_size(inst.dag, targets) == 4

    def test_terminal_set(self):
        dag = diamond()
        assert terminal_set(dag, {0, 1, 2, 3}) == frozenset({3})
        assert terminal_set(dag, {1, 2}) == frozenset({1, 2})
        assert terminal_set(dag, {0, 1}) == frozenset({1})

    def test_edge_concepts(self):
        dag = diamond()
        e = [(0, 1), (1, 3)]
        assert edge_start_set(e) == frozenset({0, 1})
        assert is_edge_dominator(dag, {0}, e)
        assert not is_edge_dominator(dag, {2}, e)
        # node 1 has an in-edge in E0 and an out-edge in E0 -> not edge-terminal;
        # node 3 has an in-edge in E0 and no out-edge at all -> edge-terminal
        assert edge_terminal_set(dag, e) == frozenset({3})
        assert minimum_edge_dominator_size(dag, e) == 1

    def test_edge_terminal_differs_from_terminal(self):
        # the paper's example after Definition 6.2: both an internal node and
        # its successor can be edge-terminal simultaneously
        dag = ComputationalDAG(4, [(0, 1), (1, 2), (3, 2)])
        e0 = [(0, 1), (3, 2)]
        assert edge_terminal_set(dag, e0) == frozenset({1, 2})


class TestPartitionVerification:
    def test_valid_single_class_partition(self):
        dag = diamond()
        SPartition(dag=dag, s=2, classes=[[0, 1, 2, 3]]).verify()

    def test_missing_node_rejected(self):
        dag = diamond()
        with pytest.raises(PartitionError):
            SPartition(dag=dag, s=4, classes=[[0, 1, 2]]).verify()

    def test_duplicate_node_rejected(self):
        dag = diamond()
        with pytest.raises(PartitionError):
            SPartition(dag=dag, s=4, classes=[[0, 1], [1, 2, 3]]).verify()

    def test_cyclic_class_order_rejected(self):
        dag = diamond()
        with pytest.raises(PartitionError):
            SPartition(dag=dag, s=4, classes=[[3, 1, 2], [0]]).verify()

    def test_dominator_condition_enforced(self):
        inst = fanin_groups_instance(num_groups=5, group_size=1)
        dag = inst.dag
        # a single class containing everything needs a dominator of size 5 (the sources)
        with pytest.raises(PartitionError):
            SDominatorPartition(dag=dag, s=4, classes=[list(dag.nodes())]).verify()
        SDominatorPartition(dag=dag, s=5, classes=[list(dag.nodes())]).verify()

    def test_terminal_condition_enforced(self):
        inst = fanin_groups_instance(num_groups=2, group_size=4)
        dag = inst.dag
        # put the groups in one class and the sink in another: the first class
        # has 8 terminal nodes
        first = list(inst.sources) + [w for g in inst.groups for w in g]
        with pytest.raises(PartitionError):
            SPartition(dag=dag, s=4, classes=[first, [inst.sink]]).verify()
        # as an S-dominator partition (no terminal condition) it is fine with S = 2
        SDominatorPartition(dag=dag, s=2, classes=[first, [inst.sink]]).verify()

    def test_edge_partition_checks(self):
        dag = diamond()
        all_edges = list(dag.edges)
        SEdgePartition(dag=dag, s=2, classes=[all_edges]).verify()
        with pytest.raises(PartitionError):
            SEdgePartition(dag=dag, s=2, classes=[all_edges[:-1]]).verify()
        # ordering violation: (1,3) before (0,1)
        with pytest.raises(PartitionError):
            SEdgePartition(dag=dag, s=2, classes=[[(1, 3), (2, 3)], [(0, 1), (0, 2)]]).verify()


class TestExtractionLemmas:
    """Hong & Kung's extraction and Lemmas 6.4 / 6.8: every strategy yields a valid partition."""

    @staticmethod
    def _ceil_div(a: int, b: int) -> int:
        return -(-a // b)

    def _check_rbp(self, schedule):
        partition = spartition_from_rbp_schedule(schedule)
        partition.verify()
        cost = schedule.cost()
        k = len(partition)
        # empty subsequences (pure-I/O blocks) are dropped, so k is at most
        # ceil(C / r); the lower-bound direction C >= r*(k - 1) follows.
        assert k <= max(1, self._ceil_div(cost, schedule.r))
        assert cost >= schedule.r * (k - 1)

    def _check_prbp(self, schedule):
        ep = edge_partition_from_prbp_schedule(schedule)
        ep.verify()
        dp = dominator_partition_from_prbp_schedule(schedule)
        dp.verify()
        cost = schedule.cost()
        for k in (len(ep), len(dp)):
            assert k <= max(1, self._ceil_div(cost, schedule.r))
            assert cost >= schedule.r * (k - 1)

    def test_figure1(self):
        self._check_rbp(figure1_rbp_schedule())
        self._check_prbp(figure1_prbp_schedule())

    def test_exhaustive_optima(self):
        dag = figure1_instance().dag
        self._check_rbp(optimal_rbp_schedule(dag, 4))
        self._check_prbp(optimal_prbp_schedule(dag, 4))

    def test_trees(self):
        self._check_prbp(tree_prbp_schedule(binary_tree_instance(3)))

    def test_zipper(self):
        self._check_prbp(zipper_prbp_schedule(zipper_instance(3, 6)))

    def test_matvec(self):
        self._check_prbp(matvec_prbp_schedule(m=3))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags_with_greedy_strategies(self, seed):
        dag = random_layered_dag([3, 4, 3, 2], edge_probability=0.35, max_in_degree=3, seed=seed)
        self._check_prbp(topological_prbp_schedule(dag, 3))
        self._check_rbp(greedy_rbp_schedule(dag, dag.max_in_degree + 1))
