"""Property-based correctness suite for the solver stack.

Random small DAGs drive four families of properties, in the spirit of
verified-checker tooling: nothing a solver reports is trusted — every
schedule is independently replayed through the game engine, every cost is
sandwiched between bounds the library derives separately.

* **validity** — every solver's schedule replays legally and terminally;
* **capacity monotonicity** — the optimum never increases when ``r`` grows;
* **solver ordering** — exhaustive ≤ greedy ≤ naive, per game;
* **bound soundness** — every lower bound in :mod:`repro.bounds` is at most
  the exhaustive optimum.

Sizes are kept small (n ≤ 7) so the exhaustive searches stay in the
millisecond range; the Hypothesis profile (see ``conftest.py``) bounds the
example count and pins the CI runs to a fixed derandomized seed.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.api import PebblingProblem, best_lower_bound, solve  # noqa: E402
from repro.bounds.hongkung import rbp_lower_bound_exact  # noqa: E402
from repro.bounds.prbp_bounds import (  # noqa: E402
    prbp_dominator_lower_bound_exact,
    prbp_edge_lower_bound_exact,
)
from repro.core.exceptions import SolverError  # noqa: E402
from repro.dags.random_dags import random_dag  # noqa: E402

SETTINGS = settings(max_examples=20, deadline=None)

#: Every generally-applicable registered solver, cheapest-schedule first.
GENERIC_SOLVERS = ("exhaustive", "greedy", "naive")


@st.composite
def small_dags(draw):
    """A small unstructured random DAG (reproducible via its seed tag)."""
    n = draw(st.integers(min_value=3, max_value=7))
    prob = draw(st.floats(min_value=0.1, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=50_000))
    return random_dag(n, edge_probability=prob, seed=seed)


def _solve(dag, r, game, solver):
    return solve(PebblingProblem(dag, r, game=game), solver=solver)


def _feasible_rbp_r(dag, extra=0):
    return dag.max_in_degree + 1 + extra


class TestEverySchedulePassesValidityReplay:
    @SETTINGS
    @given(dag=small_dags(), extra=st.integers(min_value=0, max_value=2))
    def test_rbp_schedules_replay(self, dag, extra):
        r = _feasible_rbp_r(dag, extra)
        for solver in GENERIC_SOLVERS:
            result = _solve(dag, r, "rbp", solver)
            game = result.schedule.validate()  # raises on any illegal move
            assert game.is_terminal()
            assert game.io_cost == result.cost
            assert result.stats.peak_red <= r

    @SETTINGS
    @given(dag=small_dags(), r=st.integers(min_value=2, max_value=5))
    def test_prbp_schedules_replay(self, dag, r):
        for solver in GENERIC_SOLVERS:
            result = _solve(dag, r, "prbp", solver)
            game = result.schedule.validate()
            assert game.is_terminal()
            assert game.io_cost == result.cost
            assert result.stats.peak_red <= r


class TestCostIsMonotoneInCapacity:
    @SETTINGS
    @given(dag=small_dags(), extra=st.integers(min_value=0, max_value=2))
    def test_rbp_optimum_non_increasing_in_r(self, dag, extra):
        r = _feasible_rbp_r(dag, extra)
        assert (
            _solve(dag, r + 1, "rbp", "exhaustive").cost
            <= _solve(dag, r, "rbp", "exhaustive").cost
        )

    @SETTINGS
    @given(dag=small_dags(), r=st.integers(min_value=2, max_value=4))
    def test_prbp_optimum_non_increasing_in_r(self, dag, r):
        assert (
            _solve(dag, r + 1, "prbp", "exhaustive").cost
            <= _solve(dag, r, "prbp", "exhaustive").cost
        )


class TestSolverOrdering:
    @SETTINGS
    @given(dag=small_dags(), extra=st.integers(min_value=0, max_value=2))
    def test_rbp_exhaustive_beats_greedy_beats_naive(self, dag, extra):
        r = _feasible_rbp_r(dag, extra)
        exact, greedy, naive = (_solve(dag, r, "rbp", s).cost for s in GENERIC_SOLVERS)
        assert exact <= greedy <= naive

    @SETTINGS
    @given(dag=small_dags(), r=st.integers(min_value=2, max_value=5))
    def test_prbp_exhaustive_beats_greedy_beats_naive(self, dag, r):
        exact, greedy, naive = (_solve(dag, r, "prbp", s).cost for s in GENERIC_SOLVERS)
        assert exact <= greedy <= naive


class TestEveryLowerBoundIsBelowTheOptimum:
    @SETTINGS
    @given(dag=small_dags(), extra=st.integers(min_value=0, max_value=1))
    def test_rbp_bounds_sound(self, dag, extra):
        r = _feasible_rbp_r(dag, extra)
        opt = _solve(dag, r, "rbp", "exhaustive").cost
        assert dag.trivial_cost() <= opt
        assert rbp_lower_bound_exact(dag, r) <= opt
        problem = PebblingProblem(dag, r, game="rbp")
        bound, _source = best_lower_bound(problem)
        assert bound is None or bound <= opt

    @SETTINGS
    @given(dag=small_dags(), r=st.integers(min_value=2, max_value=4))
    def test_prbp_bounds_sound(self, dag, r):
        opt = _solve(dag, r, "prbp", "exhaustive").cost
        assert dag.trivial_cost() <= opt
        assert prbp_dominator_lower_bound_exact(dag, r) <= opt
        try:
            edge_bound = prbp_edge_lower_bound_exact(dag, r)
        except SolverError:
            edge_bound = None  # more edges than the exact search supports
        assert edge_bound is None or edge_bound <= opt
        problem = PebblingProblem(dag, r, game="prbp")
        bound, _source = best_lower_bound(problem)
        assert bound is None or bound <= opt

    @SETTINGS
    @given(dag=small_dags(), r=st.integers(min_value=2, max_value=4))
    def test_prbp_optimum_never_exceeds_rbp_optimum(self, dag, r):
        # Proposition 4.1, with the RBP side posed at a feasible capacity.
        r_rbp = max(r, _feasible_rbp_r(dag))
        assert (
            _solve(dag, r_rbp, "prbp", "exhaustive").cost
            <= _solve(dag, r_rbp, "rbp", "exhaustive").cost
        )
