"""Shared test configuration: Hypothesis profiles.

Two profiles are registered:

* ``ci`` — deterministic (derandomized, fixed-seed) and bounded, so CI runs
  are reproducible and cannot flake on a slow example; selected in the
  workflow with ``--hypothesis-profile=ci``.
* ``dev`` — the local default: same bounds, but with Hypothesis's random
  exploration enabled so repeated local runs keep probing new inputs.
* ``thorough`` — the deep differential sweep (1500 examples per property):
  run locally as ``pytest tests/test_schedule_ir.py --hypothesis-profile=thorough``
  to push the replay-kernel harness past the 10k-case acceptance bar.

Selection order: the ``--hypothesis-profile`` CLI flag wins, then the
``HYPOTHESIS_PROFILE`` environment variable, then ``dev``.
"""

import os

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover — hypothesis is part of the test extra
    settings = None

if settings is not None:
    _COMMON = dict(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
    )
    settings.register_profile("ci", derandomize=True, **_COMMON)
    settings.register_profile("dev", **_COMMON)
    settings.register_profile(
        "thorough",
        max_examples=1500,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
