"""DAG canonicalization: soundness, determinism, and invariance where promised."""

from repro.core.canonical import canonical_form, canonical_labeling, dag_digest
from repro.core.dag import ComputationalDAG
from repro.dags import figure1_gadget, kary_tree_dag
from repro.dags.random_dags import random_dag


def _relabel(dag: ComputationalDAG, perm) -> ComputationalDAG:
    """The same graph with node ``v`` renamed to ``perm[v]``."""
    return ComputationalDAG(dag.n, [(perm[u], perm[v]) for u, v in dag.edges])


class TestCanonicalLabeling:
    def test_labeling_is_a_permutation(self):
        for seed in range(5):
            dag = random_dag(7, edge_probability=0.3, seed=seed)
            perm = canonical_labeling(dag)
            assert sorted(perm) == list(range(dag.n))

    def test_empty_and_trivial_graphs(self):
        assert canonical_labeling(ComputationalDAG(0, [])) == []
        assert canonical_form(ComputationalDAG(1, [])) == (1, ())

    def test_form_is_deterministic(self):
        dag = figure1_gadget()
        assert canonical_form(dag) == canonical_form(figure1_gadget())

    def test_chain_relabelings_share_a_form(self):
        # WL refinement separates every node of a path (by depth), so any
        # renumbering of a chain canonicalises identically.
        chain = ComputationalDAG(4, [(0, 1), (1, 2), (2, 3)])
        shifted = ComputationalDAG(4, [(3, 0), (0, 2), (2, 1)])  # 0->3, 1->0, 2->2, 3->1
        assert canonical_form(chain) == canonical_form(shifted)

    def test_tree_relabeling_with_discrete_refinement(self):
        # Reversing a diamond's middle pair keeps the structure; the two
        # middle nodes are genuinely symmetric, so the form must agree no
        # matter how ties were broken.
        diamond = ComputationalDAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        swapped = _relabel(diamond, [0, 2, 1, 3])
        assert canonical_form(diamond) == canonical_form(swapped)

    def test_forms_differ_for_non_isomorphic_graphs(self):
        # Same node and edge counts, different shape: a path vs. a fork.
        path = ComputationalDAG(3, [(0, 1), (1, 2)])
        fork = ComputationalDAG(3, [(0, 1), (0, 2)])
        assert canonical_form(path) != canonical_form(fork)

    def test_equal_forms_imply_isomorphic_edge_sets(self):
        # The form is a relabelled copy: reconstructing from it reproduces
        # the original's canonical form (soundness round-trip).
        dag = kary_tree_dag(2, 3)
        n, edges = canonical_form(dag)
        rebuilt = ComputationalDAG(n, edges)
        assert canonical_form(rebuilt) == (n, edges)


class TestDagDigest:
    def test_exact_digest_separates_numberings(self):
        # Isomorphic but renumbered instances must NOT share an exact digest:
        # numbering-sensitive solvers (greedy tie-breaking) may legitimately
        # answer them differently, and the result cache keys on this digest.
        diamond = ComputationalDAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        renumbered = _relabel(diamond, [3, 1, 2, 0])
        assert dag_digest(diamond) != dag_digest(renumbered)

    def test_structural_digest_identifies_symmetric_relabelings(self):
        diamond = ComputationalDAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        swapped = _relabel(diamond, [0, 2, 1, 3])
        assert dag_digest(diamond, exact=False) == dag_digest(swapped, exact=False)

    def test_digest_reflects_structure_changes(self):
        a = random_dag(6, edge_probability=0.3, seed=1)
        b = random_dag(6, edge_probability=0.3, seed=2)
        assert dag_digest(a) != dag_digest(b)
        assert dag_digest(a) == dag_digest(random_dag(6, edge_probability=0.3, seed=1))
