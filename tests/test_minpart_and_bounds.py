"""Tests for exact/greedy minimum partitions and the lower-bound formulas."""

import pytest

from repro.bounds.analytic import (
    attention_prbp_lower_bound,
    chained_gadget_prbp_optimal_cost,
    chained_gadget_rbp_lower_bound,
    collection_io_lower_bound_without_full_pebbles,
    fanin_min_part_lower_bound,
    fft_min_dom_lower_bound,
    fft_prbp_lower_bound,
    matmul_min_edge_lower_bound,
    matmul_prbp_lower_bound,
    matvec_prbp_optimal_cost,
    matvec_rbp_lower_bound,
)
from repro.bounds.hongkung import rbp_lower_bound_exact, rbp_lower_bound_from_min_part
from repro.bounds.minpart import (
    greedy_dominator_partition,
    greedy_edge_partition,
    greedy_spartition,
    min_dominator_partition_classes,
    min_edge_partition_classes,
    min_spartition_classes,
)
from repro.bounds.prbp_bounds import (
    prbp_dominator_lower_bound_exact,
    prbp_edge_lower_bound_exact,
    prbp_lower_bound_from_min_dom,
    prbp_lower_bound_from_min_edge,
)
from repro.core.dag import ComputationalDAG
from repro.core.exceptions import SolverError
from repro.dags import (
    attention_instance,
    binary_tree_instance,
    fanin_groups_instance,
    fft_instance,
    figure1_instance,
    matmul_instance,
)
from repro.solvers.exhaustive import optimal_prbp_cost, optimal_rbp_cost
from repro.solvers.structured import (
    attention_flash_prbp_schedule,
    fft_blocked_prbp_schedule,
    matmul_tiled_prbp_schedule,
    matvec_prbp_schedule,
)


def diamond() -> ComputationalDAG:
    return ComputationalDAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)], name="diamond")


class TestExactMinPartitions:
    def test_diamond_single_class(self):
        dag = diamond()
        assert min_spartition_classes(dag, 2) == 1
        assert min_dominator_partition_classes(dag, 2) == 1
        assert min_edge_partition_classes(dag, 2) == 1

    def test_diamond_with_s1_is_still_one_class(self):
        # the single source dominates the whole diamond and the terminal set is {3}
        dag = diamond()
        assert min_spartition_classes(dag, 1) == 1
        assert min_dominator_partition_classes(dag, 1) == 1

    def test_two_sources_force_two_classes_at_s1(self):
        dag = ComputationalDAG(3, [(0, 2), (1, 2)], name="join")
        assert min_dominator_partition_classes(dag, 1) >= 2
        assert min_spartition_classes(dag, 1) >= 2
        assert min_spartition_classes(dag, 2) == 1

    def test_min_dom_never_exceeds_min_part(self):
        for dag in (diamond(), figure1_instance().dag, binary_tree_instance(2).dag):
            for s in (2, 4):
                assert min_dominator_partition_classes(dag, s) <= min_spartition_classes(dag, s)

    def test_fanin_small_instance_matches_lemma54_counting(self):
        # 3 groups of 3 nodes with S = 2 < num_groups: the sink's class cannot
        # contain nodes of every group, so extra classes are forced
        inst = fanin_groups_instance(num_groups=3, group_size=3)
        exact = min_spartition_classes(inst.dag, 2)
        assert exact >= fanin_min_part_lower_bound(3, 3, 2)

    def test_exact_search_node_limit(self):
        inst = binary_tree_instance(5)
        with pytest.raises(SolverError):
            min_spartition_classes(inst.dag, 4)


class TestGreedyPartitions:
    def test_greedy_upper_bounds_exact(self):
        for dag in (diamond(), figure1_instance().dag):
            for s in (2, 4):
                assert len(greedy_spartition(dag, s)) >= min_spartition_classes(dag, s)
                assert len(greedy_dominator_partition(dag, s)) >= min_dominator_partition_classes(dag, s)
                assert len(greedy_edge_partition(dag, s)) >= min_edge_partition_classes(dag, s)

    def test_greedy_partitions_verify(self):
        dag = binary_tree_instance(3).dag
        greedy_spartition(dag, 4).verify()
        greedy_dominator_partition(dag, 4).verify()
        greedy_edge_partition(dag, 4).verify()

    def test_greedy_rejects_impossible_s(self):
        inst = fanin_groups_instance(num_groups=3, group_size=2)
        # the sink alone needs a dominator of size 3 (its class contains it);
        # actually {sink} is dominated by {sink} itself, so use the S-edge case:
        with pytest.raises(SolverError):
            greedy_edge_partition(inst.dag, 0)


class TestHongKungStyleBounds:
    def test_bound_formulas(self):
        assert rbp_lower_bound_from_min_part(4, 3) == 8
        assert rbp_lower_bound_from_min_part(4, 1) == 0
        assert prbp_lower_bound_from_min_edge(3, 5) == 12
        assert prbp_lower_bound_from_min_dom(3, 0) == 0

    def test_exact_bounds_are_sound_on_small_dags(self):
        dag = figure1_instance().dag
        r = 4
        assert rbp_lower_bound_exact(dag, r) <= optimal_rbp_cost(dag, r)
        assert prbp_edge_lower_bound_exact(dag, r) <= optimal_prbp_cost(dag, r)
        assert prbp_dominator_lower_bound_exact(dag, r) <= optimal_prbp_cost(dag, r)

    def test_exact_bounds_sound_on_small_tree(self):
        dag = binary_tree_instance(2).dag
        r = 3
        assert rbp_lower_bound_exact(dag, r) <= optimal_rbp_cost(dag, r)
        assert prbp_dominator_lower_bound_exact(dag, r) <= optimal_prbp_cost(dag, r)


class TestLemma54Separation:
    """The classic S-partition bound over-estimates PRBP cost on the fan-in DAG."""

    def test_spartition_bound_grows_with_group_size_but_prbp_cost_does_not(self):
        from repro.solvers.structured import fanin_groups_prbp_schedule

        r = 3
        s = 2 * r
        small = fanin_groups_instance(num_groups=7, group_size=6)
        large = fanin_groups_instance(num_groups=7, group_size=60)
        # the PRBP cost stays at the trivial 8 regardless of the group size
        assert fanin_groups_prbp_schedule(small, r=r).cost() == 8
        assert fanin_groups_prbp_schedule(large, r=r).cost() == 8
        # but the S-partition counting bound grows linearly with the group size
        assert fanin_min_part_lower_bound(7, 60, s) > fanin_min_part_lower_bound(7, 6, s)
        assert rbp_lower_bound_from_min_part(r, fanin_min_part_lower_bound(7, 60, s)) > 8


class TestAnalyticFamilies:
    def test_matvec_formulas(self):
        for m in (3, 5, 8):
            assert matvec_prbp_optimal_cost(m) == m * m + 2 * m
            assert matvec_rbp_lower_bound(m) == m * m + 3 * m - 1
            assert matvec_prbp_schedule(m=m).cost() == matvec_prbp_optimal_cost(m)

    def test_chained_gadget_formulas(self):
        assert chained_gadget_prbp_optimal_cost() == 2
        assert chained_gadget_rbp_lower_bound(10) == 12

    def test_collection_bound(self):
        assert collection_io_lower_bound_without_full_pebbles(3, 12) == 2
        assert collection_io_lower_bound_without_full_pebbles(2, 9) == 3

    def test_fft_bound_is_below_achievable_cost(self):
        for m, r in ((16, 4), (32, 4), (64, 8)):
            lower = fft_prbp_lower_bound(m, r)
            achieved = fft_blocked_prbp_schedule(fft_instance(m), r=r).cost()
            assert lower <= achieved

    def test_fft_bound_monotone_in_m(self):
        assert fft_prbp_lower_bound(64, 4) >= fft_prbp_lower_bound(16, 4)
        with pytest.raises(ValueError):
            fft_min_dom_lower_bound(8, 1)

    def test_matmul_bound_is_below_achievable_cost(self):
        for dims, r in (((4, 4, 4), 8), ((6, 6, 6), 8), ((6, 6, 6), 16)):
            lower = matmul_prbp_lower_bound(*dims, r)
            achieved = matmul_tiled_prbp_schedule(matmul_instance(*dims), r=r).cost()
            assert lower <= achieved

    def test_matmul_counting_bound_shape(self):
        # doubling every dimension multiplies the bound's numerator by 8
        small = matmul_min_edge_lower_bound(4, 4, 4, 8)
        large = matmul_min_edge_lower_bound(8, 8, 8, 8)
        assert large >= 7 * small

    def test_attention_bound_is_below_achievable_cost(self):
        m, d = 8, 2
        r = d * d + d + 4
        lower = attention_prbp_lower_bound(m, d, r)
        achieved = attention_flash_prbp_schedule(attention_instance(m, d), r=r).cost()
        assert lower <= achieved

    def test_attention_bound_switches_regimes(self):
        m, d = 64, 8
        small_cache = attention_prbp_lower_bound(m, d, r=16)      # r <= d^2: matmul regime
        large_cache = attention_prbp_lower_bound(m, d, r=4 * d * d)
        assert small_cache >= 0 and large_cache >= 0
        # a larger cache never increases the lower bound
        assert large_cache <= small_cache or small_cache == 0
