"""Tests for repro.corpus: importers, store, fuzzer, bench sampling, CLI."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.api.cache import problem_digest
from repro.api.problem import PebblingProblem
from repro.bench.scenario import get_scenario, unregister_scenario
from repro.core.variants import RECOMPUTE, SLIDING
from repro.corpus import (
    CorpusImportError,
    CorpusStore,
    Filter,
    FuzzConfig,
    GRAPH_DUMP_FORMAT,
    GRAPH_DUMP_VERSION,
    build_corpus,
    corpus_scenarios,
    discriminates,
    extract_features,
    load_graph_dump,
    parse_filter,
    problem_from_graph_dump,
    problem_from_onnx,
    problem_from_torch_fx,
    problem_to_graph_dump,
    register_corpus_scenarios,
    save_graph_dump,
    sweep_instances,
)
from repro.corpus.__main__ import main as corpus_main
from repro.dags.random_dags import random_layered_dag
from repro.dags.trees import kary_tree_dag


def _problem(seed: int = 0, game: str = "prbp") -> PebblingProblem:
    dag = random_layered_dag((3, 4, 3), edge_probability=0.4, max_in_degree=3, seed=seed)
    return PebblingProblem(dag, r=dag.max_in_degree + 2, game=game)


def _dump(**overrides: object) -> dict:
    doc: dict = {
        "format": GRAPH_DUMP_FORMAT,
        "version": GRAPH_DUMP_VERSION,
        "edges": [[0, 2], [1, 2], [2, 3]],
    }
    doc.update(overrides)
    return doc


# --------------------------------------------------------------------------- #
# features
# --------------------------------------------------------------------------- #


class TestFeatures:
    def test_tree_depth_and_width(self):
        problem = PebblingProblem(kary_tree_dag(2, 3), r=4, game="prbp")
        feats = extract_features(problem)
        assert feats.depth == 3
        assert feats.width == 8  # the leaf layer of a binary depth-3 tree
        assert feats.n == 15
        assert feats.n_sinks == 1
        assert feats.game == "prbp"
        assert feats.r == 4

    def test_features_survive_reimport(self):
        problem = _problem(seed=5)
        rebuilt = problem_from_graph_dump(problem_to_graph_dump(problem))
        assert extract_features(rebuilt) == extract_features(problem)


# --------------------------------------------------------------------------- #
# the JSON graph-dump format
# --------------------------------------------------------------------------- #


class TestGraphDump:
    def test_round_trip_preserves_digest(self):
        for problem in (
            _problem(seed=1),
            _problem(seed=2, game="rbp"),
            PebblingProblem(kary_tree_dag(2, 3), r=3, game="rbp", variant=SLIDING),
            PebblingProblem(kary_tree_dag(2, 2), r=3, game="prbp", variant=RECOMPUTE),
        ):
            rebuilt = problem_from_graph_dump(problem_to_graph_dump(problem))
            assert problem_digest(rebuilt) == problem_digest(problem)

    def test_minimal_document_defaults(self):
        problem = problem_from_graph_dump(_dump())
        assert problem.n == 4
        assert problem.game == "prbp"
        assert problem.r == problem.dag.max_in_degree + 1
        assert problem.variant.one_shot

    def test_file_round_trip_single_and_array(self, tmp_path):
        problems = [_problem(seed=3), _problem(seed=4, game="rbp")]
        single, many = tmp_path / "one.json", tmp_path / "many.json"
        save_graph_dump(problems[0], single)
        save_graph_dump(problems, many)
        assert [problem_digest(p) for p in load_graph_dump(single)] == [
            problem_digest(problems[0])
        ]
        assert [problem_digest(p) for p in load_graph_dump(many)] == [
            problem_digest(p) for p in problems
        ]

    @pytest.mark.parametrize(
        "doc, excerpt",
        [
            ({"edges": [[0, 1]]}, "'format'"),
            (_dump(version=GRAPH_DUMP_VERSION + 1), "newer"),
            (_dump(edges=[[0, 1], [1, 0]]), "not a valid DAG"),
            (_dump(edges=[[0, 0]]), "not a valid DAG"),
            (_dump(edges=[[0, 1], [0, 1]]), "not a valid DAG"),
            (_dump(edges=[[0, 5]], n=2), "not a valid DAG"),
            (_dump(edges="nope"), "'edges'"),
            (_dump(edges=[[0, 1, 2]]), "pair"),
            (_dump(r=0), "'r'"),
            (_dump(game="chess"), "'game'"),
            (_dump(labels=["a"]), "labels"),
            (_dump(variant={"bogus": True}), "variant"),
            (_dump(family={"params": {}}), "family"),
        ],
    )
    def test_malformed_documents_rejected(self, doc, excerpt):
        with pytest.raises(CorpusImportError, match=excerpt):
            problem_from_graph_dump(doc)

    def test_load_reports_which_document_failed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([_dump(), _dump(edges=[[0, 1], [1, 0]])]))
        with pytest.raises(CorpusImportError, match=r"\[1\]"):
            load_graph_dump(path)

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("definitely not json")
        with pytest.raises(CorpusImportError, match="not valid JSON"):
            load_graph_dump(path)


# --------------------------------------------------------------------------- #
# optional adapters (duck-typed protos, no onnx/torch needed)
# --------------------------------------------------------------------------- #


def _fake_onnx_graph():
    def op(name, op_type, inputs, outputs):
        return SimpleNamespace(name=name, op_type=op_type, input=inputs, output=outputs)

    return SimpleNamespace(
        name="toy",
        input=[SimpleNamespace(name="x")],
        initializer=[SimpleNamespace(name="w")],
        node=[
            op("mm", "MatMul", ["x", "w"], ["h"]),
            op("act", "Relu", ["h", ""], ["y"]),  # "" = omitted optional input
        ],
    )


class TestAdapters:
    def test_onnx_graph_import(self):
        problem = problem_from_onnx(_fake_onnx_graph(), game="prbp")
        labels = {problem.dag.label(v) for v in range(problem.dag.n)}
        assert labels == {"in:x", "in:w", "op:mm", "op:act"}
        assert problem.dag.m == 3
        assert problem.dag.family.name == "onnx"

    def test_onnx_unproduced_tensor_becomes_source(self):
        graph = _fake_onnx_graph()
        graph.node[0].input.append("side")  # no producer anywhere
        problem = problem_from_onnx(graph)
        assert "in:side" in {problem.dag.label(v) for v in range(problem.dag.n)}

    def test_onnx_cyclic_graph_rejected(self):
        graph = _fake_onnx_graph()
        graph.node[0].input.append("y")  # act's output feeds mm: a cycle
        with pytest.raises(CorpusImportError, match="not a valid DAG"):
            problem_from_onnx(graph)

    def test_onnx_empty_graph_rejected(self):
        with pytest.raises(CorpusImportError, match="no operator nodes"):
            problem_from_onnx(SimpleNamespace(name="empty", input=[], initializer=[], node=[]))

    def test_onnx_path_without_dependency_fails_clearly(self, tmp_path):
        try:
            import onnx  # noqa: F401

            pytest.skip("onnx is installed; the missing-dependency gate is moot")
        except ImportError:
            pass
        with pytest.raises(CorpusImportError, match="onnx"):
            problem_from_onnx(str(tmp_path / "model.onnx"))

    def test_torch_fx_import(self):
        def fx_node(name, op, inputs):
            return SimpleNamespace(name=name, op=op, all_input_nodes=inputs)

        x = fx_node("x", "placeholder", [])
        w = fx_node("w", "get_attr", [])
        mm = fx_node("mm", "call_function", [x, w])
        out = fx_node("output", "output", [mm])
        module = SimpleNamespace(graph=SimpleNamespace(nodes=[x, w, mm, out]))
        problem = problem_from_torch_fx(module, r=4, game="rbp")
        assert problem.n == 3  # the output collector is dropped
        assert problem.r == 4
        assert {problem.dag.label(v) for v in range(3)} == {"x", "w", "mm"}


# --------------------------------------------------------------------------- #
# filters
# --------------------------------------------------------------------------- #


class TestFilterParsing:
    def test_operators(self):
        assert parse_filter("n<=64") == Filter("n", "<=", 64)
        assert parse_filter("depth >= 5") == Filter("depth", ">=", 5)
        assert parse_filter("game=prbp") == Filter("game", "=", "prbp")
        assert parse_filter("family!=random") == Filter("family", "!=", "random")
        assert parse_filter("n==12") == Filter("n", "=", 12)

    @pytest.mark.parametrize(
        "text", ["bogus<=3", "n", "n<=many", "game<prbp", "<=3"]
    )
    def test_rejects(self, text):
        with pytest.raises(ValueError):
            parse_filter(text)


# --------------------------------------------------------------------------- #
# the store
# --------------------------------------------------------------------------- #


class TestCorpusStore:
    def test_add_and_dedup(self):
        store = CorpusStore()
        problem = _problem(seed=1)
        assert store.add(problem, source="t") is True
        assert store.add(problem, source="t") is False
        assert len(store) == 1
        inst = store.get(problem_digest(problem))
        assert inst.source == "t"
        assert problem_digest(inst.problem()) == inst.digest

    def test_best_cost_upsert_is_monotone(self):
        store = CorpusStore()
        problem = _problem(seed=1)
        digest = problem_digest(problem)
        store.add(problem, best_cost=20, best_solver="naive")
        assert store.update_best(digest, 25, "worse") is False
        assert store.update_best(digest, 20, "same") is False
        assert store.update_best(digest, 12, "greedy") is True
        inst = store.get(digest)
        assert (inst.best_cost, inst.best_solver) == (12, "greedy")
        # a duplicate add with a better cost merges through the same gate
        assert store.add(problem, best_cost=10, best_solver="exhaustive") is False
        assert store.get(digest).best_cost == 10
        assert store.add(problem, best_cost=99, best_solver="bogus") is False
        assert store.get(digest).best_cost == 10
        with pytest.raises(KeyError):
            store.update_best("no-such-digest", 1, "x")

    def test_lower_bound_only_tightens(self):
        store = CorpusStore()
        problem = _problem(seed=2)
        digest = problem_digest(problem)
        store.add(problem, lower_bound=4)
        assert store.set_lower_bound(digest, 3) is False
        assert store.set_lower_bound(digest, 7) is True
        assert store.get(digest).lower_bound == 7

    def test_query_must_should_must_not(self):
        store = CorpusStore()
        for seed in range(6):
            store.add(_problem(seed=seed, game="prbp" if seed % 2 else "rbp"))
        total = len(store)
        assert total == 6
        prbp = store.query(must=["game=prbp"])
        assert len(prbp) == 3 and all(i.features.game == "prbp" for i in prbp)
        assert len(store.query(must_not=["game=prbp"])) == total - 3
        # should: each filter alone matches a strict subset; min_should=1 unions
        a, b = prbp[0], prbp[1]
        union = store.query(should=[f"digest={a.digest}", f"digest={b.digest}"])
        assert {i.digest for i in union} == {a.digest, b.digest}
        both = store.query(
            should=[f"digest={a.digest}", f"digest={b.digest}"], min_should=2
        )
        assert both == []  # one row can never satisfy two distinct digests
        both = store.query(
            should=[f"digest={a.digest}", "game=prbp"], min_should=2
        )
        assert [i.digest for i in both] == [a.digest]

    def test_null_columns_never_match_and_never_exclude(self):
        store = CorpusStore()
        solved, unsolved = _problem(seed=1), _problem(seed=2)
        store.add(solved, best_cost=9, best_solver="greedy")
        store.add(unsolved)
        assert len(store.query(must=["best_cost<=100"])) == 1  # NULL fails must
        assert len(store.query(must_not=["best_cost<=100"])) == 1  # NULL survives must-not

    def test_sample_is_deterministic_and_a_subset(self):
        store = CorpusStore()
        for seed in range(8):
            store.add(_problem(seed=seed))
        s1 = [i.digest for i in store.sample(3, seed=5)]
        s2 = [i.digest for i in store.sample(3, seed=5)]
        assert s1 == s2 and len(s1) == 3
        assert [i.digest for i in store.sample(3, seed=6)] != s1  # seed matters
        everything = {i.digest for i in store.query()}
        assert set(s1) < everything
        assert len(store.sample(50, seed=0)) == len(store)  # k > matches returns all

    def test_export_import_preserves_digests_and_knowledge(self, tmp_path):
        store = CorpusStore()
        for seed in range(4):
            store.add(_problem(seed=seed), source="orig", best_cost=10 + seed, best_solver="g")
        path = tmp_path / "corpus.jsonl"
        assert store.export_jsonl(path) == 4
        other = CorpusStore()
        inserted, duplicates = other.import_jsonl(path)
        assert (inserted, duplicates) == (4, 0)
        for inst in store.query():
            twin = other.get(inst.digest)
            assert twin.best_cost == inst.best_cost
            assert twin.lower_bound == inst.lower_bound
            assert problem_digest(twin.problem()) == inst.digest
        # re-import is pure duplicates
        assert other.import_jsonl(path) == (0, 4)

    def test_import_jsonl_rejects_tampered_lines(self, tmp_path):
        store = CorpusStore()
        store.add(_problem(seed=1))
        path = tmp_path / "corpus.jsonl"
        store.export_jsonl(path)
        doc = json.loads(path.read_text().strip())
        doc["digest"] = "0" * 64  # claim a different identity
        path.write_text(json.dumps(doc) + "\n")
        with pytest.raises(CorpusImportError, match="digest"):
            CorpusStore().import_jsonl(path)
        path.write_text("not json\n")
        with pytest.raises(CorpusImportError, match="line 1"):
            CorpusStore().import_jsonl(path)

    def test_sqlite_persistence_and_from_file(self, tmp_path):
        db = tmp_path / "corpus.sqlite"
        with CorpusStore(db) as store:
            store.add(_problem(seed=1), best_cost=7, best_solver="greedy")
        reopened = CorpusStore.from_file(db)
        assert len(reopened) == 1
        jsonl = tmp_path / "corpus.jsonl"
        reopened.export_jsonl(jsonl)
        from_jsonl = CorpusStore.from_file(jsonl)
        assert [i.digest for i in from_jsonl.query()] == [i.digest for i in reopened.query()]

    def test_newer_schema_rejected(self, tmp_path):
        db = tmp_path / "future.sqlite"
        import sqlite3

        conn = sqlite3.connect(db)
        conn.execute("PRAGMA user_version = 999")
        conn.commit()
        conn.close()
        with pytest.raises(CorpusImportError, match="newer"):
            CorpusStore(db)

    def test_stats_shape(self):
        store = CorpusStore()
        store.add(_problem(seed=1), best_cost=5, best_solver="greedy", lower_bound=5)
        doc = store.stats()
        assert doc["instances"] == 1
        assert doc["by"]["family"] == {"random_layered": 1}
        assert doc["with_best_cost"] == 1
        assert doc["provably_optimal"] == 1


# --------------------------------------------------------------------------- #
# the fuzzer
# --------------------------------------------------------------------------- #


class TestFuzzer:
    def test_sweep_is_replayable(self):
        config = FuzzConfig(seed=11)
        a = [problem_digest(p) for _, p in sweep_instances(config, count=6)]
        b = [problem_digest(p) for _, p in sweep_instances(config, count=6)]
        assert a == b
        assert len(set(a)) == len(a)  # distinct candidates
        other = [problem_digest(p) for _, p in sweep_instances(FuzzConfig(seed=12), count=6)]
        assert other != a

    def test_sweep_respects_windows(self):
        config = FuzzConfig(seed=3, min_nodes=8, max_nodes=14)
        for _, problem in sweep_instances(config, count=10):
            assert 8 <= problem.n <= 14
            assert problem.r > problem.dag.max_in_degree
            if problem.variant.allow_sliding:
                assert problem.game == "rbp"

    def test_discriminates_rejects_agreeing_probes(self):
        from repro.core.dag import ComputationalDAG

        # greedy is optimal on a 3-node path, so it ties the exact solver
        path = ComputationalDAG(3, [(0, 1), (1, 2)], name="path3")
        problem = PebblingProblem(path, r=3, game="prbp")
        config = FuzzConfig(solvers=("greedy", "exhaustive"), wall_spread=None)
        verdict = discriminates(problem, config=config)
        assert verdict.kept is False
        assert "agree" in verdict.reason
        assert verdict.costs == {"greedy": 2, "exhaustive": 2}

    def test_build_corpus_hits_target_and_dedups(self):
        store = CorpusStore()
        config = FuzzConfig(seed=4, max_nodes=20, wall_spread=None)
        report = build_corpus(store, target=8, budget_s=30.0, config=config)
        assert report.hit_target and report.kept == 8
        assert len(store) == 8
        assert all(i.best_cost is not None for i in store.query())
        assert all(i.source == "fuzz:seed=4" for i in store.query())
        # rebuilding replays the same candidate stream: the 8 stored
        # instances come back as duplicates, and the sweep keeps going
        # past them until 8 *new* ones are kept — digests stay unique
        again = build_corpus(store, target=8, budget_s=30.0, config=config)
        assert again.duplicates == 8 and again.kept == 8
        assert len(store) == 16  # primary-key dedup, no double rows

    def test_unknown_variant_name_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            FuzzConfig().variant_of("bogus")


# --------------------------------------------------------------------------- #
# bench sampling
# --------------------------------------------------------------------------- #


@pytest.fixture()
def small_corpus(tmp_path):
    db = tmp_path / "bench.sqlite"
    with CorpusStore(db) as store:
        build_corpus(
            store,
            target=6,
            budget_s=30.0,
            config=FuzzConfig(seed=9, max_nodes=16, wall_spread=None),
        )
    return db


class TestBenchSource:
    def test_sampling_is_bit_identical(self, small_corpus):
        a = corpus_scenarios(small_corpus, sample=3, seed=2)
        b = corpus_scenarios(small_corpus, sample=3, seed=2)
        assert [s.name for s in a] == [s.name for s in b]
        for s1, s2 in zip(a, b):
            p1, p2 = s1.build_problem("quick"), s2.build_problem("quick")
            assert problem_digest(p1) == problem_digest(p2)
            assert s1.name == f"corpus-{problem_digest(p1)[:12]}"
            assert s1.group == "corpus"

    def test_tiers_identical_and_filters_apply(self, small_corpus):
        scenarios = corpus_scenarios(small_corpus, sample=4, seed=0, must=["game=prbp"])
        for scenario in scenarios:
            assert scenario.build_problem("quick").game == "prbp"
            assert problem_digest(scenario.build_problem("quick")) == problem_digest(
                scenario.build_problem("full")
            )

    def test_register_is_idempotent(self, small_corpus):
        names = [s.name for s in register_corpus_scenarios(small_corpus, sample=2, seed=1)]
        try:
            again = [s.name for s in register_corpus_scenarios(small_corpus, sample=2, seed=1)]
            assert names == again
            assert get_scenario(names[0]).group == "corpus"
        finally:
            for name in names:
                unregister_scenario(name)

    def test_jsonl_corpus_samples_identically(self, small_corpus, tmp_path):
        jsonl = tmp_path / "corpus.jsonl"
        CorpusStore.from_file(small_corpus).export_jsonl(jsonl)
        from_db = [s.name for s in corpus_scenarios(small_corpus, sample=3, seed=2)]
        from_jsonl = [s.name for s in corpus_scenarios(jsonl, sample=3, seed=2)]
        assert from_db == from_jsonl


# --------------------------------------------------------------------------- #
# the repro-corpus CLI
# --------------------------------------------------------------------------- #


class TestCorpusCLI:
    def test_build_stats_select_export(self, tmp_path, capsys):
        db = str(tmp_path / "cli.sqlite")
        assert (
            corpus_main(
                ["build", "--out", db, "--target", "5", "--budget-s", "30",
                 "--seed", "2", "--cost-only", "--max-nodes", "16"]
            )
            == 0
        )
        built = json.loads(capsys.readouterr().out)
        assert built["kept"] == 5 and built["hit_target"]

        assert corpus_main(["stats", db]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["instances"] == 5

        assert corpus_main(["select", db, "--must", "n<=64", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 5

        assert corpus_main(["select", db, "--sample", "2", "--seed", "1"]) == 0
        table = capsys.readouterr().out
        assert "2 instance(s)" in table

        out = str(tmp_path / "cli.jsonl")
        assert corpus_main(["export", db, "--out", out]) == 0
        capsys.readouterr()
        assert corpus_main(["stats", out]) == 0
        assert json.loads(capsys.readouterr().out)["instances"] == 5

    def test_import_graph_dump_and_jsonl(self, tmp_path, capsys):
        dump = tmp_path / "graphs.json"
        problems = [_problem(seed=1), _problem(seed=2, game="rbp")]
        save_graph_dump(problems, dump)
        db = str(tmp_path / "imported.sqlite")
        assert corpus_main(["import", "--out", db, str(dump)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["inserted"] == 2 and doc["duplicates"] == 0
        stored = CorpusStore.from_file(db)
        assert {i.digest for i in stored.query()} == {problem_digest(p) for p in problems}
        assert all(i.source == "import:graphs.json" for i in stored.query())
        # importing the corpus's own JSONL export round-trips as duplicates
        jsonl = tmp_path / "roundtrip.jsonl"
        stored.export_jsonl(jsonl)
        assert corpus_main(["import", "--out", db, str(jsonl)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["inserted"] == 0 and doc["duplicates"] == 2

    def test_malformed_input_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(_dump(edges=[[0, 1], [1, 0]])))
        db = str(tmp_path / "x.sqlite")
        assert corpus_main(["import", "--out", db, str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# bench CLI integration
# --------------------------------------------------------------------------- #


class TestBenchCorpusIntegration:
    def test_list_respects_group_filter(self, capsys):
        from repro.bench.__main__ import main as bench_main

        assert bench_main(["--list", "--group", "prop4.5"]) == 0
        out = capsys.readouterr().out
        assert "tree-prbp-critical" in out
        assert "fft-blocked-prbp" not in out

    def test_list_respects_scenario_filter(self, capsys):
        from repro.bench.__main__ import main as bench_main

        assert bench_main(["--list", "--scenario", "fft-blocked-prbp"]) == 0
        out = capsys.readouterr().out
        assert "fft-blocked-prbp" in out
        assert "tree-prbp-critical" not in out

    def test_corpus_run_restricts_to_corpus_group(self, small_corpus, capsys):
        from repro.bench.__main__ import main as bench_main

        argv = [
            "--corpus", str(small_corpus),
            "--corpus-sample", "2",
            "--corpus-seed", "3",
            "--no-cache",
        ]
        assert bench_main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("corpus-") >= 2
        assert "tree-prbp-critical" not in out

    def test_corpus_run_bit_identical_under_compare(self, small_corpus, tmp_path, capsys):
        from repro.bench.__main__ import main as bench_main

        baseline = str(tmp_path / "baseline.json")
        argv = [
            "--corpus", str(small_corpus),
            "--corpus-sample", "3",
            "--corpus-seed", "0",
        ]
        assert bench_main(argv + ["--output", baseline, "--no-cache"]) == 0
        capsys.readouterr()
        assert bench_main(argv + ["--compare", baseline, "--threshold", "1000"]) == 0
        assert "no differences against the baseline" in capsys.readouterr().out
