"""Hypothesis differential suite for the anytime refinement engine.

Three contracts, checked on random small DAGs:

* **legality** — every refined schedule replays legally and terminally
  through the game engine, under each of the four
  :class:`~repro.core.variants.GameVariant` bundles (one-shot,
  re-computation, sliding, no-deletion) the input was posed in;
* **cost monotonicity** — refinement never returns a schedule costlier than
  the one it started from (the engine's central promise — the auto
  portfolio's improvement pass relies on it);
* **quality** — on exhaustive-solvable instances (n ≤ 10), refinement
  started from the greedy baseline lands within a pinned factor of the true
  optimum.  The factor below was measured over a ~600-instance sweep of
  random DAGs that deliberately included dense adversarial shapes (high
  in-degree, tiny optimum): the worst observed case was refined 7 vs
  optimum 2 — local search cannot always escape the greedy basin on dense
  PRBP instances whose optima exploit radically different aggregation
  orders.  Pinning the envelope keeps future operator changes from
  silently degrading refinement quality without promising more than the
  engine delivers.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import assume, given, settings, strategies as st  # noqa: E402

from repro.api import PebblingProblem, solve  # noqa: E402
from repro.core.exceptions import SolverError  # noqa: E402
from repro.core.variants import NO_DELETE, ONE_SHOT, RECOMPUTE, SLIDING  # noqa: E402
from repro.dags.random_dags import random_dag  # noqa: E402
from repro.solvers.anytime import refine_schedule  # noqa: E402

SETTINGS = settings(max_examples=15, deadline=None)

#: Pinned quality bound: refined greedy cost <= PIN_FACTOR * optimum +
#: PIN_SLACK.  The factor tracks the measured worst case (3.5x, on a dense
#: instance with optimum 2); the additive slack absorbs the noise of
#: single-digit optima, where one extra I/O already moves the ratio by half.
PIN_FACTOR = 3.5
PIN_SLACK = 2

#: The four rule bundles of Appendix B; sliding is RBP-only by definition.
VARIANT_BUNDLES = [
    ("one-shot", ONE_SHOT, ("rbp", "prbp")),
    ("recompute", RECOMPUTE, ("rbp", "prbp")),
    ("sliding", SLIDING, ("rbp",)),
    ("no-delete", NO_DELETE, ("rbp", "prbp")),
]


@st.composite
def small_dags(draw, max_n=7):
    n = draw(st.integers(min_value=3, max_value=max_n))
    prob = draw(st.floats(min_value=0.15, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=50_000))
    return random_dag(n, edge_probability=prob, seed=seed)


def _input_schedule(dag, r, game, variant):
    """An input schedule valid under ``variant``.

    The exhaustive solver plays every bundle except PRBP re-computation
    (clear moves blow up its state space, so it is one-shot only there);
    that combination seeds from greedy instead — a one-shot-shaped schedule
    is legal under the strictly more permissive re-computation rules.
    """
    problem = PebblingProblem(dag, r, game=game, variant=variant)
    if game == "prbp" and variant.allow_recompute:
        return solve(problem, solver="greedy").schedule
    return solve(problem, solver="exhaustive", budget=200_000).schedule


class TestRefinedSchedulesReplayUnderEveryVariant:
    @pytest.mark.parametrize(
        "variant_name, variant, games", VARIANT_BUNDLES, ids=[b[0] for b in VARIANT_BUNDLES]
    )
    @SETTINGS
    @given(
        dag=small_dags(),
        extra=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_refined_replay_is_legal_and_no_costlier(
        self, dag, extra, seed, variant_name, variant, games
    ):
        for game in games:
            r = dag.max_in_degree + 1 + extra if game == "rbp" else 2 + extra
            try:
                schedule = _input_schedule(dag, r, game, variant)
            except SolverError:
                assume(False)  # instance infeasible / over budget for this bundle
            initial_cost = schedule.cost()
            refined, trajectory = refine_schedule(schedule, steps=32, seed=seed)
            replayed = refined.validate()  # raises on any illegal move
            assert replayed.is_terminal()
            assert replayed.io_cost == trajectory.refined_cost
            assert trajectory.refined_cost <= initial_cost == trajectory.initial_cost

    @SETTINGS
    @given(dag=small_dags(), seed=st.integers(min_value=0, max_value=1_000))
    def test_refined_greedy_schedules_replay(self, dag, seed):
        # the production path: greedy seeds (one-shot only) through refinement
        for game, r in (("prbp", 3), ("rbp", dag.max_in_degree + 2)):
            greedy = solve(PebblingProblem(dag, r, game=game), solver="greedy")
            refined, trajectory = refine_schedule(greedy.schedule, steps=48, seed=seed)
            replayed = refined.validate()
            assert replayed.is_terminal()
            assert replayed.io_cost <= greedy.cost
            assert trajectory.steps <= 48


class TestRefinementQuality:
    @SETTINGS
    @given(
        dag=small_dags(max_n=9),
        r=st.integers(min_value=2, max_value=4),
    )
    def test_refined_greedy_within_pinned_factor_of_optimum_prbp(self, dag, r):
        problem = PebblingProblem(dag, r, game="prbp")
        try:
            optimum = solve(problem, solver="exhaustive", budget=300_000)
        except SolverError:
            assume(False)  # search over budget on this instance
        greedy = solve(problem, solver="greedy")
        refined, trajectory = refine_schedule(greedy.schedule, steps=128, seed=0)
        assert trajectory.refined_cost >= optimum.cost  # sanity: bound is a bound
        assert trajectory.refined_cost <= PIN_FACTOR * optimum.cost + PIN_SLACK

    @SETTINGS
    @given(
        dag=small_dags(max_n=9),
        extra=st.integers(min_value=0, max_value=1),
    )
    def test_refined_greedy_within_pinned_factor_of_optimum_rbp(self, dag, extra):
        r = dag.max_in_degree + 1 + extra
        problem = PebblingProblem(dag, r, game="rbp")
        try:
            optimum = solve(problem, solver="exhaustive", budget=300_000)
        except SolverError:
            assume(False)
        greedy = solve(problem, solver="greedy")
        refined, trajectory = refine_schedule(greedy.schedule, steps=128, seed=0)
        assert trajectory.refined_cost >= optimum.cost
        assert trajectory.refined_cost <= PIN_FACTOR * optimum.cost + PIN_SLACK


class TestRefinementContracts:
    def test_zero_step_budget_returns_input_unchanged(self):
        dag = random_dag(6, edge_probability=0.4, seed=7)
        greedy = solve(PebblingProblem(dag, 3, game="prbp"), solver="greedy")
        refined, trajectory = refine_schedule(greedy.schedule, steps=0, seed=0)
        assert refined.moves == greedy.schedule.moves
        assert trajectory.steps == 0 and trajectory.accepted == 0
        assert trajectory.initial_cost == trajectory.refined_cost == greedy.cost

    def test_illegal_input_schedule_is_rejected(self):
        dag = random_dag(6, edge_probability=0.4, seed=7)
        greedy = solve(PebblingProblem(dag, 3, game="prbp"), solver="greedy")
        truncated = type(greedy.schedule)(
            dag, 3, list(greedy.schedule.moves[:-2]), variant=greedy.schedule.variant
        )
        with pytest.raises(SolverError, match="does not replay"):
            refine_schedule(truncated, steps=8)

    def test_wall_clock_budget_alone_bounds_the_search(self):
        dag = random_dag(7, edge_probability=0.4, seed=11)
        greedy = solve(PebblingProblem(dag, 3, game="prbp"), solver="greedy")
        refined, trajectory = refine_schedule(
            greedy.schedule, time_budget_s=0.05, seed=0
        )
        assert refined.validate().is_terminal()
        assert trajectory.refined_cost <= greedy.cost
        # generous ceiling: the clock is only checked between attempts
        assert trajectory.wall_time_s < 5.0

    def test_trajectory_improvement_accounting(self):
        dag = random_dag(8, edge_probability=0.35, seed=3)
        greedy = solve(PebblingProblem(dag, dag.max_in_degree + 1, game="rbp"), solver="greedy")
        refined, trajectory = refine_schedule(greedy.schedule, steps=128, seed=0)
        assert trajectory.improvement == trajectory.initial_cost - trajectory.refined_cost
        assert trajectory.improvement >= 0
        if trajectory.improvement > 0:
            assert trajectory.accepted > 0
            assert trajectory.time_to_best_s <= trajectory.wall_time_s
