#!/usr/bin/env python3
"""Walking through the NP-hardness machinery of Theorems 4.8 and 7.1.

The script (1) solves ``maxinset-vertex`` exactly on a small graph and runs
the Lemma A.1 self-reduction, (2) builds the Theorem 4.8 reduction DAG for
that graph and prints its structural parameters, and (3) shows how the
Theorem 7.1 auxiliary levels enlarge a tower construction while preserving
polynomial size.

Run with:  python examples/hardness_reduction.py
"""

from repro import PebblingProblem, solve
from repro.analysis.reporting import format_table
from repro.hardness.independent_set import (
    UndirectedGraph,
    independence_number,
    max_clique_via_vertex_oracle,
    maxinset_vertex,
)
from repro.hardness.levels import demo_theorem71_instance
from repro.hardness.reduction_thm48 import build_theorem48_instance


def main() -> None:
    # a 6-node graph: a triangle attached to a path
    graph = UndirectedGraph.from_edges(
        6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)]
    )
    print(f"G0: {graph.n} nodes, {len(graph.edges)} edges, alpha(G0) = {independence_number(graph)}")
    rows = [[v, maxinset_vertex(graph, v)] for v in range(graph.n)]
    print(format_table(["node", "in some maximum independent set?"], rows))
    clique = max_clique_via_vertex_oracle(graph.complement())
    print(f"Lemma A.1 self-reduction found a maximum clique of the complement: {sorted(clique)}")

    print()
    inst = build_theorem48_instance(graph, v0=3, chain_scale=0.05)
    p = inst.params
    print("Theorem 4.8 reduction instance (chain_scale = 0.05 for display):")
    print(
        format_table(
            ["parameter", "value"],
            [
                ["b (merged sources per pair)", p.b],
                ["r (cache size of the instance)", p.r],
                ["group size (r - 2)", p.group_size],
                ["chain length ell", p.ell],
                ["DAG nodes", inst.dag.n],
                ["DAG edges", inst.dag.m],
                ["discriminator sink w in-degree", inst.dag.in_degree(inst.w)],
            ],
        )
    )
    print(
        "OPT_PRBP < OPT_RBP holds on this DAG exactly when node v0 is in *no* maximum\n"
        "independent set of G0 — deciding it is therefore NP-hard (Theorem 4.8)."
    )

    # The reduction DAG carries no family tag and is far beyond exhaustive
    # reach, so the solve() portfolio falls back to the greedy upper bound —
    # exactly the behaviour hardness predicts: achievable, not provably optimal.
    result = solve(PebblingProblem(inst.dag, p.r, game="prbp"))
    print()
    print(
        f"solve() on the reduction DAG (n = {inst.dag.n}, r = {p.r}): cost {result.cost} "
        f"via {result.solver!r} — an upper bound ({'not ' if result.upper_bound else ''}optimal), "
        f"as expected for an NP-hard instance."
    )

    print()
    plain = demo_theorem71_instance(adapted=False)
    adapted = demo_theorem71_instance(adapted=True)
    print("Theorem 7.1 level gadgets (two-tower demo):")
    print(
        format_table(
            ["construction", "nodes", "edges"],
            [
                ["original RBP towers", plain.dag.n, plain.dag.m],
                ["PRBP-adapted (auxiliary levels)", adapted.dag.n, adapted.dag.m],
            ],
        )
    )
    print(
        "The auxiliary levels keep the construction polynomial while preventing partial\n"
        "computations from releasing pebbles early, so the n^(1-eps) inapproximability of\n"
        "the RBP construction carries over to PRBP."
    )


if __name__ == "__main__":
    main()
