#!/usr/bin/env python3
"""The corpus workbench end to end: fuzz, ingest, query, sample, bench.

Walks every layer of :mod:`repro.corpus` in one self-contained run:

1. **fuzz** a seeded corpus of solver-discriminating instances — the
   generator sweep keeps only DAGs on which greedy and naive disagree (or an
   exact probe beats both), so every stored instance carries information
   about *when* the cheap heuristics fail;
2. **ingest** an external graph twice — once from the dependency-free JSON
   graph-dump format, once from a duck-typed ONNX-style proto — and show
   both deduplicate against re-imports by content digest;
3. **query** the store with must/should/must-not feature filters and tighten
   a best-known cost monotonically;
4. **export** the corpus as a JSONL interchange file and reload it into a
   fresh in-memory store with identical digests;
5. **sample** the corpus into benchmark scenarios deterministically — the
   same seed always selects the same instances, the property the
   ``repro-bench --corpus ... --compare`` regression gate relies on.

Run with:  python examples/corpus_demo.py

The CLI equivalents:  repro-corpus build / import / stats / select / export,
then  repro-bench --corpus CORPUS.sqlite --corpus-sample 8.
"""

import json
import tempfile
from pathlib import Path
from types import SimpleNamespace

from repro.api import solve
from repro.corpus import (
    CorpusStore,
    FuzzConfig,
    build_corpus,
    corpus_scenarios,
    problem_from_graph_dump,
    problem_from_onnx,
)


def fuzz_section(store: CorpusStore) -> None:
    print("== 1. fuzz a discriminating corpus ==")
    config = FuzzConfig(seed=42, max_nodes=24, wall_spread=None)
    report = build_corpus(store, target=25, budget_s=30.0, config=config)
    print(
        f"generated {report.generated} candidates in {report.elapsed_s:.2f}s, "
        f"kept {report.kept} discriminating instances "
        f"(rejected {report.rejected} on which every solver agreed)\n"
    )


def ingest_section(store: CorpusStore) -> None:
    print("== 2. ingest external graphs ==")
    diamond = problem_from_graph_dump(
        {
            "format": "repro-graph-dump",
            "version": 1,
            "name": "diamond",
            "edges": [[0, 1], [0, 2], [1, 3], [2, 3]],
            "r": 3,
            "game": "prbp",
        }
    )
    print(f"graph dump  -> {diamond.dag.name}: n={diamond.n}, r={diamond.r}")
    store.add(diamond, source="import:demo")

    def op(name, op_type, inputs, outputs):
        return SimpleNamespace(name=name, op_type=op_type, input=inputs, output=outputs)

    proto = SimpleNamespace(
        name="two-layer-mlp",
        input=[SimpleNamespace(name="x")],
        initializer=[SimpleNamespace(name="w1"), SimpleNamespace(name="w2")],
        node=[
            op("mm1", "MatMul", ["x", "w1"], ["h"]),
            op("relu", "Relu", ["h"], ["a"]),
            op("mm2", "MatMul", ["a", "w2"], ["y"]),
        ],
    )
    mlp = problem_from_onnx(proto, r=3)
    print(f"onnx proto  -> {mlp.dag.name}: n={mlp.n}, m={mlp.dag.m}")
    store.add(mlp, source="import:demo")
    assert store.add(mlp, source="import:demo") is False
    print("re-importing the same model: deduplicated by content digest\n")


def query_section(store: CorpusStore) -> None:
    print("== 3. feature filters and monotone best-cost upserts ==")
    small_prbp = store.query(must=["n<=16", "game=prbp"], limit=3)
    print(f"must n<=16, game=prbp    -> {len(small_prbp)} shown of the matches")
    for inst in small_prbp:
        print(
            f"  {inst.digest[:12]}  {inst.features.family or '-':<16} "
            f"n={inst.features.n:<3} depth={inst.features.depth:<2} "
            f"best={inst.best_cost} ({inst.best_solver})"
        )
    hard = store.query(must_not=["best_cost<=5"])
    print(f"must-not best_cost<=5    -> {len(hard)} instances stay interesting")

    inst = small_prbp[0]
    result = solve(inst.problem(), solver="auto")
    improved = store.update_best(inst.digest, result.cost, result.solver or "auto")
    print(
        f"auto solve of {inst.digest[:12]} costs {result.cost}: "
        f"{'recorded (better than stored)' if improved else 'ignored (not better than stored)'}\n"
    )


def interchange_section(store: CorpusStore, path: Path) -> None:
    print("== 4. JSONL interchange ==")
    exported = store.export_jsonl(path)
    reloaded = CorpusStore.from_file(path)
    assert {i.digest for i in reloaded.query()} == {i.digest for i in store.query()}
    print(f"exported {exported} instances to {path.name}; reload is digest-identical")
    print(json.dumps(reloaded.stats()["by"]["family"], indent=2), "\n")


def bench_section(store: CorpusStore) -> None:
    print("== 5. deterministic bench sampling ==")
    first = corpus_scenarios(store, sample=4, seed=7, must=["n<=24"])
    second = corpus_scenarios(store, sample=4, seed=7, must=["n<=24"])
    assert [s.name for s in first] == [s.name for s in second]
    print("seed 7 samples (stable across runs and machines):")
    for scenario in first:
        problem = scenario.build_problem("quick")
        result = solve(problem, solver=scenario.solver)
        print(f"  {scenario.name}: {scenario.game} n={problem.n} -> cost {result.cost}")
    print("\nsame thing from the shell:")
    print("  repro-corpus build --out corpus.sqlite --target 500 --budget-s 60")
    print("  repro-bench --corpus corpus.sqlite --corpus-sample 8 --corpus-must 'n<=24'")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store = CorpusStore()  # in-memory; pass a path to persist
        fuzz_section(store)
        ingest_section(store)
        query_section(store)
        interchange_section(store, Path(tmp) / "corpus.jsonl")
        bench_section(store)


if __name__ == "__main__":
    main()
