#!/usr/bin/env python3
"""Quickstart: the Figure 1 example of the paper, end to end.

Poses the Figure 1 DAG as two :class:`repro.PebblingProblem` instances (one
per game) and hands both to the unified :func:`repro.solve` facade: the
auto-dispatch portfolio picks the exhaustive solver on this 10-node DAG and
returns validated :class:`repro.SolveResult` objects with the optimal costs,
the schedules and the best known lower bound.  The script then prints the
optimal PRBP move sequence and shows how any RBP strategy converts to a PRBP
strategy of the same cost (Proposition 4.1).

Run with:  python examples/quickstart.py
"""

from repro import PebblingProblem, convert_rbp_to_prbp, figure1_gadget, solve
from repro.analysis.reporting import format_table


def main() -> None:
    dag = figure1_gadget()
    r = 4
    print(f"Figure 1 DAG: {dag.n} nodes, {dag.m} edges, trivial cost {dag.trivial_cost()}")
    print(f"family tag: {dag.family}")

    rbp = solve(PebblingProblem(dag, r, game="rbp"))
    prbp = solve(PebblingProblem(dag, r, game="prbp"))
    print()
    print(
        format_table(
            ["model", "optimal I/O cost", "solver", "optimal?", "moves"],
            [
                ["RBP (Hong & Kung)", rbp.cost, rbp.solver, rbp.optimal, len(rbp.schedule)],
                ["PRBP (partial computations)", prbp.cost, prbp.solver, prbp.optimal, len(prbp.schedule)],
            ],
            title=f"Proposition 4.2 at r = {r}",
        )
    )

    print()
    print("Optimal PRBP schedule found by solve():")
    for move in prbp.schedule.moves:
        kind = "I/O " if move.is_io else "    "
        if move.edge is not None:
            desc = f"partial compute {dag.label(move.edge[0])} -> {dag.label(move.edge[1])}"
        else:
            desc = f"{move.kind.value} {dag.label(move.node)}"
        print(f"  {kind}{desc}")

    converted = convert_rbp_to_prbp(rbp.schedule)
    print()
    print(
        "Proposition 4.1: the optimal RBP schedule converts to a valid PRBP schedule "
        f"of the same cost ({converted.cost()} == {rbp.cost})."
    )


if __name__ == "__main__":
    main()
