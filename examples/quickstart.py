#!/usr/bin/env python3
"""Quickstart: the Figure 1 example of the paper, end to end.

Builds the Figure 1 DAG, computes the optimal I/O cost in both the classic
red-blue pebble game (RBP) and the partial-computing extension (PRBP) with a
fast memory of r = 4, prints the optimal PRBP move sequence, and shows how
any RBP strategy converts to a PRBP strategy of the same cost
(Proposition 4.1).

Run with:  python examples/quickstart.py
"""

from repro import convert_rbp_to_prbp, figure1_gadget
from repro.analysis.reporting import format_table
from repro.solvers.exhaustive import optimal_prbp_schedule, optimal_rbp_schedule
from repro.solvers.structured import figure1_prbp_schedule


def main() -> None:
    dag = figure1_gadget()
    r = 4
    print(f"Figure 1 DAG: {dag.n} nodes, {dag.m} edges, trivial cost {dag.trivial_cost()}")

    rbp = optimal_rbp_schedule(dag, r)
    prbp = optimal_prbp_schedule(dag, r)
    print()
    print(
        format_table(
            ["model", "optimal I/O cost", "moves in schedule"],
            [
                ["RBP (Hong & Kung)", rbp.cost(), len(rbp)],
                ["PRBP (partial computations)", prbp.cost(), len(prbp)],
            ],
            title=f"Proposition 4.2 at r = {r}",
        )
    )

    print()
    print("Optimal PRBP schedule (the Appendix A.1 strategy finds the same cost):")
    for move in figure1_prbp_schedule().moves:
        kind = "I/O " if move.is_io else "    "
        if move.edge is not None:
            desc = f"partial compute {dag.label(move.edge[0])} -> {dag.label(move.edge[1])}"
        else:
            desc = f"{move.kind.value} {dag.label(move.node)}"
        print(f"  {kind}{desc}")

    converted = convert_rbp_to_prbp(rbp)
    print()
    print(
        "Proposition 4.1: the optimal RBP schedule converts to a valid PRBP schedule "
        f"of the same cost ({converted.cost()} == {rbp.cost()})."
    )


if __name__ == "__main__":
    main()
