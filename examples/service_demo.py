#!/usr/bin/env python3
"""The solve service end to end: daemon, clients, streamed anytime progress.

Starts a :class:`repro.service.SolveService` in-process on an ephemeral
port, then talks to it exactly the way an external client would — over TCP,
through :class:`repro.service.ServiceClient`:

1. a **blocking solve** of a chained-gadget RBP instance, repeated once to
   show the second request answered from the shared result cache;
2. a **streamed anytime solve** of the same instance under a refinement
   budget — the server pushes every improving schedule cost the moment the
   refiner accepts it, and the script prints the trajectory as it arrives;
3. a **fire-and-forget** submission polled to completion by job id;
4. the server's own counters (admissions, cache answers, streamed events),
   followed by a graceful draining shutdown.

Run with:  python examples/service_demo.py

Against a long-running daemon the same client calls work unchanged — start
one with ``python -m repro.service serve --port 7421`` (or ``repro-serve``)
and point :meth:`ServiceClient.connect` at it.
"""

import asyncio

from repro import PebblingProblem, chained_gadget_dag
from repro.service import ProgressEvent, ServiceClient, ServiceConfig, SolveService


def make_problem() -> PebblingProblem:
    """Chained RBP: greedy seeds far from optimal, so refinement has room."""
    return PebblingProblem(chained_gadget_dag(16), r=4, game="rbp")


async def main() -> None:
    service = SolveService(ServiceConfig(port=0, workers=2))
    await service.start()
    host, port = service.address
    print(f"service listening on {host}:{port}\n")

    problem = make_problem()
    async with await ServiceClient.connect(host, port) as client:
        # 1. blocking solve, then the cache answering the repeat
        result, meta = await client.solve_detailed(problem)
        print(f"blocking solve:  cost {result.cost}  (solver: {result.solver})")
        result, meta = await client.solve_detailed(problem)
        print(f"repeat request:  cost {result.cost}  cache_hit={meta['cache_hit']}\n")

        # 2. streamed anytime progress: the refiner's improving schedules
        #    arrive as events while the solve is still running
        print("streamed anytime solve (cost, time the refiner found it):")

        def show(event: ProgressEvent) -> None:
            print(f"   cost {event.cost:4d}  at {event.elapsed_s * 1000:7.2f} ms")

        final, events = await client.solve_stream(
            problem, on_progress=show, refine_steps=192, seed=0
        )
        improvements = sum(1 for a, b in zip(events, events[1:]) if b.cost < a.cost)
        print(
            f"   -> {len(events)} events, {improvements} strict improvements, "
            f"final cost {final.cost}\n"
        )

        # 3. fire-and-forget: a job id now, the result when we ask for it
        bigger = PebblingProblem(chained_gadget_dag(24), r=4, game="rbp")
        job_id = await client.submit(bigger)
        print(f"submitted {job_id}; polling...")
        state, _ = await client.poll(job_id)
        print(f"   state while queued/running: {state}")
        result = await client.wait(job_id, bigger)
        print(f"   finished: cost {result.cost}\n")

        # 4. the server's own view of all of the above
        stats = await client.stats()
        jobs = stats["jobs"]
        print(
            f"server counters: {jobs['admitted']} admitted, "
            f"{jobs['cache_answers']} cache answers, "
            f"{stats['streamed_events']} streamed events, "
            f"pool mode {stats['pool']['mode']}"
        )

    await service.shutdown(drain=True)
    print("service drained and stopped")


if __name__ == "__main__":
    asyncio.run(main())
