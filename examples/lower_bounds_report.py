#!/usr/bin/env python3
"""Lower bounds for FFT, matrix multiplication and attention in PRBP (Section 6).

For each of the three application DAGs of Section 6.3 the script reports the
trivial cost, the PRBP lower bound obtained from the adapted partition
concepts (Theorems 6.9–6.11 with the explicit constants of the proofs), and
the measured I/O of an actual validated strategy (blocked FFT, tiled matmul,
flash-attention-style tiling).  The strategies always dominate the bounds and
show the predicted scaling in the cache size r.

Run with:  python examples/lower_bounds_report.py
"""

from repro.analysis.reporting import format_table
from repro.bounds.analytic import (
    attention_prbp_lower_bound,
    fft_prbp_lower_bound,
    matmul_prbp_lower_bound,
)
from repro.dags import attention_instance, fft_instance, matmul_instance
from repro.solvers.structured import (
    attention_flash_prbp_schedule,
    fft_blocked_prbp_schedule,
    matmul_tiled_prbp_schedule,
)


def fft_report() -> None:
    rows = []
    for m, r in [(16, 4), (32, 4), (64, 4), (64, 8), (64, 16)]:
        inst = fft_instance(m)
        cost = fft_blocked_prbp_schedule(inst, r=r).cost()
        rows.append([m, r, inst.dag.trivial_cost(), fft_prbp_lower_bound(m, r), cost])
    print(
        format_table(
            ["m", "r", "trivial", "Thm 6.9 lower bound", "blocked strategy"],
            rows,
            title="FFT (Theorem 6.9): OPT_PRBP = Ω(m·log m / log r)",
        )
    )


def matmul_report() -> None:
    rows = []
    for dims, r in [((6, 6, 6), 8), ((6, 6, 6), 18), ((8, 8, 8), 8), ((8, 8, 8), 32)]:
        inst = matmul_instance(*dims)
        cost = matmul_tiled_prbp_schedule(inst, r=r).cost()
        rows.append(
            ["x".join(map(str, dims)), r, inst.dag.trivial_cost(), matmul_prbp_lower_bound(*dims, r), cost]
        )
    print(
        format_table(
            ["dims", "r", "trivial", "Thm 6.10 lower bound", "tiled strategy"],
            rows,
            title="Matrix multiplication (Theorem 6.10): OPT_PRBP = Ω(m1·m2·m3/√r)",
        )
    )


def attention_report() -> None:
    rows = []
    for m, d, r in [(12, 2, 8), (12, 2, 20), (16, 4, 24), (16, 4, 48)]:
        inst = attention_instance(m, d)
        cost = attention_flash_prbp_schedule(inst, r=r).cost()
        regime = "small cache" if r <= d * d else "large cache"
        rows.append([m, d, r, regime, inst.dag.trivial_cost(), attention_prbp_lower_bound(m, d, r), cost])
    print(
        format_table(
            ["m", "d", "r", "regime", "trivial", "Thm 6.11 lower bound", "flash-style strategy"],
            rows,
            title="Attention (Theorem 6.11): OPT_PRBP = Ω(min(m²d/√r, m²d²/r))",
        )
    )


def main() -> None:
    fft_report()
    print()
    matmul_report()
    print()
    attention_report()
    print()
    print(
        "The PRBP lower bounds match the known RBP bounds for these DAGs: partial\n"
        "computations do not improve the asymptotic I/O complexity of FFT, matmul or\n"
        "attention, exactly as Section 6.3 of the paper proves."
    )


if __name__ == "__main__":
    main()
