#!/usr/bin/env python3
"""Lower bounds for FFT, matrix multiplication and attention in PRBP (Section 6).

For each of the three application DAGs of Section 6.3 the script poses a grid
of :class:`repro.PebblingProblem` instances and dispatches them through the
unified ``solve()`` facade, naming the registered solver for each family
(blocked FFT, tiled matmul, flash-attention-style tiling) so the tables
measure exactly the paper's strategies.  Each :class:`repro.SolveResult`
already carries the best Section 6 lower bound, so the tables come straight
out of the results.

Run with:  python examples/lower_bounds_report.py
"""

from repro import PebblingProblem, solve
from repro.analysis.reporting import format_table
from repro.dags import attention_dag, fft_dag, matmul_dag


def fft_report() -> None:
    rows = []
    for m, r in [(16, 4), (32, 4), (64, 4), (64, 8), (64, 16)]:
        res = solve(PebblingProblem(fft_dag(m), r, game="prbp"), solver="fft-blocked")
        assert res.lower_bound_source in ("thm6.9", "trivial")
        rows.append([m, r, res.problem.trivial_cost, res.lower_bound, res.cost])
    print(
        format_table(
            ["m", "r", "trivial", "Thm 6.9 lower bound", "blocked strategy"],
            rows,
            title="FFT (Theorem 6.9): OPT_PRBP = Ω(m·log m / log r)",
        )
    )


def matmul_report() -> None:
    rows = []
    for dims, r in [((6, 6, 6), 8), ((6, 6, 6), 18), ((8, 8, 8), 8), ((8, 8, 8), 32)]:
        res = solve(PebblingProblem(matmul_dag(*dims), r, game="prbp"), solver="matmul-tiled")
        rows.append(["x".join(map(str, dims)), r, res.problem.trivial_cost, res.lower_bound, res.cost])
    print(
        format_table(
            ["dims", "r", "trivial", "Thm 6.10 lower bound", "tiled strategy"],
            rows,
            title="Matrix multiplication (Theorem 6.10): OPT_PRBP = Ω(m1·m2·m3/√r)",
        )
    )


def attention_report() -> None:
    rows = []
    for m, d, r in [(12, 2, 8), (12, 2, 20), (16, 4, 24), (16, 4, 48)]:
        res = solve(PebblingProblem(attention_dag(m, d), r, game="prbp"), solver="attention-flash")
        regime = "small cache" if r <= d * d else "large cache"
        rows.append([m, d, r, regime, res.problem.trivial_cost, res.lower_bound, res.cost])
    print(
        format_table(
            ["m", "d", "r", "regime", "trivial", "Thm 6.11 lower bound", "flash-style strategy"],
            rows,
            title="Attention (Theorem 6.11): OPT_PRBP = Ω(min(m²d/√r, m²d²/r))",
        )
    )


def main() -> None:
    fft_report()
    print()
    matmul_report()
    print()
    attention_report()
    print()
    print(
        "The PRBP lower bounds match the known RBP bounds for these DAGs: partial\n"
        "computations do not improve the asymptotic I/O complexity of FFT, matmul or\n"
        "attention, exactly as Section 6.3 of the paper proves."
    )


if __name__ == "__main__":
    main()
