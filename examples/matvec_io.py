#!/usr/bin/env python3
"""Matrix–vector multiplication: how partial computations remove all non-trivial I/O.

Reproduces Proposition 4.3: for A·x with an m×m matrix and a cache of
r = m + 3, the PRBP column-streaming strategy reads every input exactly once
and writes every output exactly once (cost m² + 2m), while any RBP strategy
must pay at least m² + 3m − 1.  A greedy RBP pebbling and a naive
spill-everything baseline are shown for scale.

Run with:  python examples/matvec_io.py [max_m]
"""

import sys

from repro.analysis.reporting import format_table
from repro.bounds.analytic import matvec_prbp_optimal_cost, matvec_rbp_lower_bound
from repro.dags import matvec_instance
from repro.solvers.baselines import naive_prbp_schedule
from repro.solvers.greedy import greedy_rbp_schedule
from repro.solvers.structured import matvec_prbp_schedule


def main(max_m: int = 8) -> None:
    rows = []
    for m in range(3, max_m + 1):
        inst = matvec_instance(m)
        r = m + 3
        prbp = matvec_prbp_schedule(inst, r=r)
        rbp_greedy = greedy_rbp_schedule(inst.dag, r)
        naive = naive_prbp_schedule(inst.dag)
        rows.append(
            [
                m,
                r,
                inst.dag.trivial_cost(),
                prbp.cost(),
                matvec_rbp_lower_bound(m),
                rbp_greedy.cost(),
                naive.cost(),
            ]
        )
        assert prbp.cost() == matvec_prbp_optimal_cost(m)
    print(
        format_table(
            [
                "m",
                "r",
                "trivial",
                "PRBP strategy",
                "RBP lower bound",
                "RBP greedy",
                "naive (spill all)",
            ],
            rows,
            title="Proposition 4.3 — A·x with an m×m matrix, r = m + 3",
        )
    )
    print()
    print(
        "The PRBP strategy always hits the trivial cost: every matrix entry is read once,\n"
        "every output written once, because the m partially aggregated outputs stay in cache.\n"
        "RBP cannot do this — it must gather all m products of a row simultaneously."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
