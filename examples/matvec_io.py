#!/usr/bin/env python3
"""Matrix–vector multiplication: how partial computations remove all non-trivial I/O.

Reproduces Proposition 4.3 through the unified facade: for A·x with an m×m
matrix and a cache of r = m + 3, ``solve()`` auto-dispatches the PRBP problem
to the column-streaming strategy (the DAG carries a ``matvec`` family tag)
and reads every input exactly once (cost m² + 2m), while any RBP strategy
must pay at least m² + 3m − 1.  The RBP side and a naive spill-everything
baseline are solved through the same facade for scale.

Run with:  python examples/matvec_io.py [max_m]
"""

import sys

from repro import PebblingProblem, solve
from repro.analysis.reporting import format_table
from repro.bounds.analytic import matvec_prbp_optimal_cost, matvec_rbp_lower_bound
from repro.dags import matvec_dag


def main(max_m: int = 8) -> None:
    rows = []
    for m in range(3, max_m + 1):
        dag = matvec_dag(m)
        r = m + 3
        prbp = solve(PebblingProblem(dag, r, game="prbp"), exact_node_limit=0)
        rbp = solve(PebblingProblem(dag, r, game="rbp"), exact_node_limit=0)
        naive = solve(PebblingProblem(dag, r, game="prbp"), solver="naive")
        assert prbp.solver == "matvec-streaming"
        rows.append(
            [
                m,
                r,
                dag.trivial_cost(),
                prbp.cost,
                matvec_rbp_lower_bound(m),
                rbp.cost,
                naive.cost,
            ]
        )
        assert prbp.cost == matvec_prbp_optimal_cost(m)
        assert prbp.optimal  # trivial cost reached => lower bound met
    print(
        format_table(
            [
                "m",
                "r",
                "trivial",
                "PRBP strategy",
                "RBP lower bound",
                "RBP greedy",
                "naive (spill all)",
            ],
            rows,
            title="Proposition 4.3 — A·x with an m×m matrix, r = m + 3",
        )
    )
    print()
    print(
        "The PRBP strategy always hits the trivial cost: every matrix entry is read once,\n"
        "every output written once, because the m partially aggregated outputs stay in cache.\n"
        "RBP cannot do this — it must gather all m products of a row simultaneously."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
