#!/usr/bin/env python3
"""Reduction trees: the RBP/PRBP gap as a function of depth and arity.

Reproduces Proposition 4.5 and Appendix A.2: at the critical cache size
r = k + 1, the optimal RBP cost of a k-ary reduction tree is
k^d + 2·k^(d-1) - 1 while PRBP only pays k^d + 2·k^(d-k) - 1 — partial
computations make the bottom k + 1 levels free.  The strategies are replayed
through the engines, and for small trees the exhaustive solver confirms they
are optimal.

Run with:  python examples/tree_scaling.py
"""

from repro.analysis.reporting import format_table
from repro.dags import kary_tree_instance
from repro.dags.trees import optimal_prbp_tree_cost, optimal_rbp_tree_cost
from repro.solvers.exhaustive import optimal_prbp_cost, optimal_rbp_cost
from repro.solvers.structured import tree_prbp_schedule, tree_rbp_schedule


def main() -> None:
    rows = []
    for k, depth in [(2, 3), (2, 4), (2, 5), (2, 6), (3, 3), (3, 4), (4, 4)]:
        inst = kary_tree_instance(k, depth)
        rbp = tree_rbp_schedule(inst).cost()
        prbp = tree_prbp_schedule(inst).cost()
        rows.append(
            [
                k,
                depth,
                inst.dag.n,
                rbp,
                optimal_rbp_tree_cost(k, depth),
                prbp,
                optimal_prbp_tree_cost(k, depth),
                f"{rbp / prbp:.2f}x",
            ]
        )
    print(
        format_table(
            ["k", "depth", "nodes", "RBP", "RBP formula", "PRBP", "PRBP formula", "gap"],
            rows,
            title="Proposition 4.5 / Appendix A.2 — k-ary reduction trees at r = k + 1",
        )
    )

    # exhaustive confirmation on the smallest interesting instance
    small = kary_tree_instance(2, 3)
    print()
    print(
        "Exhaustive check (binary tree, depth 3, r = 3): "
        f"OPT_RBP = {optimal_rbp_cost(small.dag, 3)}, OPT_PRBP = {optimal_prbp_cost(small.dag, 3)}"
    )


if __name__ == "__main__":
    main()
