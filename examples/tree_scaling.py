#!/usr/bin/env python3
"""Reduction trees: the RBP/PRBP gap as a function of depth and arity.

Reproduces Proposition 4.5 and Appendix A.2 through the unified facade: every
instance is posed as a :class:`repro.PebblingProblem` at the critical cache
size ``r = k + 1`` and dispatched with ``solve()``.  Because the tree DAGs
carry a ``kary_tree`` family tag, the portfolio selects the Appendix A.2
structured strategies; the closed-form costs double as lower bounds at the
critical capacity, so every result comes back provably ``optimal`` even
though no exhaustive search ran.

Run with:  python examples/tree_scaling.py
"""

from repro import PebblingProblem, solve
from repro.analysis.reporting import format_table
from repro.dags import kary_tree_instance
from repro.dags.trees import optimal_prbp_tree_cost, optimal_rbp_tree_cost


def main() -> None:
    rows = []
    for k, depth in [(2, 3), (2, 4), (2, 5), (2, 6), (3, 3), (3, 4), (4, 4)]:
        dag = kary_tree_instance(k, depth).dag
        rbp = solve(PebblingProblem(dag, k + 1, game="rbp"), exact_node_limit=0)
        prbp = solve(PebblingProblem(dag, k + 1, game="prbp"), exact_node_limit=0)
        assert rbp.solver == prbp.solver == "tree"
        rows.append(
            [
                k,
                depth,
                dag.n,
                rbp.cost,
                optimal_rbp_tree_cost(k, depth),
                prbp.cost,
                optimal_prbp_tree_cost(k, depth),
                f"{rbp.cost / prbp.cost:.2f}x",
                "yes" if (rbp.optimal and prbp.optimal) else "no",
            ]
        )
    print(
        format_table(
            ["k", "depth", "nodes", "RBP", "RBP formula", "PRBP", "PRBP formula", "gap", "optimal"],
            rows,
            title="Proposition 4.5 / Appendix A.2 — k-ary reduction trees at r = k + 1",
        )
    )

    # exhaustive confirmation on the smallest interesting instance (15 nodes,
    # so the exact step needs a slightly raised node limit)
    small = kary_tree_instance(2, 3).dag
    rbp = solve(PebblingProblem(small, 3, game="rbp"), exact_node_limit=15)
    prbp = solve(PebblingProblem(small, 3, game="prbp"), exact_node_limit=15)
    print()
    print(
        f"Exhaustive check (binary tree, depth 3, r = 3): OPT_RBP = {rbp.cost} "
        f"(solver={rbp.solver}), OPT_PRBP = {prbp.cost} (solver={prbp.solver})"
    )


if __name__ == "__main__":
    main()
