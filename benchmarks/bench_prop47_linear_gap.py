"""E06 — Proposition 4.7: a linear-factor gap between RBP and PRBP at r = 4.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``prop4.7``): the chained Figure-1 gadget has OPT_PRBP = 2 regardless
of its length, while OPT_RBP grows linearly (at least one I/O per copy).
"""

from _helpers import make_group_bench
from repro.bench import run_scenario

GROUP = "prop4.7"


bench_scenario = make_group_bench(GROUP)


def bench_prop47_linear_vs_constant(benchmark):
    """PRBP is a provably optimal constant; RBP's lower bound alone is linear."""

    def run():
        return (
            run_scenario("chained-prbp-constant", tier="quick"),
            run_scenario("chained-rbp-greedy", tier="quick"),
        )

    prbp, rbp = benchmark(run)
    assert prbp.io_cost == 2 and prbp.optimal
    assert rbp.lower_bound_source == "prop4.7"
    assert rbp.lower_bound > prbp.io_cost  # already linear in the copy count
    assert rbp.io_cost >= rbp.lower_bound
