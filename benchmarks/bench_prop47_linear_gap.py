"""E06 — Proposition 4.7: a linear-factor gap between RBP and PRBP at r = 4.

The chained Figure-1 gadget has OPT_PRBP = 2 regardless of its length, while
OPT_RBP grows linearly (at least one I/O per gadget copy).  Everything runs
through the unified ``repro.api`` facade: the ``chained_gadget`` family tag
routes the PRBP side to the Proposition 4.7 strategy (whose result comes back
provably optimal — its cost meets the lower bound), the RBP side falls back
to greedy, and the sweep table is produced by
:func:`repro.analysis.run_solver_sweep`.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.sweep import run_solver_sweep
from repro.api import PebblingProblem, solve
from repro.bounds.analytic import chained_gadget_prbp_optimal_cost, chained_gadget_rbp_lower_bound
from repro.dags import chained_gadget_dag

COPIES = [2, 8, 32, 128]


@pytest.mark.parametrize("copies", COPIES)
def bench_chained_prbp_constant_cost(benchmark, copies):
    """PRBP cost stays at 2 for any number of copies, and is provably optimal."""
    problem = PebblingProblem(chained_gadget_dag(copies), r=4, game="prbp")
    result = benchmark(lambda: solve(problem, exact_node_limit=0))
    assert result.solver == "chained-gadget"
    assert result.cost == chained_gadget_prbp_optimal_cost() == 2
    assert result.optimal


@pytest.mark.parametrize("copies", [2, 8, 32])
def bench_chained_rbp_greedy(benchmark, copies):
    """Greedy RBP upper bound grows at least linearly (>= the analytic lower bound)."""
    problem = PebblingProblem(chained_gadget_dag(copies), r=4, game="rbp")
    result = benchmark(lambda: solve(problem, exact_node_limit=0))
    assert result.solver == "greedy"
    assert result.cost >= chained_gadget_rbp_lower_bound(copies)
    assert result.lower_bound == chained_gadget_rbp_lower_bound(copies)


def bench_chained_single_copy_exact(benchmark):
    """Exhaustive check of the per-gadget claim: one copy already forces RBP cost >= 3."""
    dag = chained_gadget_dag(1)
    problem = PebblingProblem(dag, r=4, game="rbp")
    result = benchmark(lambda: solve(problem, solver="exhaustive"))
    assert result.cost >= 3 and result.optimal


def bench_chained_sweep_table(benchmark):
    """The linear-vs-constant table behind Proposition 4.7, as a solver sweep."""

    def build():
        return run_solver_sweep(
            ["copies"],
            [(c,) for c in COPIES],
            lambda copies: PebblingProblem(chained_gadget_dag(copies), r=4, game="prbp"),
            exact_node_limit=0,
        )

    sweep = build()
    benchmark(build)
    print()
    print(sweep.as_table(title="Proposition 4.7 — chained gadgets at r = 4 (Θ(n) vs O(1))"))
    assert sweep.column("cost") == [2] * len(COPIES)
    assert all(sweep.column("optimal"))
    assert set(sweep.column("solver")) == {"chained-gadget"}
    # the RBP side of the same sweep grows linearly
    rbp_rows = []
    for copies in COPIES:
        res = solve(
            PebblingProblem(chained_gadget_dag(copies), r=4, game="rbp"), exact_node_limit=0
        )
        rbp_rows.append([copies, res.cost, res.lower_bound])
        assert res.cost >= chained_gadget_rbp_lower_bound(copies)
    print(format_table(["copies", "RBP greedy", "RBP lower bound"], rbp_rows))
