"""E06 — Proposition 4.7: a linear-factor gap between RBP and PRBP at r = 4.

The chained Figure-1 gadget has OPT_PRBP = 2 regardless of its length, while
OPT_RBP grows linearly (at least one I/O per gadget copy).  The benchmark
validates the constant-cost PRBP strategy at increasing sizes and compares it
with the analytic RBP lower bound and a greedy RBP upper bound.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.bounds.analytic import chained_gadget_prbp_optimal_cost, chained_gadget_rbp_lower_bound
from repro.dags import chained_gadget_instance
from repro.solvers.exhaustive import optimal_rbp_cost
from repro.solvers.greedy import greedy_rbp_schedule
from repro.solvers.structured import chained_gadget_prbp_schedule

COPIES = [2, 8, 32, 128]


@pytest.mark.parametrize("copies", COPIES)
def bench_chained_prbp_constant_cost(benchmark, copies):
    """PRBP cost stays at 2 for any number of copies."""
    inst = chained_gadget_instance(copies)
    cost = benchmark(lambda: chained_gadget_prbp_schedule(inst).cost())
    assert cost == chained_gadget_prbp_optimal_cost() == 2


@pytest.mark.parametrize("copies", [2, 8, 32])
def bench_chained_rbp_greedy(benchmark, copies):
    """Greedy RBP upper bound grows at least linearly (>= the analytic lower bound)."""
    inst = chained_gadget_instance(copies)
    cost = benchmark(lambda: greedy_rbp_schedule(inst.dag, 4).cost())
    assert cost >= chained_gadget_rbp_lower_bound(copies)


def bench_chained_single_copy_exact(benchmark):
    """Exhaustive check of the per-gadget claim: one copy already forces RBP cost >= 3."""
    inst = chained_gadget_instance(1)
    cost = benchmark(lambda: optimal_rbp_cost(inst.dag, 4))
    assert cost >= 3


def bench_chained_table(benchmark):
    """The linear-vs-constant table behind Proposition 4.7."""

    def build():
        rows = []
        for copies in COPIES:
            inst = chained_gadget_instance(copies)
            prbp = chained_gadget_prbp_schedule(inst).cost()
            rbp_lb = chained_gadget_rbp_lower_bound(copies)
            rbp_greedy = greedy_rbp_schedule(inst.dag, 4).cost()
            rows.append([copies, inst.dag.n, prbp, rbp_lb, rbp_greedy])
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["copies", "n", "PRBP strategy", "RBP lower bound", "RBP greedy"],
            rows,
            title="Proposition 4.7 — chained gadgets at r = 4 (Θ(n) vs O(1))",
        )
    )
    for copies, _, prbp, rbp_lb, rbp_greedy in rows:
        assert prbp == 2
        assert rbp_lb >= copies
        assert rbp_greedy >= rbp_lb
