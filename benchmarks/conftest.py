"""Shared pytest plumbing for the ``benchmarks/`` suite.

The files here use ``bench_*`` naming (enabled via ``python_files`` /
``python_functions`` in ``pyproject.toml``), parametrize over the
:mod:`repro.bench` scenario registry, and measure through the
``pytest-benchmark`` fixture when the plugin is installed.  Without the
plugin the fixture below degrades to a single un-timed call, so
``python -m pytest benchmarks/`` stays runnable in minimal environments.
"""

import pytest

try:
    import pytest_benchmark  # noqa: F401

    HAVE_PYTEST_BENCHMARK = True
except ImportError:  # pragma: no cover — CI installs the plugin
    HAVE_PYTEST_BENCHMARK = False


if not HAVE_PYTEST_BENCHMARK:

    @pytest.fixture
    def benchmark():
        """Single-call stand-in for the pytest-benchmark fixture."""

        def _benchmark(fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def _pedantic(fn, args=(), kwargs=None, rounds=1, iterations=1, warmup_rounds=0):
            result = None
            for _ in range(max(1, rounds)):
                result = fn(*args, **(kwargs or {}))
            return result

        _benchmark.pedantic = _pedantic
        return _benchmark
