"""E01 — Figure 1 / Proposition 4.2: OPT_RBP = 3 vs OPT_PRBP = 2 at r = 4.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry:
the workload definitions live in :mod:`repro.bench.scenarios` under the
``prop4.2`` group (exhaustive optima plus the Appendix A.1 hand-written
strategies); this file drives them through the shared runner and re-asserts
the paper's opening gap on the returned records.
"""

from _helpers import make_group_bench
from repro.bench import run_scenario

GROUP = "prop4.2"


bench_scenario = make_group_bench(GROUP)


def bench_prop42_gap(benchmark):
    """The paper's first claim: partial computations save one I/O on Figure 1."""

    def run():
        return (
            run_scenario("fig1-rbp-optimal", tier="quick"),
            run_scenario("fig1-prbp-optimal", tier="quick"),
        )

    rbp, prbp = benchmark(run)
    assert rbp.io_cost == 3 and rbp.optimal
    assert prbp.io_cost == 2 and prbp.optimal
    assert prbp.io_cost < rbp.io_cost
    # the exhaustive runs expose their search telemetry
    assert rbp.states_expanded is not None and rbp.states_expanded > 0


def bench_appendix_a1_matches_exhaustive(benchmark):
    """The hand-written A.1 strategies replay to the exhaustive optima."""

    def run():
        return (
            run_scenario("fig1-appA1-rbp", tier="quick"),
            run_scenario("fig1-appA1-prbp", tier="quick"),
        )

    rbp, prbp = benchmark(run)
    assert (rbp.io_cost, prbp.io_cost) == (3, 2)
