"""E01 — Figure 1 / Proposition 4.2: OPT_RBP = 3 vs OPT_PRBP = 2 at r = 4.

Regenerates the paper's first quantitative claim through the unified
``repro.api`` facade: the auto-dispatch portfolio runs the exhaustive optimal
solvers on the 10-node Figure 1 DAG, and the named ``figure1`` solver
replays the Appendix A.1 hand-written strategies as a cross-check.
"""

from repro.api import PebblingProblem, solve
from repro.dags import figure1_gadget


def bench_opt_rbp_figure1(benchmark):
    """Exhaustive OPT_RBP on Figure 1 via solve() (paper: 3)."""
    problem = PebblingProblem(figure1_gadget(), r=4, game="rbp")
    result = benchmark(lambda: solve(problem))
    assert result.cost == 3 and result.solver == "exhaustive" and result.optimal


def bench_opt_prbp_figure1(benchmark):
    """Exhaustive OPT_PRBP on Figure 1 via solve() (paper: 2)."""
    problem = PebblingProblem(figure1_gadget(), r=4, game="prbp")
    result = benchmark(lambda: solve(problem))
    assert result.cost == 2 and result.solver == "exhaustive" and result.optimal


def bench_appendix_a1_strategies(benchmark):
    """Replaying the Appendix A.1 strategies through the named registry solver."""
    dag = figure1_gadget()

    def run():
        rbp = solve(PebblingProblem(dag, 4, game="rbp"), solver="figure1")
        prbp = solve(PebblingProblem(dag, 4, game="prbp"), solver="figure1")
        return rbp.cost, prbp.cost

    rbp_cost, prbp_cost = benchmark(run)
    assert (rbp_cost, prbp_cost) == (3, 2)
    assert prbp_cost < rbp_cost
