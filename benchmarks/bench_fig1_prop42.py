"""E01 — Figure 1 / Proposition 4.2: OPT_RBP = 3 vs OPT_PRBP = 2 at r = 4.

Regenerates the paper's first quantitative claim by running the exhaustive
optimal solvers on the Figure 1 DAG and cross-checking the Appendix A.1
hand-written strategies.
"""

from repro.dags import figure1_gadget
from repro.solvers.exhaustive import optimal_prbp_cost, optimal_rbp_cost
from repro.solvers.structured import figure1_prbp_schedule, figure1_rbp_schedule


def bench_opt_rbp_figure1(benchmark):
    """Exhaustive OPT_RBP on Figure 1 (paper: 3)."""
    dag = figure1_gadget()
    cost = benchmark(lambda: optimal_rbp_cost(dag, 4))
    assert cost == 3


def bench_opt_prbp_figure1(benchmark):
    """Exhaustive OPT_PRBP on Figure 1 (paper: 2)."""
    dag = figure1_gadget()
    cost = benchmark(lambda: optimal_prbp_cost(dag, 4))
    assert cost == 2


def bench_appendix_a1_strategies(benchmark):
    """Replaying the Appendix A.1 strategies through the engines."""

    def run():
        return figure1_rbp_schedule().cost(), figure1_prbp_schedule().cost()

    rbp_cost, prbp_cost = benchmark(run)
    assert (rbp_cost, prbp_cost) == (3, 2)
    assert prbp_cost < rbp_cost
