"""E09 — Theorem 6.10: matrix multiplication lower bound Ω(m1·m2·m3/√r) in PRBP.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``thm6.10``): the outer-product tiled strategy is validated through
the engine and its cost must never fall below the counting bound.
"""

from _helpers import make_group_bench

GROUP = "thm6.10"


def _extra(record):
    assert record.solver_used == "matmul-tiled"
    assert record.io_cost >= record.lower_bound


bench_scenario = make_group_bench(GROUP, extra=_extra)
