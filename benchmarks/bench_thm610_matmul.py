"""E09 — Theorem 6.10: matrix multiplication lower bound Ω(m1·m2·m3/√r) in PRBP.

The tiled (outer-product) strategy is validated through the engine and its
cost compared against the S-edge-partition counting bound; the √r scaling is
checked by growing the cache.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.bounds.analytic import matmul_prbp_lower_bound
from repro.dags import matmul_instance
from repro.solvers.baselines import naive_prbp_schedule
from repro.solvers.structured import matmul_tiled_prbp_schedule

CASES = [((4, 4, 4), 8), ((6, 6, 6), 8), ((6, 6, 6), 18), ((8, 8, 8), 18), ((4, 8, 6), 8)]


@pytest.mark.parametrize("dims,r", CASES)
def bench_matmul_tiled_strategy(benchmark, dims, r):
    """Tiled PRBP strategy: O(m1·m2·m3/√r) I/O, never below the Theorem 6.10 bound."""
    inst = matmul_instance(*dims)
    cost = benchmark(lambda: matmul_tiled_prbp_schedule(inst, r=r).cost())
    assert cost >= matmul_prbp_lower_bound(*dims, r)
    assert cost >= inst.dag.trivial_cost()


def bench_matmul_cache_scaling(benchmark):
    """Quadrupling the cache roughly halves the non-trivial traffic (√r scaling)."""
    inst = matmul_instance(8, 8, 8)

    def run():
        small = matmul_tiled_prbp_schedule(inst, r=8).cost()
        large = matmul_tiled_prbp_schedule(inst, r=32).cost()
        return small, large

    small, large = benchmark(run)
    trivial = inst.dag.trivial_cost()
    assert (large - trivial) < (small - trivial)


def bench_matmul_table(benchmark):
    """The Theorem 6.10 table: lower bound vs tiled strategy vs naive baseline."""

    def build():
        rows = []
        for dims, r in CASES:
            inst = matmul_instance(*dims)
            tiled = matmul_tiled_prbp_schedule(inst, r=r).cost()
            naive = naive_prbp_schedule(inst.dag).cost()
            rows.append(
                [
                    "x".join(map(str, dims)),
                    r,
                    inst.dag.trivial_cost(),
                    matmul_prbp_lower_bound(*dims, r),
                    tiled,
                    naive,
                ]
            )
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["dims", "r", "trivial", "PRBP lower bound", "tiled strategy", "naive"],
            rows,
            title="Theorem 6.10 — matrix multiplication I/O in PRBP",
        )
    )
    for _, _, trivial, lower, tiled, naive in rows:
        assert max(trivial, lower) <= tiled <= naive
