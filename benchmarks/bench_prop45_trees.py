"""E04 — Proposition 4.5 / Appendix A.2: k-ary reduction trees at r = k + 1.

Closed forms: OPT_RBP = k^d + 2·k^(d-1) - 1 and OPT_PRBP = k^d + 2·k^(d-k) - 1.
The structured strategies replayed through the engines must land exactly on
these values, and the exhaustive solver confirms optimality at small depth.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.dags import kary_tree_instance
from repro.dags.trees import optimal_prbp_tree_cost, optimal_rbp_tree_cost
from repro.solvers.exhaustive import optimal_prbp_cost, optimal_rbp_cost
from repro.solvers.structured import tree_prbp_schedule, tree_rbp_schedule

CASES = [(2, 3), (2, 5), (2, 7), (3, 3), (3, 4), (4, 4)]


@pytest.mark.parametrize("k,depth", CASES)
def bench_tree_rbp_strategy(benchmark, k, depth):
    """Appendix A.2 RBP strategy: k^d + 2·k^(d-1) - 1."""
    inst = kary_tree_instance(k, depth)
    cost = benchmark(lambda: tree_rbp_schedule(inst).cost())
    assert cost == optimal_rbp_tree_cost(k, depth)


@pytest.mark.parametrize("k,depth", CASES)
def bench_tree_prbp_strategy(benchmark, k, depth):
    """Appendix A.2 PRBP strategy: k^d + 2·k^(d-k) - 1."""
    inst = kary_tree_instance(k, depth)
    cost = benchmark(lambda: tree_prbp_schedule(inst).cost())
    assert cost == optimal_prbp_tree_cost(k, depth)


def bench_tree_exhaustive_confirms_formulas(benchmark):
    """Exhaustive optimum at depth 3 (binary): both formulas are optimal."""
    inst = kary_tree_instance(2, 3)

    def run():
        return optimal_rbp_cost(inst.dag, 3), optimal_prbp_cost(inst.dag, 3)

    rbp, prbp = benchmark(run)
    assert rbp == optimal_rbp_tree_cost(2, 3) == 15
    assert prbp == optimal_prbp_tree_cost(2, 3) == 11


def bench_tree_table(benchmark):
    """The Appendix A.2 cost table (strategy cost vs closed form)."""

    def build():
        rows = []
        for k, depth in CASES:
            inst = kary_tree_instance(k, depth)
            rows.append(
                [
                    k,
                    depth,
                    tree_rbp_schedule(inst).cost(),
                    optimal_rbp_tree_cost(k, depth),
                    tree_prbp_schedule(inst).cost(),
                    optimal_prbp_tree_cost(k, depth),
                ]
            )
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["k", "depth", "RBP strategy", "RBP formula", "PRBP strategy", "PRBP formula"],
            rows,
            title="Proposition 4.5 / Appendix A.2 — k-ary trees at r = k + 1",
        )
    )
    for _, _, rbp, rbp_f, prbp, prbp_f in rows:
        assert rbp == rbp_f and prbp == prbp_f and prbp <= rbp
