"""E04 — Proposition 4.5 / Appendix A.2: k-ary reduction trees at r = k + 1.

Closed forms: OPT_RBP = k^d + 2·k^(d-1) - 1 and OPT_PRBP = k^d + 2·k^(d-k) - 1.
All instances are dispatched through the unified ``repro.api`` facade; the
``kary_tree`` family tag routes them to the Appendix A.2 structured
strategies, whose replayed costs must land exactly on the closed forms — and,
since the closed forms double as lower bounds at the critical capacity, every
result reports ``optimal`` without an exhaustive search.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.api import PebblingProblem, solve
from repro.dags import kary_tree_dag
from repro.dags.trees import optimal_prbp_tree_cost, optimal_rbp_tree_cost

CASES = [(2, 3), (2, 5), (2, 7), (3, 3), (3, 4), (4, 4)]


@pytest.mark.parametrize("k,depth", CASES)
def bench_tree_rbp_strategy(benchmark, k, depth):
    """Appendix A.2 RBP strategy via solve(): k^d + 2·k^(d-1) - 1."""
    problem = PebblingProblem(kary_tree_dag(k, depth), r=k + 1, game="rbp")
    result = benchmark(lambda: solve(problem, exact_node_limit=0))
    assert result.solver == "tree"
    assert result.cost == optimal_rbp_tree_cost(k, depth)
    assert result.optimal


@pytest.mark.parametrize("k,depth", CASES)
def bench_tree_prbp_strategy(benchmark, k, depth):
    """Appendix A.2 PRBP strategy via solve(): k^d + 2·k^(d-k) - 1."""
    problem = PebblingProblem(kary_tree_dag(k, depth), r=k + 1, game="prbp")
    result = benchmark(lambda: solve(problem, exact_node_limit=0))
    assert result.solver == "tree"
    assert result.cost == optimal_prbp_tree_cost(k, depth)
    assert result.optimal


def bench_tree_exhaustive_confirms_formulas(benchmark):
    """Exhaustive optimum at depth 3 (binary): both formulas are optimal."""
    dag = kary_tree_dag(2, 3)

    def run():
        rbp = solve(PebblingProblem(dag, 3, game="rbp"), exact_node_limit=dag.n)
        prbp = solve(PebblingProblem(dag, 3, game="prbp"), exact_node_limit=dag.n)
        assert rbp.solver == prbp.solver == "exhaustive"
        return rbp.cost, prbp.cost

    rbp, prbp = benchmark(run)
    assert rbp == optimal_rbp_tree_cost(2, 3) == 15
    assert prbp == optimal_prbp_tree_cost(2, 3) == 11


def bench_tree_table(benchmark):
    """The Appendix A.2 cost table (strategy cost vs closed form)."""

    def build():
        rows = []
        for k, depth in CASES:
            dag = kary_tree_dag(k, depth)
            rbp = solve(PebblingProblem(dag, k + 1, game="rbp"), exact_node_limit=0)
            prbp = solve(PebblingProblem(dag, k + 1, game="prbp"), exact_node_limit=0)
            rows.append(
                [
                    k,
                    depth,
                    rbp.cost,
                    optimal_rbp_tree_cost(k, depth),
                    prbp.cost,
                    optimal_prbp_tree_cost(k, depth),
                ]
            )
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["k", "depth", "RBP strategy", "RBP formula", "PRBP strategy", "PRBP formula"],
            rows,
            title="Proposition 4.5 / Appendix A.2 — k-ary trees at r = k + 1",
        )
    )
    for _, _, rbp, rbp_f, prbp, prbp_f in rows:
        assert rbp == rbp_f and prbp == prbp_f and prbp <= rbp
