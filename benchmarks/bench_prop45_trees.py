"""E04 — Proposition 4.5 / Appendix A.2: k-ary reduction trees at r = k + 1.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``prop4.5``): the structured tree strategies must land exactly on the
closed forms OPT_RBP = k^d + 2k^(d-1) - 1 and OPT_PRBP = k^d + 2k^(d-k) - 1,
which double as lower bounds at the critical capacity — so every record
reports provable optimality without an exhaustive search.
"""

import pytest

from _helpers import make_group_bench
from repro.bench import run_scenario, scenario_names

GROUP = "prop4.5"


bench_scenario = make_group_bench(GROUP)


@pytest.mark.parametrize("name", scenario_names(group=GROUP))
def bench_closed_forms_are_optimal(benchmark, name):
    """Every tree record matches its App. A.2 closed form and proves optimality."""
    record = benchmark.pedantic(run_scenario, args=(name,), kwargs={"tier": "quick"}, rounds=1)
    assert record.solver_used == "tree"
    assert record.expected_cost is not None and record.io_cost == record.expected_cost
    assert record.optimal and record.gap == 0
