"""E14 — cross-cutting machinery: Proposition 4.1 conversion and the extraction lemmas.

These benchmarks exercise the generic machinery the paper's proofs rest on,
over random layered DAGs: converting RBP schedules to PRBP preserves the I/O
cost exactly, and every PRBP strategy yields valid (2r)-edge / (2r)-dominator
partitions (Lemmas 6.4 and 6.8).
"""

import pytest

from repro.bounds.partitions import (
    dominator_partition_from_prbp_schedule,
    edge_partition_from_prbp_schedule,
    spartition_from_rbp_schedule,
)
from repro.core.conversion import convert_rbp_to_prbp
from repro.dags import random_layered_dag
from repro.solvers.greedy import greedy_rbp_schedule, topological_prbp_schedule


def _dag(seed: int):
    return random_layered_dag([6, 8, 8, 6, 4], edge_probability=0.3, max_in_degree=4, seed=seed)


@pytest.mark.parametrize("seed", [0, 1, 2])
def bench_proposition41_conversion(benchmark, seed):
    """RBP → PRBP conversion on a greedy schedule of a 32-node layered DAG."""
    dag = _dag(seed)
    r = dag.max_in_degree + 2
    rbp_schedule = greedy_rbp_schedule(dag, r)

    def run():
        prbp_schedule = convert_rbp_to_prbp(rbp_schedule)
        return prbp_schedule.validate().io_cost

    cost = benchmark(run)
    assert cost == rbp_schedule.cost()


@pytest.mark.parametrize("seed", [0, 1, 2])
def bench_lemma64_edge_partition_extraction(benchmark, seed):
    """Lemma 6.4: extracting and verifying the (2r)-edge partition of a PRBP strategy."""
    dag = _dag(seed)
    schedule = topological_prbp_schedule(dag, 4)

    def run():
        partition = edge_partition_from_prbp_schedule(schedule)
        partition.verify()
        return len(partition)

    k = benchmark(run)
    assert schedule.cost() >= schedule.r * (k - 1)


@pytest.mark.parametrize("seed", [0, 1])
def bench_lemma68_dominator_partition_extraction(benchmark, seed):
    """Lemma 6.8: extracting and verifying the (2r)-dominator partition of a PRBP strategy."""
    dag = _dag(seed)
    schedule = topological_prbp_schedule(dag, 4)

    def run():
        partition = dominator_partition_from_prbp_schedule(schedule)
        partition.verify()
        return len(partition)

    k = benchmark(run)
    assert schedule.cost() >= schedule.r * (k - 1)


def bench_hong_kung_extraction(benchmark):
    """Hong & Kung's original S-partition extraction from an RBP schedule."""
    dag = _dag(3)
    r = dag.max_in_degree + 1
    schedule = greedy_rbp_schedule(dag, r)

    def run():
        partition = spartition_from_rbp_schedule(schedule)
        partition.verify()
        return len(partition)

    k = benchmark(run)
    assert schedule.cost() >= r * (k - 1)
