"""E14 — cross-cutting machinery: greedy pebbling of random layered DAGs.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``machinery``): random layered DAGs at several edge densities are
pebbled through the facade in both games — the family no structured strategy
claims, so these records track the greedy engine (and the Proposition 4.1
machinery behind it) in isolation.
"""

from _helpers import make_group_bench
from repro.bench import run_scenario

GROUP = "machinery"


def _extra(record):
    assert record.solver_used == "greedy"


bench_scenario = make_group_bench(GROUP, extra=_extra)


def bench_density_raises_cost(benchmark):
    """More edges mean more operands resident at once: cost grows with density."""

    def run():
        return (
            run_scenario("random-layered-sparse", tier="quick"),
            run_scenario("random-layered-dense", tier="quick"),
        )

    sparse, dense = benchmark(run)
    assert sparse.io_cost < dense.io_cost
