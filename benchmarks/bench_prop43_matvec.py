"""E02 — Proposition 4.3: mat-vec, OPT_PRBP = m² + 2m < m² + 3m - 1 <= OPT_RBP.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``prop4.3``): the PRBP column-streaming strategy hits the trivial
cost, while the RBP side carries the strictly larger Proposition 4.3 lower
bound — so partial computations win on this family at every size.
"""

from _helpers import make_group_bench
from repro.bench import run_scenario

GROUP = "prop4.3"


bench_scenario = make_group_bench(GROUP)


def bench_prop43_separation(benchmark):
    """PRBP achieves the trivial cost; the RBP bound already exceeds it."""

    def run():
        return (
            run_scenario("matvec-prbp-streaming", tier="quick"),
            run_scenario("matvec-rbp-greedy", tier="quick"),
        )

    prbp, rbp = benchmark(run)
    assert prbp.solver_used == "matvec-streaming" and prbp.optimal
    assert rbp.lower_bound_source == "prop4.3"
    assert prbp.io_cost < rbp.lower_bound <= rbp.io_cost
