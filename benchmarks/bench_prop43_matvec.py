"""E02 — Proposition 4.3: matrix–vector multiplication, OPT_PRBP = m²+2m < m²+3m-1 <= OPT_RBP.

The PRBP column-streaming strategy achieves the trivial cost for every
``m + 3 <= r``; the RBP lower bound of the proposition is strictly larger for
``m >= 3``, so partial computations win on this family at every size.  All
instances go through the unified ``repro.api`` facade: the ``matvec`` family
tag routes the PRBP side to the streaming strategy, and the RBP side to the
greedy fallback.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.api import PebblingProblem, solve
from repro.bounds.analytic import matvec_prbp_optimal_cost, matvec_rbp_lower_bound
from repro.dags import matvec_dag

SIZES = [3, 4, 6, 8]


@pytest.mark.parametrize("m", SIZES)
def bench_matvec_prbp_strategy(benchmark, m):
    """Auto-dispatched PRBP column-streaming strategy (paper: m² + 2m)."""
    problem = PebblingProblem(matvec_dag(m), r=m + 3, game="prbp")
    result = benchmark(lambda: solve(problem, exact_node_limit=0))
    assert result.solver == "matvec-streaming"
    assert result.cost == matvec_prbp_optimal_cost(m) == m * m + 2 * m
    assert result.cost < matvec_rbp_lower_bound(m)
    assert result.optimal  # the strategy meets the trivial-cost lower bound


@pytest.mark.parametrize("m", [4, 6])
def bench_matvec_rbp_greedy_upper_bound(benchmark, m):
    """The greedy RBP fallback at r = m + 3 (upper bound; dominated by the PRBP optimum)."""
    problem = PebblingProblem(matvec_dag(m), r=m + 3, game="rbp")
    result = benchmark(lambda: solve(problem, exact_node_limit=0))
    assert result.solver == "greedy"
    assert result.cost >= matvec_rbp_lower_bound(m) - (m - 1)  # at least the trivial cost
    assert result.cost >= matvec_prbp_optimal_cost(m)


def bench_matvec_table(benchmark):
    """Whole sweep: the table the proposition implies (PRBP cost vs RBP lower bound)."""

    def build():
        rows = []
        for m in SIZES:
            res = solve(PebblingProblem(matvec_dag(m), m + 3, game="prbp"), exact_node_limit=0)
            rows.append([m, res.problem.trivial_cost, res.cost, matvec_rbp_lower_bound(m)])
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["m", "trivial", "PRBP strategy", "RBP lower bound"],
            rows,
            title="Proposition 4.3 — matrix-vector multiplication (r = m + 3)",
        )
    )
    for _, trivial, prbp, rbp_lb in rows:
        assert prbp == trivial < rbp_lb
