"""E02 — Proposition 4.3: matrix–vector multiplication, OPT_PRBP = m²+2m < m²+3m-1 <= OPT_RBP.

The PRBP column-streaming strategy achieves the trivial cost for every
``m + 3 <= r``; the RBP lower bound of the proposition is strictly larger for
``m >= 3``, so partial computations win on this family at every size.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.bounds.analytic import matvec_prbp_optimal_cost, matvec_rbp_lower_bound
from repro.dags import matvec_instance
from repro.solvers.greedy import greedy_rbp_schedule
from repro.solvers.structured import matvec_prbp_schedule

SIZES = [3, 4, 6, 8]


@pytest.mark.parametrize("m", SIZES)
def bench_matvec_prbp_strategy(benchmark, m):
    """Validated PRBP column-streaming strategy (paper: m² + 2m)."""
    inst = matvec_instance(m)
    cost = benchmark(lambda: matvec_prbp_schedule(inst).cost())
    assert cost == matvec_prbp_optimal_cost(m) == m * m + 2 * m
    assert cost < matvec_rbp_lower_bound(m)


@pytest.mark.parametrize("m", [4, 6])
def bench_matvec_rbp_greedy_upper_bound(benchmark, m):
    """A greedy RBP pebbling at r = m + 3 (upper bound; must exceed the RBP lower bound region)."""
    inst = matvec_instance(m)
    cost = benchmark(lambda: greedy_rbp_schedule(inst.dag, m + 3).cost())
    assert cost >= matvec_rbp_lower_bound(m) - (m - 1)  # at least the trivial cost
    assert cost >= matvec_prbp_optimal_cost(m)


def bench_matvec_table(benchmark):
    """Whole sweep: the table the proposition implies (PRBP cost vs RBP lower bound)."""

    def build():
        rows = []
        for m in SIZES:
            inst = matvec_instance(m)
            prbp = matvec_prbp_schedule(inst).cost()
            rows.append([m, inst.dag.trivial_cost(), prbp, matvec_rbp_lower_bound(m)])
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["m", "trivial", "PRBP strategy", "RBP lower bound"],
            rows,
            title="Proposition 4.3 — matrix-vector multiplication (r = m + 3)",
        )
    )
    for _, trivial, prbp, rbp_lb in rows:
        assert prbp == trivial < rbp_lb
