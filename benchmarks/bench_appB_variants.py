"""E13 — Section 8.1 / Appendix B: behaviour of the model variants.

Regenerates the appendix's qualitative claims with the exhaustive solvers:

* re-computation closes the Figure 1 gap in RBP, and the ``z``-layer gadget
  restores it;
* sliding pebbles close the gap too, and the ``w0`` gadget restores it;
* sliding also closes the gap on *binary* trees but not on ternary trees;
* the no-deletion variant obeys ``OPT_PRBP >= n - r``.
"""

import pytest

from repro.core.variants import NO_DELETE, RECOMPUTE, SLIDING
from repro.analysis.reporting import format_table
from repro.dags import binary_tree_instance, figure1_instance, kary_tree_instance
from repro.solvers.exhaustive import optimal_prbp_cost, optimal_rbp_cost


def bench_recompute_variant_on_figure1(benchmark):
    """Appendix B.1: re-computation gives OPT_RBP = 2, the z-layer restores 3."""

    def run():
        plain = optimal_rbp_cost(figure1_instance().dag, 4, variant=RECOMPUTE)
        guarded = optimal_rbp_cost(figure1_instance(with_z_layer=True).dag, 4, variant=RECOMPUTE)
        return plain, guarded

    plain, guarded = benchmark(run)
    assert plain == 2 and guarded == 3


def bench_sliding_variant_on_figure1(benchmark):
    """Appendix B.2: sliding gives OPT_RBP = 2, the w0 node restores 3."""

    def run():
        plain = optimal_rbp_cost(figure1_instance().dag, 4, variant=SLIDING)
        guarded = optimal_rbp_cost(figure1_instance(with_w0=True).dag, 4, variant=SLIDING)
        return plain, guarded

    plain, guarded = benchmark(run)
    assert plain == 2 and guarded == 3


def bench_sliding_on_trees(benchmark):
    """Appendix B.2: sliding matches PRBP on binary trees, but not on ternary trees."""

    def run():
        binary = binary_tree_instance(3)
        ternary = kary_tree_instance(3, 2)
        return (
            optimal_rbp_cost(binary.dag, 3, variant=SLIDING),
            optimal_prbp_cost(binary.dag, 3),
            optimal_rbp_cost(ternary.dag, 4, variant=SLIDING),
            optimal_prbp_cost(ternary.dag, 4),
        )

    bin_slide, bin_prbp, ter_slide, ter_prbp = benchmark(run)
    assert bin_slide == bin_prbp  # sliding closes the gap for k = 2
    assert ter_prbp < ter_slide  # but not for k = 3


def bench_no_delete_variant(benchmark):
    """Appendix B.4: without deletions every value is written out, OPT >= n - r."""
    inst = binary_tree_instance(2)
    r = 3
    cost = benchmark(lambda: optimal_prbp_cost(inst.dag, r, variant=NO_DELETE))
    assert cost >= inst.dag.n - r
    assert cost >= optimal_prbp_cost(inst.dag, r)


def bench_variants_table(benchmark):
    """Summary table of the Appendix B variant comparison on the Figure 1 family."""

    def build():
        fig = figure1_instance().dag
        fig_z = figure1_instance(with_z_layer=True).dag
        fig_w0 = figure1_instance(with_w0=True).dag
        return [
            ["one-shot RBP", optimal_rbp_cost(fig, 4)],
            ["one-shot PRBP", optimal_prbp_cost(fig, 4)],
            ["RBP + re-computation", optimal_rbp_cost(fig, 4, variant=RECOMPUTE)],
            ["RBP + re-computation (z-layer gadget)", optimal_rbp_cost(fig_z, 4, variant=RECOMPUTE)],
            ["RBP + sliding", optimal_rbp_cost(fig, 4, variant=SLIDING)],
            ["RBP + sliding (w0 gadget)", optimal_rbp_cost(fig_w0, 4, variant=SLIDING)],
            ["PRBP (z-layer gadget)", optimal_prbp_cost(fig_z, 4)],
            ["PRBP (w0 gadget)", optimal_prbp_cost(fig_w0, 4)],
        ]

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["model / gadget", "optimal I/O"],
            rows,
            title="Appendix B — model variants on the Figure 1 family (r = 4)",
        )
    )
    costs = dict(rows)
    assert costs["one-shot PRBP"] == 2 and costs["one-shot RBP"] == 3
    assert costs["PRBP (z-layer gadget)"] == 2 and costs["PRBP (w0 gadget)"] == 2
