"""E13 — Section 8.1 / Appendix B: behaviour of the model variants.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``appB``): re-computation and sliding both close the Figure 1 gap in
RBP (exhaustive OPT drops from 3 to the PRBP value 2).
"""

from _helpers import make_group_bench
from repro.bench import run_scenario

GROUP = "appB"


bench_scenario = make_group_bench(GROUP)


def bench_appB_variants_close_the_gap(benchmark):
    """Both relaxations reach cost 2 — the one-shot RBP optimum is 3."""

    def run():
        return (
            run_scenario("fig1-rbp-recompute", tier="quick"),
            run_scenario("fig1-rbp-sliding", tier="quick"),
            run_scenario("fig1-rbp-optimal", tier="quick"),
        )

    recompute, sliding, one_shot = benchmark(run)
    assert recompute.io_cost == sliding.io_cost == 2
    assert one_shot.io_cost == 3
