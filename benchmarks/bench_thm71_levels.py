"""E12 — Theorem 7.1: the inapproximability construction's level gadgets.

Benchmarks the auxiliary-level adaptation of the [3] towers: the adapted DAG
stays polynomially larger, the cross-tower precedence edges are re-routed to
auxiliary levels, and on the small demo instance the greedy PRBP cost of the
adapted construction is no smaller than that of the plain one (the auxiliary
levels only add constraints).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.hardness.levels import (
    CrossEdge,
    LevelRef,
    TowerSpec,
    build_towers_dag,
    demo_theorem71_instance,
    insert_auxiliary_levels,
)
from repro.solvers.greedy import topological_prbp_schedule


@pytest.mark.parametrize("sizes", [(4, 4, 2, 3), (6, 5, 3, 3, 2), (5, 5, 5)])
def bench_auxiliary_level_insertion(benchmark, sizes):
    """The Appendix A.5 spec transformation (size bookkeeping only)."""
    spec = TowerSpec(level_sizes=sizes)
    adapted = benchmark(lambda: insert_auxiliary_levels(spec))
    assert len(adapted.levels) > len(sizes)
    # every shrink of ℓ -> ℓ' inserts ℓ - ℓ' + 2 auxiliary levels
    expected_aux = 1  # top of tower
    for prev, cur in zip(sizes, sizes[1:]):
        expected_aux += (prev - cur + 2) if prev > cur else 1
    assert sum(adapted.is_auxiliary) == expected_aux


def bench_demo_construction(benchmark):
    """Building the adapted two-tower demo DAG."""
    inst = benchmark(lambda: demo_theorem71_instance(adapted=True))
    plain = demo_theorem71_instance(adapted=False)
    assert inst.dag.n > plain.dag.n
    assert inst.dag.n < 10 * plain.dag.n


def bench_adapted_vs_plain_greedy_cost(benchmark):
    """Greedy PRBP cost on the adapted construction is at least that of the plain one."""

    def run():
        plain = demo_theorem71_instance(adapted=False)
        adapted = demo_theorem71_instance(adapted=True)
        r = max(plain.dag.max_in_degree, adapted.dag.max_in_degree) + 1
        return (
            topological_prbp_schedule(plain.dag, r).cost(),
            topological_prbp_schedule(adapted.dag, r).cost(),
        )

    plain_cost, adapted_cost = benchmark(run)
    assert adapted_cost >= plain_cost


def bench_levels_table(benchmark):
    """Size growth of the adaptation for a family of tower profiles."""

    def build():
        rows = []
        cross = [CrossEdge(src=LevelRef(0, 0), dst=LevelRef(1, 1))]
        for sizes in [(4, 3, 2), (6, 6, 3, 2), (8, 5, 5, 2, 2)]:
            specs = [TowerSpec(level_sizes=sizes), TowerSpec(level_sizes=sizes[:2])]
            plain = build_towers_dag(specs, cross, adapted=False)
            adapted = build_towers_dag(specs, cross, adapted=True)
            rows.append(["-".join(map(str, sizes)), plain.dag.n, adapted.dag.n, adapted.dag.m])
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["tower profile", "plain nodes", "adapted nodes", "adapted edges"],
            rows,
            title="Theorem 7.1 — auxiliary-level adaptation of the level gadgets",
        )
    )
    for _, plain_n, adapted_n, _ in rows:
        assert plain_n < adapted_n < 12 * plain_n
