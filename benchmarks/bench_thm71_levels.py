"""E12 — Theorem 7.1: the inapproximability construction's level gadgets.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``thm7.1``): the adapted (auxiliary-level) two-tower demo DAG is
pebbled greedily through the facade; the auxiliary levels only add
constraints, so the cost stays well above the trivial floor.
"""

from _helpers import make_group_bench

GROUP = "thm7.1"


def _extra(record):
    assert record.solver_used == "greedy"
    assert record.io_cost >= record.lower_bound


bench_scenario = make_group_bench(GROUP, extra=_extra)
