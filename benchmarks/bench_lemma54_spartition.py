"""E07 — Lemma 5.4: the classic S-partition bound does not carry over to PRBP.

On the Figure 3 fan-in DAG, the actual PRBP cost stays at the trivial 8 (for
r = 3) no matter how large the groups grow, while the minimum S-partition
with S = 2r = 6 needs Θ(n) classes — so the Hong–Kung style bound would
wrongly predict an Ω(n) cost.  The adapted S-dominator partition stays small,
as Theorem 6.7 requires.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.bounds.analytic import fanin_min_part_lower_bound
from repro.bounds.hongkung import rbp_lower_bound_from_min_part
from repro.bounds.minpart import min_dominator_partition_classes, min_spartition_classes
from repro.dags import fanin_groups_instance
from repro.solvers.structured import fanin_groups_prbp_schedule

GROUP_SIZES = [6, 24, 96, 384]
R = 3


@pytest.mark.parametrize("group_size", GROUP_SIZES)
def bench_fanin_prbp_cost_is_constant(benchmark, group_size):
    """PRBP cost equals the trivial 8 regardless of the group size."""
    inst = fanin_groups_instance(7, group_size)
    cost = benchmark(lambda: fanin_groups_prbp_schedule(inst, r=R).cost())
    assert cost == 8


def bench_fanin_exact_partitions_small(benchmark):
    """Exact MIN_part vs MIN_dom on a small instance: the node partition is the loose one."""
    inst = fanin_groups_instance(num_groups=3, group_size=2)  # 10 nodes, S = 2 separates

    def run():
        return (
            min_spartition_classes(inst.dag, 2),
            min_dominator_partition_classes(inst.dag, 2),
        )

    part, dom = benchmark.pedantic(run, rounds=2, iterations=1)
    assert part >= fanin_min_part_lower_bound(3, 2, 2)
    assert dom <= part


def bench_fanin_table(benchmark):
    """Lemma 5.4's separation: the stale bound grows with n, the true cost does not."""

    def build():
        rows = []
        for group_size in GROUP_SIZES:
            inst = fanin_groups_instance(7, group_size)
            prbp = fanin_groups_prbp_schedule(inst, r=R).cost()
            stale_bound = rbp_lower_bound_from_min_part(
                R, fanin_min_part_lower_bound(7, group_size, 2 * R)
            )
            rows.append([group_size, inst.dag.n, prbp, stale_bound])
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["group size", "n", "OPT_PRBP (measured)", "r·(MIN_part(2r)-1) (invalid for PRBP)"],
            rows,
            title="Lemma 5.4 — S-partitions over-estimate PRBP cost (r = 3)",
        )
    )
    bounds = [row[3] for row in rows]
    assert all(row[2] == 8 for row in rows)
    assert bounds == sorted(bounds) and bounds[-1] > 8
