"""E07 — Lemma 5.4: the classic S-partition bound does not carry over to PRBP.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``lemma5.4``): the fan-in-groups PRBP cost stays at the trivial 8 (for
r = 3) no matter how large the groups grow — so a Hong–Kung style S-partition
bound, which needs Θ(n) classes here, would wrongly predict Ω(n) cost.
"""

from _helpers import make_group_bench
from repro.bench import run_scenario

GROUP = "lemma5.4"


bench_scenario = make_group_bench(GROUP)


def bench_lemma54_constant_cost(benchmark):
    """The streaming strategy's cost is a size-independent, optimal 8."""
    record = benchmark(run_scenario, "fanin-streaming-prbp", tier="quick")
    assert record.solver_used == "fanin-streaming"
    assert record.io_cost == 8 and record.optimal
