"""Shared wrapper factory for the per-proposition benchmark files.

Every ``bench_*.py`` file covers one scenario group of the
:mod:`repro.bench` registry; :func:`make_group_bench` builds the one
parametrized benchmark they all share, so the common record invariants are
defined exactly once.  (This module deliberately does not match the
``bench_*.py`` collection pattern — pytest never collects it directly.)
"""

import pytest

from repro.bench import run_scenario, scenario_names


def make_group_bench(group, extra=None):
    """A parametrized benchmark running every quick-tier scenario of ``group``.

    Asserts the invariants every record must satisfy (no error, declared
    expectations met, a non-negative lower-bound gap); ``extra`` is an
    optional per-group callable receiving the record for additional claims.
    """

    @pytest.mark.parametrize("name", scenario_names(group=group))
    def bench_scenario(benchmark, name):
        record = benchmark(run_scenario, name, tier="quick")
        assert record.error is None
        assert record.expected_ok is not False
        assert record.gap is None or record.gap >= 0
        if extra is not None:
            extra(record)

    return bench_scenario
