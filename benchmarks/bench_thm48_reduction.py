"""E11 — Theorem 4.8 / Lemma 4.10: the NP-hardness reduction machinery.

Benchmarks the ``maxinset-vertex`` decision procedure, the Lemma A.1
self-reduction, and the construction of the Appendix A.4 reduction DAG
(faithful parameters), checking the structural invariants the proof relies
on (polynomial size, merged sources, cross replacements, the discriminator
sink ``w``).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.hardness.independent_set import (
    UndirectedGraph,
    clique_number,
    independence_number,
    max_clique_via_vertex_oracle,
    maxinset_vertex,
)
from repro.hardness.reduction_thm48 import build_theorem48_instance


def _random_graph(n: int, p: float, seed: int) -> UndirectedGraph:
    import numpy as np

    rng = np.random.default_rng(seed)
    edges = [(i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < p]
    return UndirectedGraph.from_edges(n, edges)


@pytest.mark.parametrize("n", [6, 8, 10])
def bench_maxinset_vertex(benchmark, n):
    """Exact maxinset-vertex decisions on random graphs (the reduction's source problem)."""
    graph = _random_graph(n, 0.4, seed=n)

    def run():
        return [maxinset_vertex(graph, v) for v in range(n)]

    answers = benchmark(run)
    assert any(answers)  # some node always belongs to a maximum independent set


@pytest.mark.parametrize("n", [6, 8])
def bench_lemma_a1_self_reduction(benchmark, n):
    """Lemma A.1: a maxclique-vertex oracle yields a maximum clique."""
    graph = _random_graph(n, 0.5, seed=100 + n)
    found = benchmark(lambda: max_clique_via_vertex_oracle(graph))
    assert len(found) == clique_number(graph)


@pytest.mark.parametrize("n0", [3, 4, 5])
def bench_theorem48_construction(benchmark, n0):
    """Building the Appendix A.4 reduction DAG with faithful parameters."""
    graph = _random_graph(n0, 0.5, seed=7 * n0)
    v0 = 0
    inst = benchmark(lambda: build_theorem48_instance(graph, v0))
    params = inst.params
    # polynomial size in n0 and |E0|
    assert inst.dag.n <= 2 * n0 * (params.ell + params.group_size) + 2
    assert inst.dag.is_sink(inst.w)
    assert set(inst.dag.predecessors(inst.w)) == set(inst.z1) | set(inst.z2)


def bench_theorem48_table(benchmark):
    """Construction sizes and the maxinset-vertex answers driving the reduction."""

    def build():
        rows = []
        for n0 in (3, 4, 5):
            graph = _random_graph(n0, 0.5, seed=7 * n0)
            inst = build_theorem48_instance(graph, 0, chain_scale=0.05)
            rows.append(
                [
                    n0,
                    len(graph.edges),
                    independence_number(graph),
                    maxinset_vertex(graph, 0),
                    inst.params.r,
                    inst.dag.n,
                    inst.dag.m,
                ]
            )
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["n0", "|E0|", "alpha(G0)", "v0 in max ind. set", "r", "DAG nodes", "DAG edges"],
            rows,
            title="Theorem 4.8 — reduction instances (chain_scale = 0.05 for display)",
        )
    )
    assert all(row[5] > 0 for row in rows)
