"""E11 — Theorem 4.8: pebbling the NP-hardness reduction construction.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``thm4.8``): the Appendix A.4 reduction DAG (with scaled-down chain
lengths, keeping it polynomial-small) is pebbled greedily through the
facade — the largest single workload in the suite, and the one that keeps
the greedy engine honest on multi-thousand-node DAGs.
"""

from _helpers import make_group_bench
from repro.bench import get_scenario, run_scenario

GROUP = "thm4.8"


bench_scenario = make_group_bench(GROUP)


def bench_reduction_dag_structure(benchmark):
    """The reduction DAG stays polynomially sized and greedy-pebbleable."""
    scenario = get_scenario("thm48-reduction-greedy")

    def run():
        return run_scenario(scenario, tier="quick")

    record = benchmark.pedantic(run, rounds=1)
    assert record.n is not None and record.n < 2000
    assert record.solver_used == "greedy"
    assert record.io_cost >= record.lower_bound
