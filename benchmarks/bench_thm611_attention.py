"""E10 — Theorem 6.11: attention (Q·Kᵀ + exp) I/O in PRBP.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``thm6.11``): the flash-attention-style row-block strategy streams Kᵀ
once per row block; its measured cost must dominate the Theorem 6.11 bound.
"""

from _helpers import make_group_bench

GROUP = "thm6.11"


def _extra(record):
    assert record.solver_used == "attention-flash"
    assert record.io_cost >= record.lower_bound


bench_scenario = make_group_bench(GROUP, extra=_extra)
