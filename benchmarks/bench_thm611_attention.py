"""E10 — Theorem 6.11: attention (Q·Kᵀ + exp) lower bound in the two cache regimes.

The flash-attention-style row-block strategy streams Kᵀ once per row block,
so its matrix-product traffic scales as m²·d²/r in the large-cache regime;
the measured cost must dominate the Theorem 6.11 bound in both regimes.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.bounds.analytic import attention_prbp_lower_bound
from repro.dags import attention_instance
from repro.solvers.structured import attention_flash_prbp_schedule

CASES = [(8, 2, 10), (8, 2, 20), (12, 2, 10), (12, 3, 16), (16, 4, 24), (16, 4, 40)]


@pytest.mark.parametrize("m,d,r", CASES)
def bench_attention_flash_strategy(benchmark, m, d, r):
    """Flash-style tiled PRBP strategy, never below the Theorem 6.11 bound."""
    inst = attention_instance(m, d)
    cost = benchmark(lambda: attention_flash_prbp_schedule(inst, r=r).cost())
    assert cost >= attention_prbp_lower_bound(m, d, r)
    assert cost >= inst.dag.trivial_cost()


def bench_attention_large_cache_scaling(benchmark):
    """In the large-cache regime, a larger cache reduces the Kᵀ streaming traffic."""
    inst = attention_instance(16, 2)

    def run():
        small = attention_flash_prbp_schedule(inst, r=2 * 2 + 6).cost()
        large = attention_flash_prbp_schedule(inst, r=16 * 2 + 6).cost()
        return small, large

    small, large = benchmark(run)
    assert large < small


def bench_attention_table(benchmark):
    """The Theorem 6.11 table: bound vs flash-style strategy across cache sizes."""

    def build():
        rows = []
        for m, d, r in CASES:
            inst = attention_instance(m, d)
            cost = attention_flash_prbp_schedule(inst, r=r).cost()
            regime = "small (r<=d^2)" if r <= d * d else "large (r>d^2)"
            rows.append(
                [m, d, r, regime, inst.dag.trivial_cost(), attention_prbp_lower_bound(m, d, r), cost]
            )
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["m", "d", "r", "regime", "trivial", "PRBP lower bound", "flash-style strategy"],
            rows,
            title="Theorem 6.11 — attention I/O in PRBP",
        )
    )
    for *_, trivial, lower, cost in rows:
        assert max(trivial, lower) <= cost
