"""E05 — Proposition 4.6: the pebble collection gadget.

With ``d + 2`` red pebbles the gadget costs only the trivial amount (in both
games); a strategy that never gathers ``d + 2`` pebbles on it pays at least
``length / (2d)`` extra — demonstrated here by pebbling with a strictly
smaller cache.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.bounds.analytic import collection_io_lower_bound_without_full_pebbles
from repro.dags import pebble_collection_instance
from repro.solvers.greedy import topological_prbp_schedule
from repro.solvers.structured import collection_full_prbp_schedule, collection_full_rbp_schedule

CASES = [(2, 12), (3, 18), (4, 24)]


@pytest.mark.parametrize("d,length", CASES)
def bench_collection_full_pebbles(benchmark, d, length):
    """With d + 2 pebbles, only the trivial cost (both games)."""
    inst = pebble_collection_instance(d, length)

    def run():
        return collection_full_rbp_schedule(inst).cost(), collection_full_prbp_schedule(inst).cost()

    rbp, prbp = benchmark(run)
    assert rbp == prbp == inst.dag.trivial_cost()


@pytest.mark.parametrize("d,length", CASES)
def bench_collection_restricted_cache(benchmark, d, length):
    """With fewer than d + 2 pebbles the cost exceeds the Proposition 4.6 bound."""
    inst = pebble_collection_instance(d, length)
    cost = benchmark(lambda: topological_prbp_schedule(inst.dag, d + 1).cost())
    extra = cost - inst.dag.trivial_cost()
    assert extra >= collection_io_lower_bound_without_full_pebbles(d, length)


def bench_collection_table(benchmark):
    """Cost with full pebbles vs restricted cache vs the ℓ/(2d) bound."""

    def build():
        rows = []
        for d, length in CASES:
            inst = pebble_collection_instance(d, length)
            full = collection_full_prbp_schedule(inst).cost()
            restricted = topological_prbp_schedule(inst.dag, d + 1).cost()
            bound = collection_io_lower_bound_without_full_pebbles(d, length)
            rows.append([d, length, full, restricted, inst.dag.trivial_cost() + bound])
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["d", "length", "PRBP (r=d+2)", "PRBP (r=d+1)", "trivial + ℓ/(2d)"],
            rows,
            title="Proposition 4.6 — pebble collection gadget",
        )
    )
    for _, _, full, restricted, bound in rows:
        assert full < restricted and restricted >= bound
