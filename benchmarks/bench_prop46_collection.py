"""E05 — Proposition 4.6: the pebble collection gadget.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``prop4.6``): with ``d + 2`` red pebbles the gadget costs only the
trivial amount; one pebble short, the cost exceeds it by at least
``length / (2d)``.
"""

from _helpers import make_group_bench
from repro.bench import run_scenario

GROUP = "prop4.6"


bench_scenario = make_group_bench(GROUP)


def bench_prop46_penalty(benchmark):
    """Full pebbles: trivial cost.  One short: a strictly positive penalty."""

    def run():
        return (
            run_scenario("collection-full-pebbles", tier="quick"),
            run_scenario("collection-restricted-cache", tier="quick"),
        )

    full, restricted = benchmark(run)
    assert full.gap == 0 and full.optimal
    assert restricted.io_cost > full.io_cost
