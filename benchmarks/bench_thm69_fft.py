"""E08 — Theorem 6.9: FFT lower bound Ω(m·log m / log r) carries over to PRBP.

The blocked strategy's measured I/O and the S-dominator counting bound are
reported side by side; the achievable cost must dominate the bound and both
shrink as the cache grows.  Instances are dispatched through the unified
``repro.api`` facade — the ``fft`` family tag routes them to the blocked
strategy and each result already carries the best known lower bound.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.api import PebblingProblem, solve
from repro.bounds.analytic import fft_prbp_lower_bound
from repro.dags import fft_dag

CASES = [(16, 4), (32, 4), (64, 4), (32, 8), (64, 8), (64, 16)]


@pytest.mark.parametrize("m,r", CASES)
def bench_fft_blocked_strategy(benchmark, m, r):
    """Blocked PRBP strategy via the named registry solver: O(m log m / log r) I/O.

    Named dispatch pins the paper's strategy; the auto portfolio may pick
    greedy instead at small r, where Belady eviction genuinely beats the
    blocked schedule.
    """
    problem = PebblingProblem(fft_dag(m), r, game="prbp")
    result = benchmark(lambda: solve(problem, solver="fft-blocked"))
    assert result.solver == "fft-blocked"
    assert result.cost >= fft_prbp_lower_bound(m, r)
    assert result.lower_bound is not None and result.cost >= result.lower_bound


def bench_fft_table(benchmark):
    """The Theorem 6.9 table: measured blocked cost vs the best known lower bound."""

    def build():
        rows = []
        for m, r in CASES:
            res = solve(PebblingProblem(fft_dag(m), r, game="prbp"), solver="fft-blocked")
            rows.append([m, r, res.problem.trivial_cost, res.lower_bound, res.cost])
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["m", "r", "trivial", "best lower bound", "blocked strategy"],
            rows,
            title="Theorem 6.9 — FFT I/O in PRBP",
        )
    )
    for _, _, trivial, lower, cost in rows:
        assert max(trivial, lower) <= cost
    # growing the cache shrinks the measured cost (m = 64 rows)
    m64 = [cost for m, r, _, _, cost in rows if m == 64]
    assert m64 == sorted(m64, reverse=True)
