"""E08 — Theorem 6.9: FFT lower bound Ω(m·log m / log r) carries over to PRBP.

The blocked strategy's measured I/O and the S-dominator counting bound are
reported side by side; the achievable cost must dominate the bound and both
shrink as the cache grows (the crossover structure of the original RBP result
is preserved).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.bounds.analytic import fft_prbp_lower_bound
from repro.dags import fft_instance
from repro.solvers.structured import fft_blocked_prbp_schedule

CASES = [(16, 4), (32, 4), (64, 4), (32, 8), (64, 8), (64, 16)]


@pytest.mark.parametrize("m,r", CASES)
def bench_fft_blocked_strategy(benchmark, m, r):
    """Blocked PRBP strategy: O(m log m / log r) I/O, never below the Theorem 6.9 bound."""
    inst = fft_instance(m)
    cost = benchmark(lambda: fft_blocked_prbp_schedule(inst, r=r).cost())
    assert cost >= fft_prbp_lower_bound(m, r)
    assert cost >= inst.dag.trivial_cost()


def bench_fft_table(benchmark):
    """The Theorem 6.9 table: measured blocked cost vs the PRBP lower bound."""

    def build():
        rows = []
        for m, r in CASES:
            inst = fft_instance(m)
            cost = fft_blocked_prbp_schedule(inst, r=r).cost()
            rows.append([m, r, inst.dag.trivial_cost(), fft_prbp_lower_bound(m, r), cost])
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["m", "r", "trivial", "PRBP lower bound", "blocked strategy"],
            rows,
            title="Theorem 6.9 — FFT I/O in PRBP",
        )
    )
    for _, _, trivial, lower, cost in rows:
        assert max(trivial, lower) <= cost
    # growing the cache shrinks the measured cost (m = 64 rows)
    m64 = [cost for m, r, _, _, cost in rows if m == 64]
    assert m64 == sorted(m64, reverse=True)
