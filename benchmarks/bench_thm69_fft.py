"""E08 — Theorem 6.9: FFT lower bound Ω(m·log m / log r) carries over to PRBP.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``thm6.9``): the blocked butterfly strategy's measured I/O must
dominate the best known lower bound, and growing the cache must shrink it.
"""

from _helpers import make_group_bench
from repro.bench import run_scenario

GROUP = "thm6.9"


def _extra(record):
    assert record.solver_used == "fft-blocked"


bench_scenario = make_group_bench(GROUP, extra=_extra)


def bench_thm69_cache_scaling(benchmark):
    """A larger cache (log r in the denominator) strictly reduces the cost."""

    def run():
        return (
            run_scenario("fft-blocked-prbp", tier="quick"),
            run_scenario("fft-blocked-prbp-large-cache", tier="quick"),
        )

    small, large = benchmark(run)
    assert small.n == large.n  # same DAG, different cache
    assert large.io_cost < small.io_cost
