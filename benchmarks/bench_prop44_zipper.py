"""E03 — Proposition 4.4: the zipper gadget at r = d + 2.

RBP pays ``d`` loads per chain node (the resident source group alternates);
PRBP pre-aggregates one group's contribution and pays about 2 I/O per chain
node, which is cheaper as soon as ``d >= 3``.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.bounds.analytic import zipper_prbp_cost_estimate, zipper_rbp_cost_estimate
from repro.dags import zipper_instance
from repro.solvers.structured import zipper_prbp_schedule, zipper_rbp_schedule

CASES = [(3, 8), (4, 8), (5, 12), (6, 16)]


@pytest.mark.parametrize("d,length", CASES)
def bench_zipper_prbp(benchmark, d, length):
    """Two-phase PRBP strategy (≈ 2 I/O per chain node)."""
    inst = zipper_instance(d, length)
    cost = benchmark(lambda: zipper_prbp_schedule(inst).cost())
    assert cost == zipper_prbp_cost_estimate(d, length)


@pytest.mark.parametrize("d,length", CASES)
def bench_zipper_rbp(benchmark, d, length):
    """Alternating-group RBP strategy (d I/O per chain node)."""
    inst = zipper_instance(d, length)
    cost = benchmark(lambda: zipper_rbp_schedule(inst).cost())
    assert cost == zipper_rbp_cost_estimate(d, length)


def bench_zipper_table(benchmark):
    """Proposition 4.4's claim: PRBP < RBP whenever d >= 3."""

    def build():
        rows = []
        for d, length in CASES:
            inst = zipper_instance(d, length)
            rows.append(
                [d, length, zipper_prbp_schedule(inst).cost(), zipper_rbp_schedule(inst).cost()]
            )
        return rows

    rows = build()
    benchmark(build)
    print()
    print(
        format_table(
            ["d", "chain length", "PRBP", "RBP"],
            rows,
            title="Proposition 4.4 — zipper gadget at r = d + 2",
        )
    )
    for d, _, prbp, rbp in rows:
        assert prbp < rbp
