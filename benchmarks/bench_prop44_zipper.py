"""E03 — Proposition 4.4: the zipper gadget at r = d + 2.

Thin pytest-benchmark wrapper over the ``repro.bench`` scenario registry
(group ``prop4.4``): RBP pays ``d`` loads per chain node, PRBP pre-aggregates
one group's contribution and pays about 2 — cheaper as soon as ``d >= 3``.
"""

from _helpers import make_group_bench
from repro.bench import run_scenario

GROUP = "prop4.4"


bench_scenario = make_group_bench(GROUP)


def bench_prop44_separation(benchmark):
    """PRBP < RBP on the same zipper instance (d = 4 here, so the gap is real)."""

    def run():
        return (
            run_scenario("zipper-prbp", tier="quick"),
            run_scenario("zipper-rbp", tier="quick"),
        )

    prbp, rbp = benchmark(run)
    assert prbp.io_cost < rbp.io_cost
