"""Columnar schedule IR + replay kernel: engine-equivalent, without Move objects.

A schedule is stored as three parallel ``int32`` numpy columns — ``op``,
``node``, ``arg`` — plus a small header (DAG, capacity, game, variant,
description).  The encoding is *lossless* for both games:

========= ======================= =========================================
op code    RBP row                 PRBP row
========= ======================= =========================================
``0`` load    ``(0, v, -1)``         ``(0, v, -1)``
``1`` save    ``(1, v, -1)``         ``(1, v, -1)``
``2`` compute ``(2, v, slide|-1)``   ``(2, u, v)`` (partial compute on edge)
``3`` delete  ``(3, v, -1)``         ``(3, v, -1)``
``4`` clear   (illegal in RBP)       ``(4, v, -1)``
========= ======================= =========================================

:func:`from_schedule` / :func:`to_schedule` convert between the IR and the
:class:`~repro.core.strategy.RBPSchedule` / ``PRBPSchedule`` containers;
``to_schedule(from_schedule(s))`` reproduces the move list exactly.

The replay kernel reproduces every legality rule of the engines —
capacity, predecessor availability, one-shot / no-deletion / sliding
variant toggles — and is differentially tested against them move-for-move
(``tests/test_schedule_ir.py``): for any move sequence, legal or not, the
kernel's verdict (first illegal index, I/O at failure, final-state masks,
peak red usage, terminality) is identical to what ``RBPGame`` /
``PRBPGame`` produce.  The semantics stay *defined* by the engines; the
kernel is a proven-equivalent fast path.

Two execution strategies share those semantics:

* :func:`replay` / :func:`replay_io_cost` — a tuned scalar loop over plain
  int rows (no Move-object dispatch, no set churn); this is what the
  anytime refiner scores every mutation with.
* :func:`replay_many` — batched replay.  RBP batches over a common
  ``(dag, r, variant)`` run through a fully vectorized numpy kernel: all
  schedules are concatenated, every pebble transition becomes an absolute
  *event* keyed by ``(schedule, node, time)``, and each legality rule is
  evaluated for all moves of all schedules at once with sorted-event
  ``searchsorted`` queries and segmented reductions.  Optimistic event
  application is exact up to each schedule's first violation, and every
  rule check only consults state strictly before its own move, so the
  minimum flagged index equals the engine's first illegal move.  PRBP's
  four-valued pebble states make transitions depend on the pre-state,
  which defeats the absolute-event trick, so PRBP batches fall back to the
  scalar kernel per schedule.

The IR is also the interchange format of the cache and the wire protocol:
:func:`pack_arrays` / :func:`unpack_arrays` implement the shared base64
``int32`` little-endian codec, and :func:`ir_digest` fingerprints header +
columns for round-trip tests.
"""

from __future__ import annotations

import base64
import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .dag import ComputationalDAG
from .exceptions import IllegalMoveError, IncompletePebblingError
from .moves import MoveKind, PRBPMove, RBPMove
from .strategy import PRBPSchedule, RBPSchedule, ScheduleStats
from .variants import GameVariant

__all__ = [
    "OP_LOAD",
    "OP_SAVE",
    "OP_COMPUTE",
    "OP_DELETE",
    "OP_CLEAR",
    "OP_NAMES",
    "ScheduleIR",
    "ReplayOutcome",
    "from_schedule",
    "to_schedule",
    "encode_moves",
    "decode_moves",
    "replay",
    "replay_many",
    "replay_io_cost",
    "kernel_stats",
    "ir_digest",
    "pack_arrays",
    "unpack_arrays",
]

Schedule = Union[RBPSchedule, PRBPSchedule]
Move = Union[RBPMove, PRBPMove]
MoveRow = Tuple[int, int, int]

OP_LOAD = 0
OP_SAVE = 1
OP_COMPUTE = 2
OP_DELETE = 3
OP_CLEAR = 4

OP_NAMES = ("load", "save", "compute", "delete", "clear")

_OP_OF_KIND: Dict[MoveKind, int] = {
    MoveKind.LOAD: OP_LOAD,
    MoveKind.SAVE: OP_SAVE,
    MoveKind.COMPUTE: OP_COMPUTE,
    MoveKind.DELETE: OP_DELETE,
    MoveKind.CLEAR: OP_CLEAR,
}

_KIND_OF_OP: Tuple[MoveKind, ...] = (
    MoveKind.LOAD,
    MoveKind.SAVE,
    MoveKind.COMPUTE,
    MoveKind.DELETE,
    MoveKind.CLEAR,
)

_GAMES = ("rbp", "prbp")


# --------------------------------------------------------------------------- #
# per-DAG derived structures (cached: the refiner replays one DAG thousands
# of times, and rebuilding predecessor tables per replay would dominate)
# --------------------------------------------------------------------------- #


class _DagData:
    """Flat, index-friendly projections of one DAG, shared by both kernels."""

    __slots__ = (
        "n",
        "m",
        "preds",
        "pred_sets",
        "in_edges",
        "indeg",
        "outdeg",
        "is_source",
        "is_sink",
        "sinks",
        "edge_index",
        "src_np",
        "indeg_np",
        "pstart_np",
        "pflat_np",
        "nonsource_sinks_np",
    )

    def __init__(self, dag: ComputationalDAG) -> None:
        n = dag.n
        self.n = n
        self.m = dag.m
        self.preds: Tuple[Tuple[int, ...], ...] = tuple(
            dag.predecessors(v) for v in range(n)
        )
        self.pred_sets: Tuple[frozenset, ...] = tuple(
            frozenset(p) for p in self.preds
        )
        self.edge_index: Dict[Tuple[int, int], int] = {
            edge: eid for eid, edge in enumerate(dag.edges)
        }
        self.in_edges: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            tuple((u, self.edge_index[(u, v)]) for u in self.preds[v])
            for v in range(n)
        )
        self.indeg: List[int] = [dag.in_degree(v) for v in range(n)]
        self.outdeg: List[int] = [dag.out_degree(v) for v in range(n)]
        self.is_source = bytearray(n)
        for v in dag.sources:
            self.is_source[v] = 1
        self.is_sink = bytearray(n)
        for v in dag.sinks:
            self.is_sink[v] = 1
        self.sinks: Tuple[int, ...] = dag.sinks
        self.src_np = np.zeros(n, dtype=bool)
        self.src_np[list(dag.sources)] = True
        self.indeg_np = np.asarray(self.indeg, dtype=np.int64)
        self.pstart_np = np.concatenate(
            ([0], np.cumsum(self.indeg_np))
        ).astype(np.int64)
        self.pflat_np = np.asarray(
            [u for v in range(n) for u in self.preds[v]], dtype=np.int64
        )
        self.nonsource_sinks_np = np.asarray(
            [v for v in dag.sinks if not self.is_source[v]], dtype=np.int64
        )


_DAG_DATA_CACHE: "OrderedDict[int, Tuple[ComputationalDAG, _DagData]]" = OrderedDict()
_DAG_DATA_CACHE_SIZE = 32


def _dag_data(dag: ComputationalDAG) -> _DagData:
    key = id(dag)
    hit = _DAG_DATA_CACHE.get(key)
    if hit is not None and hit[0] is dag:
        _DAG_DATA_CACHE.move_to_end(key)
        return hit[1]
    data = _DagData(dag)
    _DAG_DATA_CACHE[key] = (dag, data)
    _DAG_DATA_CACHE.move_to_end(key)
    while len(_DAG_DATA_CACHE) > _DAG_DATA_CACHE_SIZE:
        _DAG_DATA_CACHE.popitem(last=False)
    return data


# --------------------------------------------------------------------------- #
# IR container and converters
# --------------------------------------------------------------------------- #


@dataclass(frozen=True, eq=False)
class ScheduleIR:
    """A schedule as three parallel int32 columns plus its header.

    ``op[i]``/``node[i]``/``arg[i]`` describe move ``i`` per the table in
    the module docstring.  The columns are read-only by convention — every
    consumer treats an IR as immutable (the digest would drift otherwise).
    """

    game: str
    dag: ComputationalDAG
    r: int
    variant: GameVariant
    op: np.ndarray
    node: np.ndarray
    arg: np.ndarray
    description: str = ""

    def __len__(self) -> int:
        return int(self.op.shape[0])

    @property
    def n(self) -> int:
        return self.dag.n


def _as_column(values: Sequence[int]) -> np.ndarray:
    return np.asarray(values, dtype=np.int32)


def encode_moves(game: str, moves: Iterable[Move]) -> List[MoveRow]:
    """Moves -> ``(op, node, arg)`` int rows (the refiner's working form).

    The mapping is a bijection: ``decode_moves(game, encode_moves(game,
    moves))`` reproduces ``moves`` exactly, so row tuples can stand in for
    Move objects anywhere identity matters (candidate signatures, dedup).
    """
    rows: List[MoveRow] = []
    if game == "rbp":
        for mv in moves:
            slide = mv.slide_from  # type: ignore[union-attr]
            rows.append((_OP_OF_KIND[mv.kind], mv.node, -1 if slide is None else slide))  # type: ignore[arg-type]
    else:
        for mv in moves:
            if mv.kind is MoveKind.COMPUTE:
                u, v = mv.edge  # type: ignore[union-attr, misc]
                rows.append((OP_COMPUTE, u, v))
            else:
                rows.append((_OP_OF_KIND[mv.kind], mv.node, -1))  # type: ignore[arg-type]
    return rows


def decode_moves(game: str, rows: Iterable[Sequence[int]]) -> List[Move]:
    """``(op, node, arg)`` rows -> Move objects; raises ``ValueError`` on malformed rows."""
    moves: List[Move] = []
    for row in rows:
        op, x, y = int(row[0]), int(row[1]), int(row[2])
        if not 0 <= op < len(_KIND_OF_OP):
            raise ValueError(f"unknown op code {op}")
        kind = _KIND_OF_OP[op]
        if game == "rbp":
            moves.append(RBPMove(kind, x, None if y < 0 else y))
        elif op == OP_COMPUTE:
            if y < 0:
                raise ValueError(f"a PRBP compute row needs an edge head, got arg={y}")
            moves.append(PRBPMove(kind, edge=(x, y)))
        else:
            if y != -1:
                raise ValueError(f"a PRBP {kind.value} row must carry arg=-1, got {y}")
            moves.append(PRBPMove(kind, node=x))
    return moves


def _validate_rows(game: str, n: int, rows: Sequence[MoveRow]) -> None:
    for i, (op, x, y) in enumerate(rows):
        if not 0 <= op < len(_KIND_OF_OP):
            raise ValueError(f"move {i}: unknown op code {op}")
        if not 0 <= x < n:
            raise ValueError(f"move {i}: node {x} out of range (n = {n})")
        if game == "rbp":
            if op == OP_COMPUTE:
                if not -1 <= y < n:
                    raise ValueError(f"move {i}: slide_from {y} out of range (n = {n})")
            elif y != -1:
                raise ValueError(f"move {i}: {OP_NAMES[op]} rows must carry arg=-1, got {y}")
        else:
            if op == OP_COMPUTE:
                # a non-edge (u, v) stays representable — it is an *illegal
                # move* (the engine refuses it at replay time), not a
                # malformed row — but both endpoints must be real nodes
                if not 0 <= y < n:
                    raise ValueError(f"move {i}: edge head {y} out of range (n = {n})")
            elif y != -1:
                raise ValueError(f"move {i}: {OP_NAMES[op]} rows must carry arg=-1, got {y}")


def _validate_columns(
    game: str, n: int, op: np.ndarray, node: np.ndarray, arg: np.ndarray
) -> None:
    """Vectorized :func:`_validate_rows` over whole columns (the hot wire path).

    Raises the same ``ValueError`` messages, pinned to the *first* offending
    row, without a per-row Python loop.
    """
    # fast path: one fused check for the overwhelmingly-common all-valid case;
    # the per-rule scans below only run to pin down the error message
    is_comp = op == OP_COMPUTE
    arg_lo = -1 if game == "rbp" else 0
    if not (
        (op < 0)
        | (op >= len(_KIND_OF_OP))
        | (node < 0)
        | (node >= n)
        | np.where(is_comp, (arg < arg_lo) | (arg >= n), arg != -1)
    ).any():
        return
    bad = (op < 0) | (op >= len(_KIND_OF_OP))
    if bad.any():
        i = int(np.argmax(bad))
        raise ValueError(f"move {i}: unknown op code {int(op[i])}")
    bad = (node < 0) | (node >= n)
    if bad.any():
        i = int(np.argmax(bad))
        raise ValueError(f"move {i}: node {int(node[i])} out of range (n = {n})")
    if game == "rbp":
        bad = is_comp & ((arg < -1) | (arg >= n))
        if bad.any():
            i = int(np.argmax(bad))
            raise ValueError(
                f"move {i}: slide_from {int(arg[i])} out of range (n = {n})"
            )
    else:
        bad = is_comp & ((arg < 0) | (arg >= n))
        if bad.any():
            i = int(np.argmax(bad))
            raise ValueError(
                f"move {i}: edge head {int(arg[i])} out of range (n = {n})"
            )
    bad = ~is_comp & (arg != -1)
    if bad.any():
        i = int(np.argmax(bad))
        raise ValueError(
            f"move {i}: {OP_NAMES[int(op[i])]} rows must carry arg=-1, got {int(arg[i])}"
        )


def from_schedule(schedule: Schedule) -> ScheduleIR:
    """Encode an ``RBPSchedule`` / ``PRBPSchedule`` losslessly into columns.

    Node ids are range-checked (the columnar kernels index flat per-node
    tables, so an out-of-range id is unrepresentable — the engines treat it
    as an illegal move; here it is a ``ValueError`` at encode time).
    Illegal-but-representable schedules pass through unchanged: legality is
    the replay kernel's job, not the encoder's.
    """
    game = "rbp" if isinstance(schedule, RBPSchedule) else "prbp"
    rows = encode_moves(game, schedule.moves)
    _validate_rows(game, schedule.dag.n, rows)
    if rows:
        op, node, arg = (list(col) for col in zip(*rows))
    else:
        op, node, arg = [], [], []
    return ScheduleIR(
        game=game,
        dag=schedule.dag,
        r=int(schedule.r),
        variant=schedule.variant,
        op=_as_column(op),
        node=_as_column(node),
        arg=_as_column(arg),
        description=schedule.description,
    )


def to_schedule(ir: ScheduleIR) -> Schedule:
    """Decode an IR back into the Move-object schedule container."""
    rows = zip(ir.op.tolist(), ir.node.tolist(), ir.arg.tolist())
    moves = decode_moves(ir.game, rows)
    if ir.game == "rbp":
        return RBPSchedule(
            ir.dag,
            ir.r,
            [mv for mv in moves if isinstance(mv, RBPMove)],
            variant=ir.variant,
            description=ir.description,
        )
    return PRBPSchedule(
        ir.dag,
        ir.r,
        [mv for mv in moves if isinstance(mv, PRBPMove)],
        variant=ir.variant,
        description=ir.description,
    )


def ir_digest(ir: ScheduleIR) -> str:
    """Hex SHA-256 of the IR's header + columns (byte-exact identity)."""
    h = hashlib.sha256()
    h.update(
        repr((ir.game, ir.dag.n, ir.r, ir.variant, ir.description, len(ir))).encode()
    )
    for column in (ir.op, ir.node, ir.arg):
        h.update(np.ascontiguousarray(column, dtype="<i4").tobytes())
    return h.hexdigest()


# --------------------------------------------------------------------------- #
# wire / cache codec for the columns
# --------------------------------------------------------------------------- #


def _b64_encode(column: np.ndarray) -> str:
    return base64.b64encode(
        np.ascontiguousarray(column, dtype="<i4").tobytes()
    ).decode("ascii")


def _b64_decode(text: object, count: int, field: str) -> np.ndarray:
    if not isinstance(text, str):
        raise ValueError(f"schedule column {field!r} must be a base64 string")
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:
        raise ValueError(f"schedule column {field!r} is not valid base64: {exc}") from exc
    if len(raw) != 4 * count:
        raise ValueError(
            f"schedule column {field!r} holds {len(raw)} bytes, expected {4 * count}"
        )
    return np.frombuffer(raw, dtype="<i4").astype(np.int32)


def pack_arrays(ir: ScheduleIR) -> Dict[str, object]:
    """The IR's columns as the compact JSON-safe payload used on disk and wire."""
    return {
        "count": len(ir),
        "ops": _b64_encode(ir.op),
        "nodes": _b64_encode(ir.node),
        "args": _b64_encode(ir.arg),
    }


def unpack_arrays(doc: object) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode a :func:`pack_arrays` payload; raises ``ValueError`` when malformed."""
    if not isinstance(doc, dict):
        raise ValueError("packed schedule columns must be an object")
    count = doc.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        raise ValueError("packed schedule 'count' must be a non-negative integer")
    op = _b64_decode(doc.get("ops"), count, "ops")
    node = _b64_decode(doc.get("nodes"), count, "nodes")
    arg = _b64_decode(doc.get("args"), count, "args")
    return op, node, arg


def ir_from_arrays(
    game: str,
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant,
    op: np.ndarray,
    node: np.ndarray,
    arg: np.ndarray,
    description: str = "",
) -> ScheduleIR:
    """Assemble and *validate* an IR from untrusted columns (cache / wire)."""
    if game not in _GAMES:
        raise ValueError(f"game must be one of {_GAMES}, got {game!r}")
    op, node, arg = _as_column(op), _as_column(node), _as_column(arg)
    _validate_columns(game, dag.n, op, node, arg)
    return ScheduleIR(
        game=game,
        dag=dag,
        r=int(r),
        variant=variant,
        op=_as_column(op),
        node=_as_column(node),
        arg=_as_column(arg),
        description=description,
    )


# --------------------------------------------------------------------------- #
# replay outcome
# --------------------------------------------------------------------------- #


@dataclass
class ReplayOutcome:
    """What one replay established — verdict, cost, and final-state masks.

    ``failed_at`` is the index of the first illegal move (``None`` when
    every move applied); ``io_cost`` counts the I/O performed *before* that
    index, exactly like the engine's ``io_cost`` at raise time.  The masks
    describe the configuration after the last successfully applied move:
    ``red``/``blue``/``computed`` (RBP) or ``state``/``marked`` (PRBP).
    """

    legal: bool
    terminal: bool
    failed_at: Optional[int]
    io_cost: int
    compute_cost_total: float
    peak_red: int
    red: Optional[np.ndarray] = None
    blue: Optional[np.ndarray] = None
    computed: Optional[np.ndarray] = None
    state: Optional[np.ndarray] = None
    marked: Optional[np.ndarray] = None

    @property
    def ok(self) -> bool:
        """True iff the schedule replays legally *and* finishes the pebbling."""
        return self.legal and self.terminal

    @property
    def total_cost(self) -> float:
        return self.io_cost + self.compute_cost_total


# --------------------------------------------------------------------------- #
# scalar kernels (single-schedule fast path; also the PRBP batch fallback)
# --------------------------------------------------------------------------- #


def _rbp_scalar(
    data: _DagData,
    r: int,
    variant: GameVariant,
    rows: Sequence[MoveRow],
) -> ReplayOutcome:
    n = data.n
    red = bytearray(n)
    blue = bytearray(n)
    computed = bytearray(n)
    is_source = data.is_source
    for v in range(n):
        blue[v] = is_source[v]
    preds = data.preds
    pred_sets = data.pred_sets
    allow_delete = variant.allow_delete
    allow_sliding = variant.allow_sliding
    one_shot = variant.one_shot
    io = 0
    rc = 0
    peak = 0
    computes = 0
    failed: Optional[int] = None
    for i, (op, x, y) in enumerate(rows):
        if op == 0:  # load
            if not blue[x]:
                failed = i
                break
            if not red[x]:
                if rc >= r:
                    failed = i
                    break
                red[x] = 1
                rc += 1
                if rc > peak:
                    peak = rc
            io += 1
        elif op == 1:  # save
            if not red[x]:
                failed = i
                break
            blue[x] = 1
            if not allow_delete:
                red[x] = 0
                rc -= 1
            io += 1
        elif op == 2:  # compute
            if is_source[x]:
                failed = i
                break
            if one_shot and computed[x]:
                failed = i
                break
            ok = True
            for u in preds[x]:
                if not red[u]:
                    ok = False
                    break
            if not ok:
                failed = i
                break
            if y >= 0:  # sliding compute
                if not allow_sliding or y not in pred_sets[x]:
                    failed = i
                    break
                if red[y]:
                    red[y] = 0
                    rc -= 1
                if not red[x]:
                    red[x] = 1
                    rc += 1
                    if rc > peak:
                        peak = rc
            else:
                if not red[x]:
                    if rc >= r:
                        failed = i
                        break
                    red[x] = 1
                    rc += 1
                    if rc > peak:
                        peak = rc
            computed[x] = 1
            computes += 1
        elif op == 3:  # delete
            if not allow_delete or not red[x]:
                failed = i
                break
            red[x] = 0
            rc -= 1
        else:  # clear (and any other op) is not part of RBP
            failed = i
            break
    terminal = failed is None and all(blue[v] for v in data.sinks)
    return ReplayOutcome(
        legal=failed is None,
        terminal=terminal,
        failed_at=failed,
        io_cost=io,
        compute_cost_total=computes * variant.compute_cost,
        peak_red=peak,
        red=np.frombuffer(bytes(red), dtype=np.uint8).astype(bool),
        blue=np.frombuffer(bytes(blue), dtype=np.uint8).astype(bool),
        computed=np.frombuffer(bytes(computed), dtype=np.uint8).astype(bool),
    )


def _prbp_scalar(
    data: _DagData,
    r: int,
    variant: GameVariant,
    rows: Sequence[MoveRow],
) -> ReplayOutcome:
    # states mirror PRBPState: 0 NONE, 1 BLUE, 2 BLUE_LIGHT_RED, 3 DARK_RED
    n = data.n
    state = bytearray(n)
    is_source = data.is_source
    for v in range(n):
        if is_source[v]:
            state[v] = 1
    marked = bytearray(data.m)
    edge_computes = [0] * data.m
    marked_in = [0] * n
    marked_out = [0] * n
    indeg = data.indeg
    outdeg = data.outdeg
    is_sink = data.is_sink
    in_edges = data.in_edges
    edge_index = data.edge_index
    allow_delete = variant.allow_delete
    one_shot = variant.one_shot
    base_compute_cost = variant.compute_cost
    split = variant.split_compute_cost
    io = 0
    rc = 0
    peak = 0
    compute_cost_total = 0.0
    failed: Optional[int] = None
    for i, (op, x, y) in enumerate(rows):
        if op == 0:  # load
            st = state[x]
            if st != 1 and st != 2:
                failed = i
                break
            if st == 1:
                if rc >= r:
                    failed = i
                    break
                state[x] = 2
                rc += 1
                if rc > peak:
                    peak = rc
            io += 1
        elif op == 1:  # save
            if state[x] != 3:
                failed = i
                break
            state[x] = 2
            io += 1
        elif op == 2:  # partial compute on edge (x, y)
            eid = edge_index.get((x, y), -1)
            if eid < 0 or marked[eid]:
                failed = i
                break
            if one_shot and edge_computes[eid] >= 1:
                failed = i
                break
            if marked_in[x] != indeg[x]:
                failed = i
                break
            stu = state[x]
            if stu != 2 and stu != 3:
                failed = i
                break
            stv = state[y]
            if stv == 1:
                failed = i
                break
            if stv == 0:
                if rc >= r:
                    failed = i
                    break
                rc += 1
                if rc > peak:
                    peak = rc
            state[y] = 3
            marked[eid] = 1
            edge_computes[eid] += 1
            marked_in[y] += 1
            marked_out[x] += 1
            if base_compute_cost:
                cost = base_compute_cost
                if split:
                    cost /= indeg[y]
                compute_cost_total += cost
        elif op == 3:  # delete
            st = state[x]
            if st == 2:
                state[x] = 1
                rc -= 1
            elif st == 3:
                if (
                    not allow_delete
                    or marked_out[x] != outdeg[x]
                    or marked_in[x] != indeg[x]
                ):
                    failed = i
                    break
                state[x] = 0
                rc -= 1
            else:
                failed = i
                break
        elif op == 4:  # clear
            if one_shot or is_source[x] or is_sink[x]:
                failed = i
                break
            st = state[x]
            if st == 2 or st == 3:
                rc -= 1
            state[x] = 0
            for u, eid in in_edges[x]:
                if marked[eid]:
                    marked[eid] = 0
                    marked_in[x] -= 1
                    marked_out[u] -= 1
        else:  # pragma: no cover — op codes are exhaustive after validation
            failed = i
            break
    terminal = (
        failed is None
        and all(marked)
        and all(state[v] == 1 or state[v] == 2 for v in data.sinks)
    )
    return ReplayOutcome(
        legal=failed is None,
        terminal=terminal,
        failed_at=failed,
        io_cost=io,
        compute_cost_total=compute_cost_total,
        peak_red=peak,
        state=np.frombuffer(bytes(state), dtype=np.uint8),
        marked=np.frombuffer(bytes(marked), dtype=np.uint8).astype(bool),
    )


def replay_io_cost(
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant,
    game: str,
    rows: Sequence[MoveRow],
) -> Optional[int]:
    """I/O cost of a candidate row list, or ``None`` unless it replays legally
    *and* terminally — the kernel twin of the refiner's engine replay.

    This is the mutation-scoring hot path: a stripped copy of the scalar
    kernels that skips outcome construction and exits at the first illegal
    move.  Rows must use in-range node ids (the refiner's rows come from
    encoded schedules, which guarantees it).
    """
    data = _dag_data(dag)
    n = data.n
    if game == "rbp":
        red = bytearray(n)
        blue = bytearray(n)
        computed = bytearray(n)
        is_source = data.is_source
        for v in range(n):
            blue[v] = is_source[v]
        preds = data.preds
        pred_sets = data.pred_sets
        allow_delete = variant.allow_delete
        allow_sliding = variant.allow_sliding
        one_shot = variant.one_shot
        io = 0
        rc = 0
        for op, x, y in rows:
            if op == 0:
                if not blue[x]:
                    return None
                if not red[x]:
                    if rc >= r:
                        return None
                    red[x] = 1
                    rc += 1
                io += 1
            elif op == 1:
                if not red[x]:
                    return None
                blue[x] = 1
                if not allow_delete:
                    red[x] = 0
                    rc -= 1
                io += 1
            elif op == 2:
                if is_source[x] or (one_shot and computed[x]):
                    return None
                for u in preds[x]:
                    if not red[u]:
                        return None
                if y >= 0:
                    if not allow_sliding or y not in pred_sets[x]:
                        return None
                    if red[y]:
                        red[y] = 0
                        rc -= 1
                    if not red[x]:
                        red[x] = 1
                        rc += 1
                elif not red[x]:
                    if rc >= r:
                        return None
                    red[x] = 1
                    rc += 1
                computed[x] = 1
            elif op == 3:
                if not allow_delete or not red[x]:
                    return None
                red[x] = 0
                rc -= 1
            else:
                return None
        for v in data.sinks:
            if not blue[v]:
                return None
        return io

    state = bytearray(n)
    is_source = data.is_source
    for v in range(n):
        if is_source[v]:
            state[v] = 1
    marked = bytearray(data.m)
    edge_computes = [0] * data.m
    marked_in = [0] * n
    marked_out = [0] * n
    indeg = data.indeg
    outdeg = data.outdeg
    is_sink = data.is_sink
    in_edges = data.in_edges
    edge_index = data.edge_index
    allow_delete = variant.allow_delete
    one_shot = variant.one_shot
    io = 0
    rc = 0
    for op, x, y in rows:
        if op == 0:
            st = state[x]
            if st != 1 and st != 2:
                return None
            if st == 1:
                if rc >= r:
                    return None
                state[x] = 2
                rc += 1
            io += 1
        elif op == 1:
            if state[x] != 3:
                return None
            state[x] = 2
            io += 1
        elif op == 2:
            eid = edge_index.get((x, y), -1)
            if eid < 0 or marked[eid]:
                return None
            if one_shot and edge_computes[eid] >= 1:
                return None
            if marked_in[x] != indeg[x]:
                return None
            stu = state[x]
            if stu != 2 and stu != 3:
                return None
            stv = state[y]
            if stv == 1:
                return None
            if stv == 0:
                if rc >= r:
                    return None
                rc += 1
            state[y] = 3
            marked[eid] = 1
            edge_computes[eid] += 1
            marked_in[y] += 1
            marked_out[x] += 1
        elif op == 3:
            st = state[x]
            if st == 2:
                state[x] = 1
                rc -= 1
            elif st == 3:
                if (
                    not allow_delete
                    or marked_out[x] != outdeg[x]
                    or marked_in[x] != indeg[x]
                ):
                    return None
                state[x] = 0
                rc -= 1
            else:
                return None
        elif op == 4:
            if one_shot or is_source[x] or is_sink[x]:
                return None
            st = state[x]
            if st == 2 or st == 3:
                rc -= 1
            state[x] = 0
            for u, eid in in_edges[x]:
                if marked[eid]:
                    marked[eid] = 0
                    marked_in[x] -= 1
                    marked_out[u] -= 1
        else:
            return None
    if not all(marked):
        return None
    for v in data.sinks:
        if state[v] != 1 and state[v] != 2:
            return None
    return io


# --------------------------------------------------------------------------- #
# vectorized batched RBP replay
# --------------------------------------------------------------------------- #


def _any_event_before(
    sorted_keys: np.ndarray, key_m: int, qg: np.ndarray, qt: np.ndarray
) -> np.ndarray:
    """For each query: does ``sorted_keys`` hold an event on ``qg`` with time < ``qt``?"""
    if sorted_keys.size == 0:
        return np.zeros(qg.shape[0], dtype=bool)
    lo = np.searchsorted(sorted_keys, qg * key_m, side="left")
    inb = lo < sorted_keys.size
    safe = np.where(inb, lo, 0)
    return inb & (sorted_keys[safe] < qg * key_m + qt)


def _rbp_batch(
    data: _DagData,
    r: int,
    variant: GameVariant,
    irs: Sequence[ScheduleIR],
    masks: bool = True,
) -> List[ReplayOutcome]:
    """Replay a batch of RBP schedules over one ``(dag, r, variant)`` at once.

    Optimistic simulation: every move's pebble effect is applied
    unconditionally as an absolute timestamped event on its ``(schedule,
    node)`` key; each legality rule is then checked for all moves at once
    against the event log.  Events from moves at or after a schedule's
    first violation can only corrupt *later* state, and every rule reads
    state strictly before its own move, so the minimum flagged index per
    schedule equals the engine's first illegal move — states and costs
    before it are exact.
    """
    n = data.n
    lens = np.asarray([len(ir) for ir in irs], dtype=np.int64)
    B = len(irs)
    M = int(lens.sum())
    sink_count = int(data.nonsource_sinks_np.size)
    if M == 0:
        empty_terminal = sink_count == 0
        return [
            ReplayOutcome(
                legal=True,
                terminal=empty_terminal,
                failed_at=None,
                io_cost=0,
                compute_cost_total=0.0,
                peak_red=0,
                red=np.zeros(n, dtype=bool) if masks else None,
                blue=data.src_np.copy() if masks else None,
                computed=np.zeros(n, dtype=bool) if masks else None,
            )
            for _ in irs
        ]
    # key(gnode, time) = gnode * (M + 1) + time; int32 when the key space fits
    # (radix sort + binary search run noticeably faster on the narrow type)
    key_m = M + 1
    dt = np.int32 if B * n * key_m < 2**31 - 1 else np.int64
    O = np.concatenate([ir.op for ir in irs]).astype(dt, copy=False)
    V = np.concatenate([ir.node for ir in irs]).astype(dt, copy=False)
    S = np.concatenate([ir.arg for ir in irs]).astype(dt, copy=False)
    starts = np.zeros(B + 1, dtype=np.int64)
    np.cumsum(lens, out=starts[1:])
    sid = np.repeat(np.arange(B, dtype=dt), lens)
    t = np.arange(M, dtype=dt)
    g = sid * dt(n) + V

    allow_delete = variant.allow_delete
    allow_sliding = variant.allow_sliding
    one_shot = variant.one_shot

    is_load = O == OP_LOAD
    is_save = O == OP_SAVE
    is_comp = O == OP_COMPUTE
    is_del = O == OP_DELETE
    is_slide = is_comp & (S >= 0)
    bad_op = O > OP_DELETE

    key = g * dt(key_m) + t  # every move's own (gnode, time) key, reused throughout

    # ---- red-pebble event log (optimistic application of every move)
    ev_mask = is_load | is_comp | is_del if allow_delete else ~bad_op
    ev_idx = np.nonzero(ev_mask)[0]
    n_move_events = ev_idx.size
    ev_keys_raw = key[ev_idx]
    ev_g_raw = g[ev_idx]
    ev_on_raw = (is_load | is_comp)[ev_idx].astype(np.int8)
    slide_idx = np.nonzero(is_slide)[0]
    if slide_idx.size:
        slide_g = sid[slide_idx] * dt(n) + S[slide_idx]
        ev_keys_raw = np.concatenate([ev_keys_raw, slide_g * dt(key_m) + t[slide_idx]])
        ev_g_raw = np.concatenate([ev_g_raw, slide_g])
        ev_on_raw = np.concatenate([ev_on_raw, np.zeros(slide_idx.size, dtype=np.int8)])
    order = np.argsort(ev_keys_raw, kind="stable")
    ev_keys = ev_keys_raw[order]
    ev_vals = ev_on_raw[order]
    ev_gs = ev_g_raw[order]

    def red_before_keys(qkeys: np.ndarray, qg: np.ndarray) -> np.ndarray:
        if ev_keys.size == 0:
            return np.zeros(qkeys.shape[0], dtype=bool)
        idx = np.searchsorted(ev_keys, qkeys, side="left") - 1
        ok = idx >= 0
        safe = np.where(ok, idx, 0)
        return ok & (ev_gs[safe] == qg) & (ev_vals[safe] == 1)

    def red_before(qg: np.ndarray, qt: np.ndarray) -> np.ndarray:
        return red_before_keys(qg * dt(key_m) + qt, qg)

    # red just before each *event* needs no search: it is the value of the
    # previous event on the same gnode in sort order (keys are unique per
    # (gnode, time), so the sort order is the per-gnode timeline)
    prev_red_sorted = np.zeros(ev_keys.size, dtype=bool)
    if ev_keys.size > 1:
        prev_red_sorted[1:] = (ev_gs[1:] == ev_gs[:-1]) & (ev_vals[:-1] == 1)
    inv = np.empty(order.size, dtype=np.int64)
    inv[order] = np.arange(order.size, dtype=np.int64)
    prev_red = prev_red_sorted[inv]
    rbs = np.zeros(M, dtype=bool)  # is each move's own node red just before it?
    rbs[ev_idx] = prev_red[:n_move_events]
    src_red = prev_red[n_move_events:]  # slide sources, aligned with slide_idx

    # the only non-event moves whose red state matters are saves when deletes
    # are allowed (otherwise saves are events themselves); their binary search
    # is fused with the compute-predecessor queries into one call
    comp_idx = np.nonzero(is_comp)[0]
    pred_total = 0
    if comp_idx.size:
        pred_counts = data.indeg_np[V[comp_idx]]
        pred_total = int(pred_counts.sum())
    save_q = np.nonzero(is_save)[0] if allow_delete else np.empty(0, dtype=np.int64)
    q_keys = []
    q_g = []
    if save_q.size:
        q_keys.append(key[save_q])
        q_g.append(g[save_q])
    if pred_total:
        seg_end = np.cumsum(pred_counts)
        seg_start = seg_end - pred_counts
        flat = (
            np.arange(pred_total, dtype=np.int64)
            - np.repeat(seg_start, pred_counts)
            + np.repeat(data.pstart_np[V[comp_idx]], pred_counts)
        )
        pred_nodes = data.pflat_np[flat].astype(dt, copy=False)
        pg = np.repeat(sid[comp_idx], pred_counts) * dt(n) + pred_nodes
        q_keys.append(pg * dt(key_m) + np.repeat(t[comp_idx], pred_counts))
        q_g.append(pg)
    pred_red = np.empty(0, dtype=bool)
    if q_keys:
        red_extra = red_before_keys(np.concatenate(q_keys), np.concatenate(q_g))
        if save_q.size:
            rbs[save_q] = red_extra[: save_q.size]
        pred_red = red_extra[save_q.size :]

    # ---- capacity: per-move red-count delta, prefix-summed per schedule
    delta = np.zeros(M, dtype=np.int64)
    plain_add = is_load | (is_comp & ~is_slide)
    delta[plain_add] = 1 - rbs[plain_add]
    if slide_idx.size:
        delta[slide_idx] = (1 - rbs[slide_idx].astype(np.int64)) - src_red.astype(
            np.int64
        )
    delta[is_del] = -rbs[is_del].astype(np.int64)
    if not allow_delete:
        delta[is_save] = -rbs[is_save].astype(np.int64)
    counts = np.cumsum(delta)
    padded = np.concatenate(([0], counts))
    count_after = counts - np.repeat(padded[starts[:-1]], lens)
    # the engine checks capacity only where it places a *new* red pebble
    viol = plain_add & ~rbs & (count_after > r)

    # ---- blue availability (loads) — a node is blue iff source or saved before
    save_keys = np.sort(key[is_save])
    load_idx = np.nonzero(is_load)[0]
    if save_keys.size:
        lo = np.searchsorted(save_keys, g[load_idx] * dt(key_m), side="left")
        inb = lo < save_keys.size
        safe = np.where(inb, lo, 0)
        blue_at_load = data.src_np[V[load_idx]] | (
            inb & (save_keys[safe] < key[load_idx])
        )
    else:
        blue_at_load = data.src_np[V[load_idx]]
    viol[load_idx[~blue_at_load]] = True

    # ---- saves/deletes need the node red; deletes also need the variant
    viol |= is_save & ~rbs
    viol |= is_del if not allow_delete else is_del & ~rbs
    viol |= bad_op

    # ---- computes: non-source, one-shot, all predecessors red, slide rules
    viol |= is_comp & data.src_np[V]
    if one_shot and comp_idx.size:
        corder = np.argsort(key[comp_idx], kind="stable")
        cg = g[comp_idx][corder]
        dup = np.zeros(comp_idx.size, dtype=bool)
        dup[1:] = cg[1:] == cg[:-1]
        viol[comp_idx[corder][dup]] = True
    if pred_total:
        nz = pred_counts > 0
        all_red = np.ones(comp_idx.size, dtype=bool)
        if nz.any():
            mins = np.minimum.reduceat(pred_red.astype(np.int8), seg_start[nz])
            all_red[nz] = mins.astype(bool)
        viol[comp_idx[~all_red]] = True
    if slide_idx.size:
        if not allow_sliding:
            viol[slide_idx] = True
        else:
            pred_sets = data.pred_sets
            v_list = V[slide_idx].tolist()
            s_list = S[slide_idx].tolist()
            for k, (v, s) in enumerate(zip(v_list, s_list)):
                if s not in pred_sets[v]:
                    viol[slide_idx[k]] = True

    # ---- first violation per schedule; everything downstream is prefix math
    viol_t = np.where(viol, t, M)
    fail_abs = np.full(B, M, dtype=np.int64)
    nonempty = lens > 0
    if nonempty.any():
        fail_abs[nonempty] = np.minimum.reduceat(viol_t, starts[:-1][nonempty])
    legal = fail_abs >= starts[1:]
    end_abs = np.minimum(fail_abs, starts[1:])
    failed_local = np.where(legal, -1, fail_abs - starts[:-1])

    io_cum = np.concatenate(([0], np.cumsum((O <= OP_SAVE).astype(np.int64))))
    io_counts = io_cum[end_abs] - io_cum[starts[:-1]]
    comp_cum = np.concatenate(([0], np.cumsum(is_comp.astype(np.int64))))
    comp_counts = comp_cum[end_abs] - comp_cum[starts[:-1]]

    effective = np.where(t < np.repeat(end_abs, lens), count_after, -1)
    peaks = np.zeros(B, dtype=np.int64)
    if nonempty.any():
        peaks[nonempty] = np.maximum.reduceat(effective, starts[:-1][nonempty])
    peaks = np.maximum(peaks, 0)

    # ---- round 2 (needs end_abs): terminality, and — only when asked for —
    # the final-state masks, with all save-log queries fused into one call
    if sink_count:
        sink_g = (
            np.arange(B, dtype=dt)[:, None] * dt(n)
            + data.nonsource_sinks_np.astype(dt)[None, :]
        ).ravel()
        sink_t = np.repeat(end_abs.astype(dt), sink_count)
    if masks:
        all_nodes = np.arange(n, dtype=dt)
        all_g = (np.arange(B, dtype=dt)[:, None] * dt(n) + all_nodes[None, :]).ravel()
        all_t = np.repeat(end_abs.astype(dt), n)
        comp_keys = np.sort(key[comp_idx])
        red_final = red_before(all_g, all_t).reshape(B, n)
        computed_final = _any_event_before(comp_keys, key_m, all_g, all_t).reshape(B, n)
        if sink_count:
            saved = _any_event_before(
                save_keys,
                key_m,
                np.concatenate([all_g, sink_g]),
                np.concatenate([all_t, sink_t]),
            )
            blue_final = data.src_np[None, :] | saved[: B * n].reshape(B, n)
            terminal = legal & saved[B * n :].reshape(B, sink_count).all(axis=1)
        else:
            blue_final = data.src_np[None, :] | _any_event_before(
                save_keys, key_m, all_g, all_t
            ).reshape(B, n)
            terminal = legal.copy()
    elif sink_count:
        terminal = legal & _any_event_before(save_keys, key_m, sink_g, sink_t).reshape(
            B, sink_count
        ).all(axis=1)
    else:
        terminal = legal.copy()

    compute_cost = variant.compute_cost
    return [
        ReplayOutcome(
            legal=bool(legal[b]),
            terminal=bool(terminal[b]),
            failed_at=None if legal[b] else int(failed_local[b]),
            io_cost=int(io_counts[b]),
            compute_cost_total=float(comp_counts[b]) * compute_cost,
            peak_red=int(peaks[b]),
            red=red_final[b] if masks else None,
            blue=blue_final[b] if masks else None,
            computed=computed_final[b] if masks else None,
        )
        for b in range(B)
    ]


# --------------------------------------------------------------------------- #
# public replay entry points
# --------------------------------------------------------------------------- #


def _check_ir_game(ir: ScheduleIR) -> None:
    if ir.game == "prbp" and ir.variant.allow_sliding:
        # mirror PRBPGame.__init__: such a schedule cannot even start
        raise ValueError(
            "the sliding variant only applies to RBP; PRBP partial computes are already in-place"
        )
    if ir.r < 1:
        raise ValueError(f"fast memory capacity must be >= 1, got {ir.r}")


def _ir_rows(ir: ScheduleIR) -> List[MoveRow]:
    return list(zip(ir.op.tolist(), ir.node.tolist(), ir.arg.tolist()))


def replay(ir: ScheduleIR) -> ReplayOutcome:
    """Replay one IR through the scalar kernel (engine-equivalent verdicts)."""
    _check_ir_game(ir)
    data = _dag_data(ir.dag)
    if ir.game == "rbp":
        return _rbp_scalar(data, ir.r, ir.variant, _ir_rows(ir))
    return _prbp_scalar(data, ir.r, ir.variant, _ir_rows(ir))


def replay_many(
    irs: Sequence[ScheduleIR],
    *,
    vectorized: Optional[bool] = None,
    masks: bool = True,
) -> List[ReplayOutcome]:
    """Replay a batch of IRs, in input order.

    RBP IRs sharing one ``(dag, r, variant)`` are replayed by the
    vectorized batch kernel (``vectorized=None`` auto-enables it for
    batches of 2+; ``True``/``False`` force either path — the differential
    harness forces both).  PRBP IRs always use the scalar kernel.

    ``masks=False`` skips the final-state mask reconstruction in the batch
    kernel (the ``red``/``blue``/``computed`` fields come back ``None``);
    legality, terminality, costs, and peaks are unaffected.  Throughput
    callers that only score candidates should pass ``masks=False``.
    """
    outcomes: List[Optional[ReplayOutcome]] = [None] * len(irs)
    groups: "OrderedDict[Tuple[int, int, GameVariant], List[int]]" = OrderedDict()
    for i, ir in enumerate(irs):
        _check_ir_game(ir)
        if ir.game == "rbp" and vectorized is not False:
            groups.setdefault((id(ir.dag), ir.r, ir.variant), []).append(i)
        else:
            outcomes[i] = replay(ir)
    for indices in groups.values():
        batch = [irs[i] for i in indices]
        if vectorized is None and len(batch) < 2:
            outcomes[indices[0]] = replay(batch[0])
            continue
        results = _rbp_batch(
            _dag_data(batch[0].dag), batch[0].r, batch[0].variant, batch, masks=masks
        )
        for i, outcome in zip(indices, results):
            outcomes[i] = outcome
    return [outcome for outcome in outcomes if outcome is not None]


def kernel_stats(ir: ScheduleIR) -> ScheduleStats:
    """Replay an IR and return engine-identical :class:`ScheduleStats`.

    Raises exactly like the engine replay in ``Schedule.stats()``:
    :class:`IllegalMoveError` at an illegal move,
    :class:`IncompletePebblingError` when the final configuration is not
    terminal.  The cache and the wire protocol use this as their
    "never trust, always replay" check.
    """
    outcome = replay(ir)
    if not outcome.legal:
        assert outcome.failed_at is not None
        op = int(ir.op[outcome.failed_at])
        name = OP_NAMES[op] if 0 <= op < len(OP_NAMES) else f"op#{op}"
        raise IllegalMoveError(
            f"schedule replay failed at move {outcome.failed_at} "
            f"({name} {int(ir.node[outcome.failed_at])})"
        )
    if not outcome.terminal:
        raise IncompletePebblingError(
            f"{ir.game.upper()} pebbling incomplete: the schedule replays legally "
            "but does not finish the pebbling"
        )
    kinds = np.bincount(ir.op, minlength=5) if len(ir) else np.zeros(5, dtype=np.int64)
    return ScheduleStats(
        io_cost=outcome.io_cost,
        loads=int(kinds[OP_LOAD]),
        saves=int(kinds[OP_SAVE]),
        computes=int(kinds[OP_COMPUTE]),
        deletes=int(kinds[OP_DELETE]),
        clears=int(kinds[OP_CLEAR]),
        total_cost=outcome.total_cost,
        peak_red=outcome.peak_red,
    )
