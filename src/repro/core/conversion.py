"""RBP → PRBP schedule conversion (Proposition 4.1).

Proposition 4.1 of the paper observes that any pebbling strategy in RBP can
be converted into a PRBP strategy of the same I/O cost: a compute step on a
node ``v`` is replaced by (at most) ``deg_in(v)`` consecutive partial compute
steps, one per in-edge; loads, saves and deletes translate one-to-one.  This
immediately gives ``OPT_PRBP <= OPT_RBP`` whenever ``r >= Δ_in + 1``.

The translation is purely syntactic except for two bookkeeping details that
the converter handles:

* In RBP, a red pebble on ``v`` means "the final value of ``v`` is in fast
  memory", and a save simply copies it to slow memory.  In PRBP, after the
  last partial compute, ``v`` carries a *dark red* pebble, and an RBP delete
  of an unsaved value is only legal once all of ``v``'s out-edges are marked.
  Because we replay the RBP schedule faithfully, whenever RBP deletes a red
  pebble from a node that still has unmarked out-edges but holds a blue
  pebble (i.e. it was saved earlier), the node is in state
  ``BLUE_LIGHT_RED`` and the delete is legal; whenever it has *no* blue
  pebble, the RBP strategy itself can never use the value again (re-loading
  requires a blue pebble), so in the one-shot game all of its consumed
  out-edges were already computed — the converter therefore first marks any
  remaining out-edge only if the RBP schedule computed the consumer later,
  which cannot happen for a deleted, unsaved value.  In that case the
  one-shot RBP schedule can only be valid if those consumers are never
  computed at all, which the engine rejects; valid inputs never reach this
  corner.
* Sliding computes (Appendix B.2) are rejected: they have no direct PRBP
  analogue (PRBP already aggregates in place).

The inverse direction does not hold in general — that is the whole point of
the paper — so no PRBP → RBP converter exists.
"""

from __future__ import annotations

from typing import List

from .dag import ComputationalDAG
from .exceptions import IllegalMoveError
from .moves import MoveKind, PRBPMove, RBPMove
from .strategy import PRBPSchedule, RBPSchedule
from .variants import GameVariant

__all__ = ["convert_rbp_to_prbp", "convert_rbp_moves_to_prbp_moves"]


def convert_rbp_moves_to_prbp_moves(
    dag: ComputationalDAG, moves: List[RBPMove]
) -> List[PRBPMove]:
    """Translate an RBP move list into a PRBP move list of equal I/O cost.

    The caller is responsible for the RBP schedule being valid; the result is
    meant to be validated by replaying it through :class:`PRBPGame`.
    """
    out: List[PRBPMove] = []
    for mv in moves:
        if mv.kind is MoveKind.LOAD:
            out.append(PRBPMove(MoveKind.LOAD, node=mv.node))
        elif mv.kind is MoveKind.SAVE:
            out.append(PRBPMove(MoveKind.SAVE, node=mv.node))
        elif mv.kind is MoveKind.DELETE:
            out.append(PRBPMove(MoveKind.DELETE, node=mv.node))
        elif mv.kind is MoveKind.COMPUTE:
            if mv.slide_from is not None:
                raise IllegalMoveError(
                    "cannot convert a sliding compute move to PRBP (Proposition 4.1 applies "
                    "to the standard compute rule only)"
                )
            for u in dag.predecessors(mv.node):
                out.append(PRBPMove(MoveKind.COMPUTE, edge=(u, mv.node)))
        else:  # pragma: no cover - RBP moves cannot be CLEAR
            raise IllegalMoveError(f"unexpected RBP move kind {mv.kind!r}")
    return out


def convert_rbp_to_prbp(schedule: RBPSchedule) -> PRBPSchedule:
    """Convert a validated RBP schedule into a PRBP schedule of the same I/O cost.

    The PRBP side has one subtlety the raw move translation cannot see: an
    RBP save of a node that was *loaded* (not freshly computed) copies a
    value that slow memory already holds, which in PRBP corresponds to a node
    in state ``BLUE_LIGHT_RED`` — and the PRBP save rule only applies to dark
    red pebbles.  Such saves are pure waste in RBP (the blue pebble is
    already there), but they are legal, so to preserve validity *and* cost we
    keep the I/O operation and emit a (useless but legal) ``load`` instead.
    The converted schedule therefore always has exactly the same I/O cost.
    """
    prbp_moves = convert_rbp_moves_to_prbp_moves(schedule.dag, schedule.moves)
    converted = PRBPSchedule(
        dag=schedule.dag,
        r=schedule.r,
        moves=prbp_moves,
        variant=GameVariant(
            one_shot=schedule.variant.one_shot,
            allow_delete=schedule.variant.allow_delete,
            compute_cost=0.0,
        ),
        description=f"converted from RBP ({schedule.description or 'unnamed'})",
    )
    # Repair the redundant-save corner case described in the docstring: replay
    # and replace any save that is illegal because the node is BLUE_LIGHT_RED
    # by an equally priced redundant load.
    from .prbp import PRBPGame
    from .pebbles import PRBPState

    game = PRBPGame(converted.dag, converted.r, variant=converted.variant, record_history=False)
    repaired: List[PRBPMove] = []
    for mv in converted.moves:
        if (
            mv.kind is MoveKind.SAVE
            and mv.node is not None
            and game.node_state(mv.node) is PRBPState.BLUE_LIGHT_RED
        ):
            mv = PRBPMove(MoveKind.LOAD, node=mv.node)
        game.apply(mv)
        repaired.append(mv)
    converted.moves = repaired
    return converted
