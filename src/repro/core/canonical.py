"""DAG canonicalization and content digests for the result cache.

The batch solver (:func:`repro.api.solve_many`) keys its content-addressed
result cache on a digest of the full problem.  This module supplies the
graph-structure half of that key:

* :func:`canonical_labeling` / :func:`canonical_form` — a deterministic
  relabeling computed by Weisfeiler–Leman colour refinement.  The refinement
  is isomorphism-invariant; remaining ties inside a colour class are broken
  by the original node id, which keeps the procedure cheap (``O(n·m)`` per
  round) and *sound* — equal canonical forms always mean isomorphic graphs —
  at the price of completeness: two isomorphic graphs whose refinement does
  not separate all nodes may still canonicalise differently.  For cache
  purposes that asymmetry is exactly right: a spurious miss recomputes, a
  spurious hit would return a wrong schedule.
* :func:`dag_digest` — a hex SHA-256 over the canonical form and (by
  default) the exact node numbering and edge insertion order.  The exact
  part is deliberate: the greedy and structured solvers iterate the DAG's
  topological order, which depends on the numbering, so two isomorphic but
  differently-numbered instances can legitimately receive different
  (equally valid) schedules.  A cache key that identified them would break
  the guarantee that a cache hit is bit-identical to a fresh solve.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

from .dag import ComputationalDAG, Edge

__all__ = ["canonical_labeling", "canonical_form", "dag_digest", "DIGEST_ALGORITHM"]

#: Hash algorithm behind every digest in this module (hex output).
DIGEST_ALGORITHM = "sha256"


def _refine_colors(dag: ComputationalDAG) -> List[int]:
    """Weisfeiler–Leman colour refinement; returns one colour id per node.

    Colours start from the (in-degree, out-degree) pair and are repeatedly
    split on the sorted multisets of predecessor and successor colours until
    the partition stops refining.  Colour ids are assigned by sorting the
    signatures, so they are independent of the node numbering.
    """
    n = dag.n
    if n == 0:
        return []
    signatures: List[Tuple] = [(dag.in_degree(v), dag.out_degree(v)) for v in range(n)]
    ranks = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
    colors = [ranks[sig] for sig in signatures]
    num_classes = len(ranks)
    for _ in range(n):
        signatures = [
            (
                colors[v],
                tuple(sorted(colors[u] for u in dag.predecessors(v))),
                tuple(sorted(colors[w] for w in dag.successors(v))),
            )
            for v in range(n)
        ]
        ranks = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
        colors = [ranks[sig] for sig in signatures]
        if len(ranks) == num_classes:
            break  # fixed point: no class split this round
        num_classes = len(ranks)
    return colors


def canonical_labeling(dag: ComputationalDAG) -> List[int]:
    """A deterministic relabeling ``perm`` with ``perm[old id] = new id``.

    Nodes are ordered by their refined WL colour, ties broken by the
    original id (see the module docstring for what that trade-off means).
    """
    colors = _refine_colors(dag)
    order = sorted(range(dag.n), key=lambda v: (colors[v], v))
    perm = [0] * dag.n
    for new, old in enumerate(order):
        perm[old] = new
    return perm


def canonical_form(dag: ComputationalDAG) -> Tuple[int, Tuple[Edge, ...]]:
    """The canonically relabelled structure: ``(n, sorted relabelled edges)``.

    Equal canonical forms imply isomorphic DAGs (the form *is* a relabelled
    copy of the edge set), so any quantity invariant under isomorphism —
    in particular every optimal pebbling cost — agrees between DAGs that
    share a form.
    """
    perm = canonical_labeling(dag)
    return dag.n, tuple(sorted((perm[u], perm[v]) for u, v in dag.edges))


def dag_digest(dag: ComputationalDAG, exact: bool = True) -> str:
    """Hex SHA-256 content digest of a DAG.

    With ``exact=True`` (the default, used by the result cache) the digest
    covers the exact numbering, labels and edge insertion order — everything
    a numbering-sensitive solver can observe.  The canonical form is a
    deterministic function of ``(n, edges)``, so equal exact digests already
    imply equal canonical forms and the refinement is skipped on this hot
    path.  With ``exact=False`` only the canonical form is hashed, which
    identifies canonically-equal relabelings (useful for corpus
    deduplication, not for result caching).
    """
    h = hashlib.new(DIGEST_ALGORITHM)
    if exact:
        labels = tuple(dag.label(v) for v in range(dag.n))
        h.update(repr((dag.n, dag.edges, labels, dag.name)).encode())
    else:
        h.update(repr(canonical_form(dag)).encode())
    return h.hexdigest()
