"""Engine for the classic red-blue pebble game (RBP) of Hong and Kung.

The engine is a small state machine: construct an :class:`RBPGame` from a
:class:`~repro.core.dag.ComputationalDAG` and a fast-memory capacity ``r``,
then :meth:`~RBPGame.apply` moves one by one (or replay a whole schedule with
:func:`run_rbp_schedule`).  Every rule of the game — including the variants
of Appendix B — is enforced eagerly, so an illegal schedule fails at the
first offending move with a message naming the violated rule.

State
-----
* ``red`` — set of nodes currently holding a red pebble (fast memory),
* ``blue`` — set of nodes currently holding a blue pebble (slow memory),
* ``computed`` — set of non-source nodes whose compute rule has fired at
  least once (used to enforce the one-shot restriction).

Initially only the source nodes carry blue pebbles.  The pebbling is complete
when every sink carries a blue pebble.

Costs
-----
``load`` and ``save`` cost 1 each; ``compute`` costs ``variant.compute_cost``
(0 by default); ``delete`` is always free.  :attr:`RBPGame.io_cost` counts
only the I/O moves — this is the quantity called *cost* in the paper — while
:attr:`RBPGame.total_cost` additionally includes compute costs for the
Appendix B.3 variant.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from .dag import ComputationalDAG
from .exceptions import CapacityExceededError, IllegalMoveError, IncompletePebblingError
from .moves import MoveKind, RBPMove
from .variants import ONE_SHOT, GameVariant

__all__ = ["RBPGame", "run_rbp_schedule", "is_valid_rbp_schedule", "rbp_schedule_cost"]


class RBPGame:
    """Mutable game state for one red-blue pebbling of a fixed DAG.

    Parameters
    ----------
    dag:
        The computational DAG to pebble.
    r:
        Fast memory capacity (maximum number of red pebbles on the DAG at
        any time).  Must be at least 1.
    variant:
        Rule toggles; defaults to the one-shot game analysed in the paper.
    record_history:
        If True (default) every applied move is appended to
        :attr:`history`, so a successfully finished game doubles as a
        certified schedule.
    """

    def __init__(
        self,
        dag: ComputationalDAG,
        r: int,
        variant: GameVariant = ONE_SHOT,
        record_history: bool = True,
    ) -> None:
        if r < 1:
            raise ValueError(f"fast memory capacity must be >= 1, got {r}")
        dag.validate_no_isolated()
        self.dag = dag
        self.r = int(r)
        self.variant = variant
        self.red: Set[int] = set()
        self.blue: Set[int] = set(dag.sources)
        self.computed: Set[int] = set()
        self.io_cost: int = 0
        self.compute_cost_total: float = 0.0
        self.history: Optional[List[RBPMove]] = [] if record_history else None

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def total_cost(self) -> float:
        """I/O cost plus accumulated compute costs (Appendix B.3 variant)."""
        return self.io_cost + self.compute_cost_total

    def red_count(self) -> int:
        """Number of red pebbles currently on the DAG."""
        return len(self.red)

    def is_terminal(self) -> bool:
        """True iff every sink node carries a blue pebble."""
        return all(v in self.blue for v in self.dag.sinks)

    def assert_terminal(self) -> None:
        """Raise :class:`IncompletePebblingError` unless the game is finished."""
        missing = [v for v in self.dag.sinks if v not in self.blue]
        if missing:
            raise IncompletePebblingError(
                f"RBP pebbling incomplete: sinks without a blue pebble: {sorted(missing)}"
            )

    def copy(self) -> "RBPGame":
        """Deep copy of the current game state (history is copied too)."""
        clone = RBPGame(self.dag, self.r, self.variant, record_history=self.history is not None)
        clone.red = set(self.red)
        clone.blue = set(self.blue)
        clone.computed = set(self.computed)
        clone.io_cost = self.io_cost
        clone.compute_cost_total = self.compute_cost_total
        if self.history is not None:
            clone.history = list(self.history)
        return clone

    # ------------------------------------------------------------------ #
    # move application
    # ------------------------------------------------------------------ #

    def apply(self, move: RBPMove) -> None:
        """Apply one move, raising :class:`IllegalMoveError` if it is illegal."""
        if move.kind is MoveKind.LOAD:
            self._apply_load(move.node)
        elif move.kind is MoveKind.SAVE:
            self._apply_save(move.node)
        elif move.kind is MoveKind.COMPUTE:
            self._apply_compute(move.node, move.slide_from)
        elif move.kind is MoveKind.DELETE:
            self._apply_delete(move.node)
        else:
            raise IllegalMoveError(f"move kind {move.kind!r} is not part of RBP")
        if self.history is not None:
            self.history.append(move)

    def apply_all(self, moves: Iterable[RBPMove]) -> None:
        """Apply a sequence of moves in order."""
        for move in moves:
            self.apply(move)

    def _check_node(self, v: int) -> None:
        if not (0 <= v < self.dag.n):
            raise IllegalMoveError(f"node {v} does not exist (n = {self.dag.n})")

    def _check_capacity_for_new_red(self, v: int) -> None:
        if len(self.red) + 1 > self.r:
            raise CapacityExceededError(
                f"placing a red pebble on node {v} would use {len(self.red) + 1} red pebbles "
                f"but the capacity is r = {self.r}"
            )

    def _apply_load(self, v: int) -> None:
        self._check_node(v)
        if v not in self.blue:
            raise IllegalMoveError(f"cannot load node {v}: it has no blue pebble")
        if v not in self.red:
            self._check_capacity_for_new_red(v)
            self.red.add(v)
        self.io_cost += 1

    def _apply_save(self, v: int) -> None:
        self._check_node(v)
        if v not in self.red:
            raise IllegalMoveError(f"cannot save node {v}: it has no red pebble")
        self.blue.add(v)
        if not self.variant.allow_delete:
            # In the no-deletion variant (Appendix B.4) saving replaces the
            # red pebble by the blue one instead of duplicating the value.
            self.red.discard(v)
        self.io_cost += 1

    def _apply_compute(self, v: int, slide_from: Optional[int]) -> None:
        self._check_node(v)
        if self.dag.is_source(v):
            raise IllegalMoveError(f"cannot compute node {v}: it is a source node")
        if self.variant.one_shot and v in self.computed:
            raise IllegalMoveError(
                f"cannot compute node {v} again: the one-shot rule allows a single compute per node"
            )
        missing = [u for u in self.dag.predecessors(v) if u not in self.red]
        if missing:
            raise IllegalMoveError(
                f"cannot compute node {v}: inputs without a red pebble: {sorted(missing)}"
            )
        if slide_from is not None:
            if not self.variant.allow_sliding:
                raise IllegalMoveError(
                    "sliding compute moves require a variant with allow_sliding=True"
                )
            if slide_from not in self.dag.predecessors(v):
                raise IllegalMoveError(
                    f"cannot slide from node {slide_from}: it is not an input of node {v}"
                )
            # The red pebble moves from the input to v; the red count cannot grow.
            self.red.discard(slide_from)
            self.red.add(v)
        else:
            if v not in self.red:
                self._check_capacity_for_new_red(v)
                self.red.add(v)
        self.computed.add(v)
        self.compute_cost_total += self.variant.compute_cost

    def _apply_delete(self, v: int) -> None:
        self._check_node(v)
        if not self.variant.allow_delete:
            raise IllegalMoveError(
                "delete moves are forbidden in the no-deletion variant (Appendix B.4)"
            )
        if v not in self.red:
            raise IllegalMoveError(f"cannot delete the red pebble of node {v}: it has none")
        self.red.remove(v)

    # ------------------------------------------------------------------ #
    # legal move enumeration (used by tests and by the greedy solvers)
    # ------------------------------------------------------------------ #

    def legal_moves(self, include_useless: bool = False) -> List[RBPMove]:
        """Enumerate the moves that are legal in the current configuration.

        With ``include_useless=False`` (default) obviously wasteful moves are
        skipped: loading a node that is already red, saving a node that is
        already blue, and re-computing an already computed node in the
        re-computation variant.  The filtered list still contains every move
        an optimal strategy could need.
        """
        moves: List[RBPMove] = []
        capacity_left = self.r - len(self.red)
        for v in self.blue:
            if include_useless or v not in self.red:
                if v in self.red or capacity_left > 0:
                    moves.append(RBPMove(MoveKind.LOAD, v))
        for v in self.red:
            if include_useless or v not in self.blue:
                moves.append(RBPMove(MoveKind.SAVE, v))
            if self.variant.allow_delete:
                moves.append(RBPMove(MoveKind.DELETE, v))
        for v in self.dag.nodes():
            if self.dag.is_source(v):
                continue
            if self.variant.one_shot and v in self.computed:
                continue
            if not include_useless and v in self.computed and v in self.red:
                continue
            if all(u in self.red for u in self.dag.predecessors(v)):
                if v in self.red or capacity_left > 0:
                    moves.append(RBPMove(MoveKind.COMPUTE, v))
                if self.variant.allow_sliding:
                    for u in self.dag.predecessors(v):
                        moves.append(RBPMove(MoveKind.COMPUTE, v, slide_from=u))
        return moves


def run_rbp_schedule(
    dag: ComputationalDAG,
    r: int,
    moves: Sequence[RBPMove],
    variant: GameVariant = ONE_SHOT,
    require_terminal: bool = True,
) -> RBPGame:
    """Replay a schedule from the initial configuration and return the game.

    Raises :class:`IllegalMoveError` at the first illegal move and, when
    ``require_terminal`` is True, :class:`IncompletePebblingError` if the
    final configuration leaves some sink without a blue pebble.
    """
    game = RBPGame(dag, r, variant=variant)
    game.apply_all(moves)
    if require_terminal:
        game.assert_terminal()
    return game


def is_valid_rbp_schedule(
    dag: ComputationalDAG,
    r: int,
    moves: Sequence[RBPMove],
    variant: GameVariant = ONE_SHOT,
) -> bool:
    """True iff ``moves`` is a legal, complete RBP pebbling of ``dag`` with capacity ``r``."""
    try:
        run_rbp_schedule(dag, r, moves, variant=variant)
    except (IllegalMoveError, IncompletePebblingError):
        return False
    return True


def rbp_schedule_cost(
    dag: ComputationalDAG,
    r: int,
    moves: Sequence[RBPMove],
    variant: GameVariant = ONE_SHOT,
) -> int:
    """Replay a schedule and return its I/O cost (raises if the schedule is invalid)."""
    return run_rbp_schedule(dag, r, moves, variant=variant).io_cost
