"""Core substrate: computational DAGs, the RBP and PRBP engines, schedules.

This package contains everything needed to *define and validate* pebblings;
algorithms that *find* pebblings live in :mod:`repro.solvers`, and the
lower-bound machinery lives in :mod:`repro.bounds`.
"""

from .dag import ComputationalDAG, DAGFamily, Edge
from .exceptions import (
    CapacityExceededError,
    DAGError,
    IllegalMoveError,
    IncompletePebblingError,
    PartitionError,
    PebblingError,
    SolverError,
)
from .moves import MoveKind, PRBPMove, RBPMove, prbp, rbp
from .pebbles import PRBPState
from .prbp import PRBPGame, is_valid_prbp_schedule, prbp_schedule_cost, run_prbp_schedule
from .rbp import RBPGame, is_valid_rbp_schedule, rbp_schedule_cost, run_rbp_schedule
from .strategy import PRBPSchedule, RBPSchedule, ScheduleStats
from .conversion import convert_rbp_to_prbp, convert_rbp_moves_to_prbp_moves
from .variants import NO_DELETE, ONE_SHOT, RECOMPUTE, SLIDING, GameVariant

__all__ = [
    "ComputationalDAG",
    "DAGFamily",
    "Edge",
    "PebblingError",
    "DAGError",
    "IllegalMoveError",
    "CapacityExceededError",
    "IncompletePebblingError",
    "SolverError",
    "PartitionError",
    "MoveKind",
    "RBPMove",
    "PRBPMove",
    "rbp",
    "prbp",
    "PRBPState",
    "RBPGame",
    "PRBPGame",
    "run_rbp_schedule",
    "run_prbp_schedule",
    "is_valid_rbp_schedule",
    "is_valid_prbp_schedule",
    "rbp_schedule_cost",
    "prbp_schedule_cost",
    "RBPSchedule",
    "PRBPSchedule",
    "ScheduleStats",
    "convert_rbp_to_prbp",
    "convert_rbp_moves_to_prbp_moves",
    "GameVariant",
    "ONE_SHOT",
    "RECOMPUTE",
    "SLIDING",
    "NO_DELETE",
]
