"""Exception hierarchy for the pebbling engines.

All errors raised by :mod:`repro` derive from :class:`PebblingError`, so a
caller that wants to treat any library failure uniformly can catch a single
type.  The more specific subclasses distinguish the three failure modes that
matter in practice:

* the *input DAG* is malformed (:class:`DAGError`),
* a *single move* is illegal in the current game configuration
  (:class:`IllegalMoveError`), and
* a whole *schedule* finishes without reaching a valid terminal state
  (:class:`IncompletePebblingError`).
"""

from __future__ import annotations

__all__ = [
    "PebblingError",
    "DAGError",
    "IllegalMoveError",
    "CapacityExceededError",
    "IncompletePebblingError",
    "SolverError",
    "PartitionError",
]


class PebblingError(Exception):
    """Base class for every error raised by the library."""


class DAGError(PebblingError):
    """The computational DAG is malformed (cycle, self-loop, bad node id...)."""


class IllegalMoveError(PebblingError):
    """A move violates the transition rules of the game being played.

    The exception message always names the offending rule so that test
    failures and interactive sessions can be debugged without inspecting the
    whole game state.
    """


class CapacityExceededError(IllegalMoveError):
    """A move would exceed the fast-memory capacity ``r``."""


class IncompletePebblingError(PebblingError):
    """A schedule ended without satisfying the terminal condition.

    For RBP the terminal condition is "every sink carries a blue pebble"; for
    PRBP it additionally requires every edge to be marked.
    """


class SolverError(PebblingError):
    """An optimal/heuristic solver could not produce a result.

    Typical causes: the instance is too large for the exhaustive solver's
    configured state budget, or no valid pebbling exists for the given ``r``
    (e.g. RBP with ``r < max_in_degree + 1``).
    """


class PartitionError(PebblingError):
    """An S-partition / S-edge-partition object violates its definition."""
