"""Schedule containers: validated pebbling strategies with cost accounting.

The solvers and the structured strategy generators all return
:class:`RBPSchedule` or :class:`PRBPSchedule` objects — a move list bundled
with the DAG, the capacity and the variant it was built for.  The
``validate`` / ``cost`` helpers replay the schedule through the engine, so a
reported cost is always the cost of an actually legal pebbling, never a
formula taken on faith.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .dag import ComputationalDAG
from .moves import MoveKind, PRBPMove, RBPMove
from .prbp import PRBPGame, run_prbp_schedule
from .rbp import RBPGame, run_rbp_schedule
from .variants import ONE_SHOT, GameVariant

__all__ = ["RBPSchedule", "PRBPSchedule", "ScheduleStats"]


@dataclass(frozen=True)
class ScheduleStats:
    """Summary statistics of a validated schedule."""

    io_cost: int
    loads: int
    saves: int
    computes: int
    deletes: int
    clears: int
    total_cost: float
    peak_red: int

    @property
    def moves(self) -> int:
        """Total number of moves in the schedule."""
        return self.loads + self.saves + self.computes + self.deletes + self.clears


def _count_kinds(moves: Sequence) -> Tuple[int, int, int, int, int]:
    loads = saves = computes = deletes = clears = 0
    for mv in moves:
        if mv.kind is MoveKind.LOAD:
            loads += 1
        elif mv.kind is MoveKind.SAVE:
            saves += 1
        elif mv.kind is MoveKind.COMPUTE:
            computes += 1
        elif mv.kind is MoveKind.DELETE:
            deletes += 1
        elif mv.kind is MoveKind.CLEAR:
            clears += 1
    return loads, saves, computes, deletes, clears


@dataclass
class RBPSchedule:
    """A complete red-blue pebbling of ``dag`` with capacity ``r``.

    The ``description`` field is free-form provenance ("exhaustive optimum",
    "Prop 4.3 row-streaming strategy", ...).
    """

    dag: ComputationalDAG
    r: int
    moves: List[RBPMove]
    variant: GameVariant = ONE_SHOT
    description: str = ""

    def validate(self) -> RBPGame:
        """Replay through the engine; raises if any move is illegal or the pebbling is incomplete."""
        return run_rbp_schedule(self.dag, self.r, self.moves, variant=self.variant)

    def cost(self) -> int:
        """I/O cost of the (validated) schedule."""
        return self.validate().io_cost

    def stats(self) -> ScheduleStats:
        """Replay the schedule and return per-kind move counts and the peak red-pebble usage."""
        game = RBPGame(self.dag, self.r, variant=self.variant, record_history=False)
        peak = 0
        for mv in self.moves:
            game.apply(mv)
            peak = max(peak, game.red_count())
        game.assert_terminal()
        loads, saves, computes, deletes, clears = _count_kinds(self.moves)
        return ScheduleStats(
            io_cost=game.io_cost,
            loads=loads,
            saves=saves,
            computes=computes,
            deletes=deletes,
            clears=clears,
            total_cost=game.total_cost,
            peak_red=peak,
        )

    def __len__(self) -> int:
        return len(self.moves)


@dataclass
class PRBPSchedule:
    """A complete partial-computing pebbling of ``dag`` with capacity ``r``."""

    dag: ComputationalDAG
    r: int
    moves: List[PRBPMove]
    variant: GameVariant = ONE_SHOT
    description: str = ""

    def validate(self) -> PRBPGame:
        """Replay through the engine; raises if any move is illegal or the pebbling is incomplete."""
        return run_prbp_schedule(self.dag, self.r, self.moves, variant=self.variant)

    def cost(self) -> int:
        """I/O cost of the (validated) schedule."""
        return self.validate().io_cost

    def stats(self) -> ScheduleStats:
        """Replay the schedule and return per-kind move counts and the peak red-pebble usage."""
        game = PRBPGame(self.dag, self.r, variant=self.variant, record_history=False)
        peak = 0
        for mv in self.moves:
            game.apply(mv)
            peak = max(peak, game.red_count())
        game.assert_terminal()
        loads, saves, computes, deletes, clears = _count_kinds(self.moves)
        return ScheduleStats(
            io_cost=game.io_cost,
            loads=loads,
            saves=saves,
            computes=computes,
            deletes=deletes,
            clears=clears,
            total_cost=game.total_cost,
            peak_red=peak,
        )

    def io_subsequence_boundaries(self) -> List[int]:
        """Indices (into ``moves``) that end each block of ``r`` I/O operations.

        This is the subdivision used by Lemma 6.4 / Lemma 6.8 to turn a PRBP
        strategy into an (2r)-edge partition / (2r)-dominator partition; the
        partition extractors in :mod:`repro.bounds.partitions` consume it.
        """
        boundaries: List[int] = []
        io_seen = 0
        for i, mv in enumerate(self.moves):
            if mv.is_io:
                io_seen += 1
                if io_seen % self.r == 0:
                    boundaries.append(i)
        return boundaries

    def __len__(self) -> int:
        return len(self.moves)
