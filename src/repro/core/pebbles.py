"""Pebble state enumerations for RBP and PRBP.

In the classic red-blue pebble game (RBP) a node can independently carry a
red pebble (value in fast memory) and a blue pebble (value in slow memory),
so the RBP engine simply keeps two node sets.

The partial-computing game (PRBP, Section 3 of the paper) refines the red
pebble into *light red* (the value is also up to date in slow memory) and
*dark red* (the newest value only lives in fast memory).  At any time each
node is in exactly one of the four states listed in the paper:

* :data:`PRBPState.NONE` — no pebble, the value is stored nowhere;
* :data:`PRBPState.BLUE` — only a blue pebble, the value is only in slow
  memory;
* :data:`PRBPState.BLUE_LIGHT_RED` — a blue and a light red pebble, the
  current value is in both memories;
* :data:`PRBPState.DARK_RED` — only a dark red pebble, the value has been
  updated since the last I/O on the node and exists only in fast memory.

The enum values are small integers so that whole configurations can be
encoded compactly (e.g. two bits per node) by the exhaustive solver.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["PRBPState", "RED_STATES", "BLUE_STATES"]


class PRBPState(IntEnum):
    """The four possible pebble configurations of a single node in PRBP."""

    #: No pebble at all; the node's value is not stored anywhere.
    NONE = 0
    #: Only a blue pebble; the value is only present in slow memory.
    BLUE = 1
    #: A blue and a light red pebble; the current value is in both memories.
    BLUE_LIGHT_RED = 2
    #: Only a dark red pebble; the newest value is only in fast memory.
    DARK_RED = 3

    @property
    def has_red(self) -> bool:
        """True iff the node occupies a slot of fast memory (light or dark red)."""
        return self in RED_STATES

    @property
    def has_blue(self) -> bool:
        """True iff slow memory holds a (possibly stale, see below) copy.

        For :data:`BLUE` and :data:`BLUE_LIGHT_RED` the slow-memory copy is
        the node's *current* value; :data:`DARK_RED` means slow memory either
        has no copy or a stale one, which the game treats identically.
        """
        return self in BLUE_STATES

    @property
    def is_dark_red(self) -> bool:
        """True iff the newest value exists only in fast memory."""
        return self is PRBPState.DARK_RED

    @property
    def is_light_red(self) -> bool:
        """True iff the node has a light red pebble (and therefore also blue)."""
        return self is PRBPState.BLUE_LIGHT_RED


#: States that consume a unit of fast memory.
RED_STATES = frozenset({PRBPState.BLUE_LIGHT_RED, PRBPState.DARK_RED})

#: States in which slow memory holds the node's current value.
BLUE_STATES = frozenset({PRBPState.BLUE, PRBPState.BLUE_LIGHT_RED})
