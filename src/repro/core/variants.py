"""Model-variant configuration for the RBP and PRBP engines.

Section 8.1 and Appendix B of the paper discuss several variants of the
red-blue pebble game that appear in the literature.  Rather than one engine
class per variant, both engines accept a :class:`GameVariant` value object
that toggles the individual rule changes:

* **one-shot** (default ``True``) — each node (RBP) / edge (PRBP) may be
  computed at most once.  This is the variant the paper analyses.
* **re-computation** — dropping the one-shot restriction.  In RBP a node may
  simply be computed again; in PRBP a node must first be *cleared*
  (Appendix B.1's rule 5: remove its pebbles and unmark its in-edges) before
  its inputs can be aggregated again.
* **sliding pebbles** (RBP only, Appendix B.2) — the compute rule may move a
  red pebble from one of the inputs onto the computed node instead of
  requiring a free slot.
* **compute costs** (Appendix B.3) — each compute / partial-compute step
  costs ``compute_cost`` (the paper's ε) in addition to the unit cost of I/O
  moves.  For PRBP, ``split_compute_cost=True`` charges ``ε / deg_in(v)`` per
  partial compute on an in-edge of ``v`` so that the total compute cost of a
  one-shot schedule matches the RBP total of ``ε · n``.
* **no deletion** (Appendix B.4) — red pebbles may never be removed by a
  delete move; in PRBP a dark red pebble may only disappear via a save.

The combinations are orthogonal except where noted in the engine docstrings.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GameVariant", "ONE_SHOT", "RECOMPUTE", "SLIDING", "NO_DELETE"]


@dataclass(frozen=True)
class GameVariant:
    """Immutable bundle of rule toggles understood by both engines.

    Attributes
    ----------
    one_shot:
        If True (default), each node (RBP) / edge (PRBP) may be computed at
        most once.
    allow_sliding:
        RBP only: enable the sliding compute rule of Appendix B.2.
    allow_delete:
        If False, red pebbles can never be deleted (Appendix B.4).
    compute_cost:
        Cost ε charged per compute step (RBP) or per partial compute step
        (PRBP, but see ``split_compute_cost``).  The default 0.0 reproduces
        the standard game where compute steps are free.
    split_compute_cost:
        PRBP only: charge ``ε / deg_in(v)`` per partial compute instead of a
        flat ε, so that fully computing a node costs ε in total.
    """

    one_shot: bool = True
    allow_sliding: bool = False
    allow_delete: bool = True
    compute_cost: float = 0.0
    split_compute_cost: bool = False

    def __post_init__(self) -> None:
        if self.compute_cost < 0:
            raise ValueError("compute_cost must be non-negative")

    @property
    def allow_recompute(self) -> bool:
        """Convenience alias: re-computation is allowed iff the game is not one-shot."""
        return not self.one_shot

    def describe(self) -> str:
        """One-line human readable description used by reports."""
        parts = ["one-shot" if self.one_shot else "re-computation"]
        if self.allow_sliding:
            parts.append("sliding")
        if not self.allow_delete:
            parts.append("no-deletion")
        if self.compute_cost > 0:
            kind = "split" if self.split_compute_cost else "flat"
            parts.append(f"compute-cost={self.compute_cost} ({kind})")
        return ", ".join(parts)


#: The default variant analysed throughout the paper.
ONE_SHOT = GameVariant()

#: RBP / PRBP with re-computation allowed (Appendix B.1).
RECOMPUTE = GameVariant(one_shot=False)

#: RBP with the sliding compute rule (Appendix B.2).
SLIDING = GameVariant(allow_sliding=True)

#: The no-deletion variant (Appendix B.4).
NO_DELETE = GameVariant(allow_delete=False)
