"""Computational DAG substrate used by every pebble game in the library.

The paper models a computation as a directed acyclic graph ``G = (V, E)``
whose nodes are operations and whose edge ``(u, v)`` says that the output of
``u`` is an input of ``v``.  This module provides :class:`ComputationalDAG`,
an immutable, validated representation of such a graph together with the
derived quantities the pebble games and the lower-bound machinery need
constantly: sources, sinks, in/out degrees, a topological order, reachability
and edge indexing.

Nodes are integers ``0 .. n-1``.  Human-readable labels can be attached for
debugging and for the structured DAG generators (``"A[2,3]"``, ``"x[5]"``,
...), but the engines only ever use the integer ids — this keeps the hot
loops allocation-free and lets configurations be encoded as bitmasks.

The class intentionally does **not** wrap :mod:`networkx` internally; graphs
with tens of thousands of edges are pebbled move-by-move, and plain Python
lists of integers are markedly faster.  Conversion helpers
(:meth:`ComputationalDAG.to_networkx`, :meth:`ComputationalDAG.from_networkx`)
are provided for interoperability, plotting and for users who already have a
networkx pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .exceptions import DAGError

__all__ = ["ComputationalDAG", "DAGFamily", "Edge"]

#: An edge is a ``(tail, head)`` pair of node ids.
Edge = Tuple[int, int]


@dataclass(frozen=True)
class DAGFamily:
    """Provenance tag identifying which generator produced a DAG, and with
    which parameters.

    Every generator in :mod:`repro.dags` attaches one of these to the DAGs it
    builds, so downstream consumers — most importantly the auto-dispatch
    portfolio of :func:`repro.api.solve` — can select the structured strategy
    that matches the family without the caller having to thread layout
    objects through every call site.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so the
    tag stays hashable; use :meth:`param` or :meth:`as_dict` to read values.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def tag(cls, name: str, **params: Any) -> "DAGFamily":
        """Build a tag from keyword parameters: ``DAGFamily.tag("fft", m=16)``."""
        return cls(name, tuple(sorted(params.items())))

    def param(self, key: str, default: Any = None) -> Any:
        """Value of one generator parameter (``default`` if absent)."""
        for k, v in self.params:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        """The generator parameters as a plain dict."""
        return dict(self.params)

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}({inner})"


class ComputationalDAG:
    """An immutable directed acyclic graph describing a computation.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are the integers ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n``.  Duplicate edges
        and self-loops are rejected, as are cycles.
    labels:
        Optional mapping from node id to a human readable label.  Missing
        entries default to ``"v<i>"``.
    name:
        Optional name of the DAG family instance (used in reports).
    family:
        Optional :class:`DAGFamily` tag recording which generator built this
        DAG and with which parameters; consumed by the solver auto-dispatch
        in :mod:`repro.api`.

    Raises
    ------
    DAGError
        If the edge list references unknown nodes, contains duplicates or
        self-loops, or if the graph contains a directed cycle.

    Notes
    -----
    The paper assumes the DAG has no isolated nodes; we do *not* enforce that
    at construction time (generators occasionally build graphs incrementally)
    but :meth:`validate_no_isolated` is available and the engines call it
    when a game is started.
    """

    __slots__ = (
        "_n",
        "_edges",
        "_edge_index",
        "_preds",
        "_succs",
        "_sources",
        "_sinks",
        "_topo",
        "_labels",
        "name",
        "family",
    )

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge],
        labels: Optional[Mapping[int, str]] = None,
        name: str = "dag",
        family: Optional[DAGFamily] = None,
    ) -> None:
        if n < 0:
            raise DAGError(f"number of nodes must be non-negative, got {n}")
        self._n = int(n)
        edge_list: List[Edge] = []
        seen: Set[Edge] = set()
        preds: List[List[int]] = [[] for _ in range(n)]
        succs: List[List[int]] = [[] for _ in range(n)]
        for u, v in edges:
            u, v = int(u), int(v)
            if not (0 <= u < n and 0 <= v < n):
                raise DAGError(f"edge ({u}, {v}) references a node outside 0..{n - 1}")
            if u == v:
                raise DAGError(f"self-loop on node {u} is not allowed")
            if (u, v) in seen:
                raise DAGError(f"duplicate edge ({u}, {v})")
            seen.add((u, v))
            edge_list.append((u, v))
            preds[v].append(u)
            succs[u].append(v)
        self._edges: Tuple[Edge, ...] = tuple(edge_list)
        self._edge_index: Dict[Edge, int] = {e: i for i, e in enumerate(edge_list)}
        self._preds: Tuple[Tuple[int, ...], ...] = tuple(tuple(p) for p in preds)
        self._succs: Tuple[Tuple[int, ...], ...] = tuple(tuple(s) for s in succs)
        self._sources: Tuple[int, ...] = tuple(v for v in range(n) if not preds[v])
        self._sinks: Tuple[int, ...] = tuple(v for v in range(n) if not succs[v])
        self._topo: Tuple[int, ...] = self._topological_order()
        if labels is None:
            labels = {}
        self._labels: Tuple[str, ...] = tuple(labels.get(v, f"v{v}") for v in range(n))
        self.name = name
        self.family = family

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edge_list(
        cls,
        edges: Sequence[Edge],
        labels: Optional[Mapping[int, str]] = None,
        name: str = "dag",
        family: Optional[DAGFamily] = None,
    ) -> "ComputationalDAG":
        """Build a DAG from an edge list, inferring ``n`` as ``max id + 1``."""
        n = 0
        for u, v in edges:
            n = max(n, u + 1, v + 1)
        return cls(n, edges, labels=labels, name=name, family=family)

    @classmethod
    def from_networkx(cls, graph, name: str = "dag") -> "ComputationalDAG":
        """Build a DAG from a ``networkx.DiGraph``.

        Node identities are preserved when the nodes already are the integers
        ``0 .. n-1``; otherwise nodes are relabelled in iteration order and
        the original identifier is kept as the node label.
        """
        nodes = list(graph.nodes())
        if set(nodes) == set(range(len(nodes))):
            mapping = {v: v for v in nodes}
        else:
            mapping = {v: i for i, v in enumerate(nodes)}
        labels = {mapping[v]: str(v) for v in nodes}
        edges = [(mapping[u], mapping[v]) for u, v in graph.edges()]
        return cls(len(nodes), edges, labels=labels, name=name)

    def to_networkx(self):
        """Return a ``networkx.DiGraph`` copy of this DAG (labels as ``label`` attr)."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for v in range(self._n):
            g.add_node(v, label=self._labels[v])
        g.add_edges_from(self._edges)
        return g

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._edges)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges as ``(u, v)`` pairs, in insertion order."""
        return self._edges

    @property
    def sources(self) -> Tuple[int, ...]:
        """Nodes with no incoming edge (the inputs of the computation)."""
        return self._sources

    @property
    def sinks(self) -> Tuple[int, ...]:
        """Nodes with no outgoing edge (the outputs of the computation)."""
        return self._sinks

    def nodes(self) -> range:
        """Iterate over node ids ``0 .. n-1``."""
        return range(self._n)

    def predecessors(self, v: int) -> Tuple[int, ...]:
        """In-neighbours of ``v`` (the inputs of operation ``v``)."""
        return self._preds[v]

    def successors(self, v: int) -> Tuple[int, ...]:
        """Out-neighbours of ``v`` (the operations consuming ``v``)."""
        return self._succs[v]

    def in_degree(self, v: int) -> int:
        """Number of inputs of ``v``."""
        return len(self._preds[v])

    def out_degree(self, v: int) -> int:
        """Number of consumers of ``v``."""
        return len(self._succs[v])

    @property
    def max_in_degree(self) -> int:
        """The paper's :math:`\\Delta_{in}` — 0 for an empty graph."""
        return max((len(p) for p in self._preds), default=0)

    @property
    def max_out_degree(self) -> int:
        """The paper's :math:`\\Delta_{out}` — 0 for an empty graph."""
        return max((len(s) for s in self._succs), default=0)

    def is_source(self, v: int) -> bool:
        """True iff ``v`` has no incoming edge."""
        return not self._preds[v]

    def is_sink(self, v: int) -> bool:
        """True iff ``v`` has no outgoing edge."""
        return not self._succs[v]

    def label(self, v: int) -> str:
        """Human-readable label of node ``v``."""
        return self._labels[v]

    def edge_id(self, u: int, v: int) -> int:
        """Dense index of edge ``(u, v)`` (0-based, stable across the object's lifetime)."""
        try:
            return self._edge_index[(u, v)]
        except KeyError:
            raise DAGError(f"({u}, {v}) is not an edge of this DAG") from None

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``(u, v)`` is an edge."""
        return (u, v) in self._edge_index

    def in_edges(self, v: int) -> List[Edge]:
        """Incoming edges of ``v`` as ``(u, v)`` pairs."""
        return [(u, v) for u in self._preds[v]]

    def out_edges(self, v: int) -> List[Edge]:
        """Outgoing edges of ``v`` as ``(v, w)`` pairs."""
        return [(v, w) for w in self._succs[v]]

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    def _topological_order(self) -> Tuple[int, ...]:
        """Kahn's algorithm; raises :class:`DAGError` on a cycle."""
        indeg = [len(p) for p in self._preds]
        stack = [v for v in range(self._n) if indeg[v] == 0]
        order: List[int] = []
        while stack:
            v = stack.pop()
            order.append(v)
            for w in self._succs[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    stack.append(w)
        if len(order) != self._n:
            raise DAGError("the graph contains a directed cycle")
        return tuple(order)

    @property
    def topological_order(self) -> Tuple[int, ...]:
        """A topological order of the nodes (sources first)."""
        return self._topo

    def topological_position(self) -> List[int]:
        """Return ``pos`` with ``pos[v]`` = index of ``v`` in the topological order."""
        pos = [0] * self._n
        for i, v in enumerate(self._topo):
            pos[v] = i
        return pos

    def validate_no_isolated(self) -> None:
        """Raise :class:`DAGError` if any node has neither in- nor out-edges.

        The paper assumes DAGs without isolated nodes (an isolated node would
        be simultaneously a source and a sink and would only add trivial
        I/O).  Single-node graphs are permitted as a degenerate case.
        """
        if self._n <= 1:
            return
        for v in range(self._n):
            if not self._preds[v] and not self._succs[v]:
                raise DAGError(f"node {v} ({self._labels[v]}) is isolated")

    def descendants(self, v: int) -> Set[int]:
        """All nodes reachable from ``v`` by a directed path (excluding ``v``)."""
        seen: Set[int] = set()
        stack = list(self._succs[v])
        while stack:
            w = stack.pop()
            if w not in seen:
                seen.add(w)
                stack.extend(self._succs[w])
        return seen

    def ancestors(self, v: int) -> Set[int]:
        """All nodes from which ``v`` is reachable by a directed path (excluding ``v``)."""
        seen: Set[int] = set()
        stack = list(self._preds[v])
        while stack:
            w = stack.pop()
            if w not in seen:
                seen.add(w)
                stack.extend(self._preds[w])
        return seen

    def reachable_from(self, roots: Iterable[int]) -> Set[int]:
        """All nodes reachable from any node in ``roots`` (including the roots)."""
        seen: Set[int] = set()
        stack = list(roots)
        while stack:
            w = stack.pop()
            if w not in seen:
                seen.add(w)
                stack.extend(self._succs[w])
        return seen

    def has_path(self, u: int, v: int) -> bool:
        """True iff there is a directed path from ``u`` to ``v`` (``u == v`` counts)."""
        if u == v:
            return True
        return v in self.descendants(u)

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #

    def relabel(self, labels: Mapping[int, str], name: Optional[str] = None) -> "ComputationalDAG":
        """Return a copy of this DAG with (some) node labels replaced."""
        merged = {v: labels.get(v, self._labels[v]) for v in range(self._n)}
        return ComputationalDAG(
            self._n, self._edges, labels=merged, name=name or self.name, family=self.family
        )

    def induced_subgraph(self, keep: Iterable[int], name: Optional[str] = None) -> "ComputationalDAG":
        """Return the sub-DAG induced by ``keep`` (nodes renumbered densely).

        Labels are carried over; the returned DAG stores the original node id
        in its label suffix only if the original label was the default one.
        """
        keep_sorted = sorted(set(keep))
        remap = {old: new for new, old in enumerate(keep_sorted)}
        edges = [
            (remap[u], remap[v])
            for (u, v) in self._edges
            if u in remap and v in remap
        ]
        labels = {remap[old]: self._labels[old] for old in keep_sorted}
        return ComputationalDAG(len(keep_sorted), edges, labels=labels, name=name or f"{self.name}[sub]")

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ComputationalDAG(name={self.name!r}, n={self._n}, m={self.m}, "
            f"sources={len(self._sources)}, sinks={len(self._sinks)}, "
            f"max_in={self.max_in_degree}, max_out={self.max_out_degree})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComputationalDAG):
            return NotImplemented
        return self._n == other._n and set(self._edges) == set(other._edges)

    def __hash__(self) -> int:
        return hash((self._n, frozenset(self._edges)))

    # ------------------------------------------------------------------ #
    # paper quantities
    # ------------------------------------------------------------------ #

    def trivial_cost(self) -> int:
        """The paper's *trivial cost* ``t``: number of sources plus sinks.

        Every valid pebbling (RBP or PRBP) must load every source at least
        once and save every sink at least once, so ``OPT >= trivial_cost``
        whenever the DAG has no isolated nodes (the paper's standing
        assumption).
        """
        return len(self._sources) + len(self._sinks)
