"""Engine for the partial-computing red-blue pebble game (PRBP, Section 3).

PRBP refines RBP in two ways: the red pebble is split into *light red*
(value also up to date in slow memory) and *dark red* (value only in fast
memory), and the compute rule becomes a *partial compute* on a single edge
``(u, v)``, aggregating one more input into the running value of ``v``.  The
incoming edges of a node that have already been aggregated are *marked*; the
node's final value is only available once all its in-edges are marked.

Transition rules (numbering follows the paper):

1. **save** — replace a dark red pebble on ``v`` by a blue and a light red
   pebble (cost 1).
2. **load** — place a light red pebble on a node with a blue pebble (cost 1).
3. **partial compute** — for an unmarked edge ``(u, v)``: all in-edges of
   ``u`` must be marked, ``u`` must carry a (light or dark) red pebble, and
   ``v`` must carry a red pebble or no pebble at all.  Replace all pebbles on
   ``v`` by a dark red pebble and mark the edge (free).
4. **delete** — remove a light red pebble from any node, or a dark red pebble
   from a node whose out-edges are all marked (free).
5. **clear** — only in the re-computation variant of Appendix B.1: remove all
   pebbles from a non-source non-sink node and unmark its in-edges (free).

Initially only the sources carry blue pebbles and all edges are unmarked.
The pebbling is complete when every sink carries a blue pebble *and* every
edge is marked.  At any time the number of (light or dark) red pebbles is at
most ``r``.

A direct consequence of rule 3 (and Proposition 4.1) is that any valid RBP
schedule translates to a PRBP schedule of the same I/O cost; the converter
lives in :mod:`repro.core.conversion`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .dag import ComputationalDAG
from .exceptions import CapacityExceededError, IllegalMoveError, IncompletePebblingError
from .moves import MoveKind, PRBPMove
from .pebbles import PRBPState
from .variants import ONE_SHOT, GameVariant

__all__ = ["PRBPGame", "run_prbp_schedule", "is_valid_prbp_schedule", "prbp_schedule_cost"]


class PRBPGame:
    """Mutable game state for one partial-computing pebbling of a fixed DAG.

    Parameters mirror :class:`~repro.core.rbp.RBPGame`.  Note that unlike
    RBP, a valid PRBP pebbling exists for *any* DAG as soon as ``r >= 2``
    (pebble the nodes in topological order, marking one in-edge at a time).
    """

    def __init__(
        self,
        dag: ComputationalDAG,
        r: int,
        variant: GameVariant = ONE_SHOT,
        record_history: bool = True,
    ) -> None:
        if r < 1:
            raise ValueError(f"fast memory capacity must be >= 1, got {r}")
        if variant.allow_sliding:
            raise ValueError(
                "the sliding variant only applies to RBP; PRBP partial computes are already in-place"
            )
        dag.validate_no_isolated()
        self.dag = dag
        self.r = int(r)
        self.variant = variant
        self.state: List[PRBPState] = [PRBPState.NONE] * dag.n
        for v in dag.sources:
            self.state[v] = PRBPState.BLUE
        #: ``marked[e]`` for the dense edge id ``e`` — True once the edge has
        #: been aggregated into its head's running value.
        self.marked: List[bool] = [False] * dag.m
        #: how many in-edges of each node are currently marked
        self._marked_in: List[int] = [0] * dag.n
        #: how many out-edges of each node are currently marked
        self._marked_out: List[int] = [0] * dag.n
        #: how many times each edge has ever been computed (one-shot enforcement)
        self._edge_compute_count: List[int] = [0] * dag.m
        self._red_count: int = 0
        self.io_cost: int = 0
        self.compute_cost_total: float = 0.0
        self.history: Optional[List[PRBPMove]] = [] if record_history else None

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def total_cost(self) -> float:
        """I/O cost plus accumulated compute costs (Appendix B.3 variant)."""
        return self.io_cost + self.compute_cost_total

    def red_count(self) -> int:
        """Number of (light or dark) red pebbles currently on the DAG."""
        return self._red_count

    def node_state(self, v: int) -> PRBPState:
        """Current pebble state of node ``v``."""
        return self.state[v]

    def is_marked(self, u: int, v: int) -> bool:
        """True iff the edge ``(u, v)`` has already been aggregated."""
        return self.marked[self.dag.edge_id(u, v)]

    def is_fully_computed(self, v: int) -> bool:
        """True iff all in-edges of ``v`` are marked (sources are always fully computed)."""
        return self._marked_in[v] == self.dag.in_degree(v)

    def all_out_edges_marked(self, v: int) -> bool:
        """True iff every out-edge of ``v`` has been aggregated into its head."""
        return self._marked_out[v] == self.dag.out_degree(v)

    def is_terminal(self) -> bool:
        """True iff every sink has a blue pebble and every edge is marked."""
        return all(self.marked) and all(
            self.state[v].has_blue for v in self.dag.sinks
        )

    def assert_terminal(self) -> None:
        """Raise :class:`IncompletePebblingError` unless the game is finished."""
        unmarked = [self.dag.edges[e] for e in range(self.dag.m) if not self.marked[e]]
        missing_sinks = [v for v in self.dag.sinks if not self.state[v].has_blue]
        if unmarked or missing_sinks:
            raise IncompletePebblingError(
                "PRBP pebbling incomplete: "
                f"{len(unmarked)} unmarked edges (first few: {unmarked[:5]}), "
                f"sinks without a blue pebble: {sorted(missing_sinks)}"
            )

    def copy(self) -> "PRBPGame":
        """Deep copy of the current game state (history is copied too)."""
        clone = PRBPGame(self.dag, self.r, self.variant, record_history=self.history is not None)
        clone.state = list(self.state)
        clone.marked = list(self.marked)
        clone._marked_in = list(self._marked_in)
        clone._marked_out = list(self._marked_out)
        clone._edge_compute_count = list(self._edge_compute_count)
        clone._red_count = self._red_count
        clone.io_cost = self.io_cost
        clone.compute_cost_total = self.compute_cost_total
        if self.history is not None:
            clone.history = list(self.history)
        return clone

    # ------------------------------------------------------------------ #
    # move application
    # ------------------------------------------------------------------ #

    def apply(self, move: PRBPMove) -> None:
        """Apply one move, raising :class:`IllegalMoveError` if it is illegal."""
        if move.kind is MoveKind.LOAD:
            assert move.node is not None
            self._apply_load(move.node)
        elif move.kind is MoveKind.SAVE:
            assert move.node is not None
            self._apply_save(move.node)
        elif move.kind is MoveKind.COMPUTE:
            assert move.edge is not None
            self._apply_compute(*move.edge)
        elif move.kind is MoveKind.DELETE:
            assert move.node is not None
            self._apply_delete(move.node)
        elif move.kind is MoveKind.CLEAR:
            assert move.node is not None
            self._apply_clear(move.node)
        else:  # pragma: no cover - MoveKind is exhaustive
            raise IllegalMoveError(f"move kind {move.kind!r} is not part of PRBP")
        if self.history is not None:
            self.history.append(move)

    def apply_all(self, moves: Iterable[PRBPMove]) -> None:
        """Apply a sequence of moves in order."""
        for move in moves:
            self.apply(move)

    def _check_node(self, v: int) -> None:
        if not (0 <= v < self.dag.n):
            raise IllegalMoveError(f"node {v} does not exist (n = {self.dag.n})")

    def _check_capacity_for_new_red(self, v: int) -> None:
        if self._red_count + 1 > self.r:
            raise CapacityExceededError(
                f"placing a red pebble on node {v} would use {self._red_count + 1} red pebbles "
                f"but the capacity is r = {self.r}"
            )

    def _apply_save(self, v: int) -> None:
        self._check_node(v)
        if self.state[v] is not PRBPState.DARK_RED:
            raise IllegalMoveError(
                f"cannot save node {v}: the save rule requires a dark red pebble "
                f"(current state: {self.state[v].name})"
            )
        self.state[v] = PRBPState.BLUE_LIGHT_RED
        self.io_cost += 1

    def _apply_load(self, v: int) -> None:
        self._check_node(v)
        if not self.state[v].has_blue:
            raise IllegalMoveError(
                f"cannot load node {v}: it has no blue pebble (current state: {self.state[v].name})"
            )
        if self.state[v] is PRBPState.BLUE:
            self._check_capacity_for_new_red(v)
            self.state[v] = PRBPState.BLUE_LIGHT_RED
            self._red_count += 1
        # Loading a node that is already BLUE_LIGHT_RED is legal but useless;
        # it still costs one I/O operation.
        self.io_cost += 1

    def _apply_compute(self, u: int, v: int) -> None:
        self._check_node(u)
        self._check_node(v)
        if not self.dag.has_edge(u, v):
            raise IllegalMoveError(f"cannot partial-compute ({u}, {v}): it is not an edge")
        eid = self.dag.edge_id(u, v)
        if self.marked[eid]:
            raise IllegalMoveError(f"cannot partial-compute ({u}, {v}): the edge is already marked")
        if self.variant.one_shot and self._edge_compute_count[eid] >= 1:
            raise IllegalMoveError(
                f"cannot partial-compute ({u}, {v}) again: the one-shot rule allows a single "
                "partial compute per edge"
            )
        if not self.is_fully_computed(u):
            raise IllegalMoveError(
                f"cannot partial-compute ({u}, {v}): node {u} is not fully computed "
                f"({self._marked_in[u]}/{self.dag.in_degree(u)} in-edges marked)"
            )
        if not self.state[u].has_red:
            raise IllegalMoveError(
                f"cannot partial-compute ({u}, {v}): node {u} has no red pebble "
                f"(current state: {self.state[u].name})"
            )
        if self.state[v] is PRBPState.BLUE:
            raise IllegalMoveError(
                f"cannot partial-compute ({u}, {v}): node {v} holds only a blue pebble; "
                "its partially computed value must first be loaded into fast memory"
            )
        if self.state[v] is PRBPState.NONE:
            self._check_capacity_for_new_red(v)
            self._red_count += 1
        # BLUE_LIGHT_RED or DARK_RED or (previously NONE): all pebbles on v
        # are replaced by a single dark red pebble.
        self.state[v] = PRBPState.DARK_RED
        self.marked[eid] = True
        self._edge_compute_count[eid] += 1
        self._marked_in[v] += 1
        self._marked_out[u] += 1
        cost = self.variant.compute_cost
        if cost:
            if self.variant.split_compute_cost:
                cost /= self.dag.in_degree(v)
            self.compute_cost_total += cost

    def _apply_delete(self, v: int) -> None:
        self._check_node(v)
        st = self.state[v]
        if st is PRBPState.BLUE_LIGHT_RED:
            self.state[v] = PRBPState.BLUE
            self._red_count -= 1
            return
        if st is PRBPState.DARK_RED:
            if not self.variant.allow_delete:
                raise IllegalMoveError(
                    "in the no-deletion variant a dark red pebble can only be removed by saving it"
                )
            if not self.all_out_edges_marked(v):
                raise IllegalMoveError(
                    f"cannot delete the dark red pebble of node {v}: "
                    f"{self.dag.out_degree(v) - self._marked_out[v]} of its out-edges are unmarked, "
                    "so its value is still needed (save it first)"
                )
            if not self.is_fully_computed(v):
                # Deleting an unfinished dark red value would silently discard
                # the partial aggregation (only possible for sinks, whose
                # out-edge condition is vacuous); the paper's rule requires a
                # save before removing an unfinished value from fast memory.
                raise IllegalMoveError(
                    f"cannot delete the dark red pebble of node {v}: its computation is "
                    f"unfinished ({self._marked_in[v]}/{self.dag.in_degree(v)} in-edges marked); "
                    "save the partial value first"
                )
            self.state[v] = PRBPState.NONE
            self._red_count -= 1
            return
        raise IllegalMoveError(
            f"cannot delete a red pebble from node {v}: it has none (current state: {st.name})"
        )

    def _apply_clear(self, v: int) -> None:
        self._check_node(v)
        if self.variant.one_shot:
            raise IllegalMoveError(
                "clear moves are only allowed in the re-computation variant (one_shot=False)"
            )
        if self.dag.is_source(v) or self.dag.is_sink(v):
            raise IllegalMoveError(
                f"cannot clear node {v}: the clear rule only applies to internal nodes"
            )
        if self.state[v].has_red:
            self._red_count -= 1
        self.state[v] = PRBPState.NONE
        for u in self.dag.predecessors(v):
            eid = self.dag.edge_id(u, v)
            if self.marked[eid]:
                self.marked[eid] = False
                self._marked_in[v] -= 1
                self._marked_out[u] -= 1

    # ------------------------------------------------------------------ #
    # legal move enumeration
    # ------------------------------------------------------------------ #

    def legal_moves(self, include_useless: bool = False) -> List[PRBPMove]:
        """Enumerate the moves that are legal in the current configuration.

        With ``include_useless=False`` (default) moves that cannot be part of
        any cost-minimal continuation are skipped: loading a node that is
        already in fast memory and re-saving a node whose value is already in
        slow memory cost I/O without changing the reachable configurations.
        """
        moves: List[PRBPMove] = []
        capacity_left = self.r - self._red_count
        for v in self.dag.nodes():
            st = self.state[v]
            if st is PRBPState.DARK_RED:
                moves.append(PRBPMove(MoveKind.SAVE, node=v))
                if (
                    self.variant.allow_delete
                    and self.all_out_edges_marked(v)
                    and self.is_fully_computed(v)
                ):
                    moves.append(PRBPMove(MoveKind.DELETE, node=v))
            elif st is PRBPState.BLUE:
                if capacity_left > 0:
                    moves.append(PRBPMove(MoveKind.LOAD, node=v))
            elif st is PRBPState.BLUE_LIGHT_RED:
                moves.append(PRBPMove(MoveKind.DELETE, node=v))
                if include_useless:
                    moves.append(PRBPMove(MoveKind.LOAD, node=v))
            if (
                not self.variant.one_shot
                and not self.dag.is_source(v)
                and not self.dag.is_sink(v)
                and (st is not PRBPState.NONE or self._marked_in[v] > 0)
            ):
                moves.append(PRBPMove(MoveKind.CLEAR, node=v))
        for eid, (u, v) in enumerate(self.dag.edges):
            if self.marked[eid]:
                continue
            if self.variant.one_shot and self._edge_compute_count[eid] >= 1:
                continue
            if not self.is_fully_computed(u) or not self.state[u].has_red:
                continue
            if self.state[v] is PRBPState.BLUE:
                continue
            if self.state[v] is PRBPState.NONE and capacity_left <= 0:
                continue
            moves.append(PRBPMove(MoveKind.COMPUTE, edge=(u, v)))
        return moves


def run_prbp_schedule(
    dag: ComputationalDAG,
    r: int,
    moves: Sequence[PRBPMove],
    variant: GameVariant = ONE_SHOT,
    require_terminal: bool = True,
) -> PRBPGame:
    """Replay a schedule from the initial configuration and return the game.

    Raises :class:`IllegalMoveError` at the first illegal move and, when
    ``require_terminal`` is True, :class:`IncompletePebblingError` if the
    final configuration is not terminal (unmarked edges or unsaved sinks).
    """
    game = PRBPGame(dag, r, variant=variant)
    game.apply_all(moves)
    if require_terminal:
        game.assert_terminal()
    return game


def is_valid_prbp_schedule(
    dag: ComputationalDAG,
    r: int,
    moves: Sequence[PRBPMove],
    variant: GameVariant = ONE_SHOT,
) -> bool:
    """True iff ``moves`` is a legal, complete PRBP pebbling of ``dag`` with capacity ``r``."""
    try:
        run_prbp_schedule(dag, r, moves, variant=variant)
    except (IllegalMoveError, IncompletePebblingError):
        return False
    return True


def prbp_schedule_cost(
    dag: ComputationalDAG,
    r: int,
    moves: Sequence[PRBPMove],
    variant: GameVariant = ONE_SHOT,
) -> int:
    """Replay a schedule and return its I/O cost (raises if the schedule is invalid)."""
    return run_prbp_schedule(dag, r, moves, variant=variant).io_cost
