"""Move (transition-rule) representations for RBP and PRBP schedules.

A *pebbling strategy* (we also say *schedule*) is a finite sequence of moves.
This module defines one dataclass per game so schedules can be constructed
programmatically, pretty-printed, serialised and replayed through the
engines.

RBP moves (Hong & Kung rules, Section 1 of the paper)
-----------------------------------------------------

======== =========================================================
kind      meaning
======== =========================================================
``load``  place a red pebble on a node holding a blue pebble
``save``  place a blue pebble on a node holding a red pebble
``compute`` place a red pebble on a non-source whose inputs are all red
``delete`` remove a red pebble
======== =========================================================

PRBP moves (Section 3)
----------------------

======== =========================================================
kind      meaning
======== =========================================================
``load``  place a light red pebble on a node holding a blue pebble
``save``  replace a dark red pebble by blue + light red
``compute`` *partial compute* along a single edge ``(u, v)``: mark the edge
            and leave a dark red pebble on ``v``
``delete`` remove a light red pebble, or a dark red pebble whose node has
            all out-edges marked
``clear``  (re-computation variant only, Appendix B.1) remove every pebble
            from a non-source non-sink node and unmark all its in-edges
======== =========================================================

I/O moves (``load``/``save``) have unit cost; ``compute``/``delete``/``clear``
are free unless a compute-cost variant is configured on the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

__all__ = ["MoveKind", "RBPMove", "PRBPMove", "rbp", "prbp"]


class MoveKind(str, Enum):
    """The transition-rule applied by a move (shared by both games)."""

    LOAD = "load"
    SAVE = "save"
    COMPUTE = "compute"
    DELETE = "delete"
    #: Re-computation from scratch (PRBP extension of Appendix B.1 only).
    CLEAR = "clear"

    @property
    def is_io(self) -> bool:
        """True iff the move is a save or a load (the moves that cost I/O)."""
        return self in (MoveKind.LOAD, MoveKind.SAVE)


@dataclass(frozen=True)
class RBPMove:
    """A single move in the classic red-blue pebble game.

    ``node`` identifies the target node for every rule.  For the *sliding*
    variant of the compute rule (Appendix B.2) ``slide_from`` names the input
    whose red pebble is moved onto ``node``; it must be ``None`` otherwise.
    """

    kind: MoveKind
    node: int
    slide_from: Optional[int] = None

    def __post_init__(self) -> None:
        if self.slide_from is not None and self.kind is not MoveKind.COMPUTE:
            raise ValueError("slide_from is only meaningful for compute moves")

    @property
    def is_io(self) -> bool:
        """True iff the move costs one I/O operation."""
        return self.kind.is_io

    def __str__(self) -> str:
        if self.kind is MoveKind.COMPUTE and self.slide_from is not None:
            return f"compute {self.node} (slide from {self.slide_from})"
        return f"{self.kind.value} {self.node}"


@dataclass(frozen=True)
class PRBPMove:
    """A single move in the partial-computing red-blue pebble game.

    ``load``/``save``/``delete``/``clear`` target a node (``node`` set,
    ``edge`` ``None``); a partial ``compute`` targets an edge (``edge`` set,
    ``node`` ``None``).
    """

    kind: MoveKind
    node: Optional[int] = None
    edge: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.kind is MoveKind.COMPUTE:
            if self.edge is None or self.node is not None:
                raise ValueError("a partial compute move targets exactly one edge")
        else:
            if self.node is None or self.edge is not None:
                raise ValueError(f"a {self.kind.value} move targets exactly one node")

    @property
    def is_io(self) -> bool:
        """True iff the move costs one I/O operation."""
        return self.kind.is_io

    def __str__(self) -> str:
        if self.kind is MoveKind.COMPUTE:
            assert self.edge is not None
            return f"partial compute ({self.edge[0]}, {self.edge[1]})"
        return f"{self.kind.value} {self.node}"


class rbp:
    """Terse constructors for :class:`RBPMove` (``rbp.load(3)``, ``rbp.compute(5)``...)."""

    @staticmethod
    def load(node: int) -> RBPMove:
        """Rule 2: place a red pebble on a node that has a blue pebble."""
        return RBPMove(MoveKind.LOAD, node)

    @staticmethod
    def save(node: int) -> RBPMove:
        """Rule 1: place a blue pebble on a node that has a red pebble."""
        return RBPMove(MoveKind.SAVE, node)

    @staticmethod
    def compute(node: int, slide_from: Optional[int] = None) -> RBPMove:
        """Rule 3: compute a non-source whose inputs all carry red pebbles."""
        return RBPMove(MoveKind.COMPUTE, node, slide_from)

    @staticmethod
    def delete(node: int) -> RBPMove:
        """Rule 4: remove a red pebble."""
        return RBPMove(MoveKind.DELETE, node)


class prbp:
    """Terse constructors for :class:`PRBPMove` (``prbp.compute(2, 5)``...)."""

    @staticmethod
    def load(node: int) -> PRBPMove:
        """Rule 2: place a light red pebble on a node that has a blue pebble."""
        return PRBPMove(MoveKind.LOAD, node=node)

    @staticmethod
    def save(node: int) -> PRBPMove:
        """Rule 1: replace a dark red pebble by a blue and a light red pebble."""
        return PRBPMove(MoveKind.SAVE, node=node)

    @staticmethod
    def compute(u: int, v: int) -> PRBPMove:
        """Rule 3: partial compute along the edge ``(u, v)``."""
        return PRBPMove(MoveKind.COMPUTE, edge=(u, v))

    @staticmethod
    def delete(node: int) -> PRBPMove:
        """Rule 4: remove a light red pebble, or a finished dark red pebble."""
        return PRBPMove(MoveKind.DELETE, node=node)

    @staticmethod
    def clear(node: int) -> PRBPMove:
        """Rule 5 of the re-computation variant: reset a node for re-computation."""
        return PRBPMove(MoveKind.CLEAR, node=node)
