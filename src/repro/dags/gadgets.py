"""Gadget DAGs used in the paper's examples and proof constructions.

This module builds, with explicit node layouts:

* the **Figure 1 gadget** of Proposition 4.2 (and its Appendix B variants),
* the **chained gadget** of Proposition 4.7 (linear RBP/PRBP cost gap),
* the **zipper gadget** of Proposition 4.4 ([3, 18]),
* the **pebble collection gadget** of Proposition 4.6 ([18]).

Every builder comes in two flavours: ``*_gadget(...)`` returns the plain
:class:`~repro.core.dag.ComputationalDAG`, while ``*_instance(...)`` returns
a small layout dataclass that additionally exposes the ids of the named nodes
(``u1``, ``w3``, the chain nodes, the source groups, ...).  The structured
strategy generators in :mod:`repro.solvers.structured` consume the layout
objects so that the move lists they emit are guaranteed to reference the same
node numbering as the DAG builder — a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.dag import ComputationalDAG, DAGFamily, Edge

__all__ = [
    "Figure1Instance",
    "figure1_gadget",
    "figure1_instance",
    "ChainedGadgetInstance",
    "chained_gadget_dag",
    "chained_gadget_instance",
    "ZipperInstance",
    "zipper_gadget",
    "zipper_instance",
    "PebbleCollectionInstance",
    "pebble_collection_gadget",
    "pebble_collection_instance",
]


# --------------------------------------------------------------------------- #
# Figure 1 gadget (Proposition 4.2, Appendix A.1, Appendix B variants)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Figure1Instance:
    """Layout of the Figure 1 DAG.

    With ``include_endpoints=True`` (Proposition 4.2) the DAG contains the
    extra source ``u0`` and sink ``v0`` together with the dashed edges
    ``u0→u1``, ``u0→u2``, ``v1→v0`` and ``v2→v0``; with it False the DAG is
    the 8-node core gadget used by Proposition 4.7.

    The Appendix B variants add either an extra layer ``z1, z2`` between
    ``u0`` and ``u1/u2`` (used to rule out re-computation shortcuts, B.1) or
    an extra node ``w0`` on a second path from ``u1`` to ``w3`` (used to rule
    out sliding-pebble shortcuts, B.2).
    """

    dag: ComputationalDAG
    u0: int
    u1: int
    u2: int
    w1: int
    w2: int
    w3: int
    w4: int
    v1: int
    v2: int
    v0: int
    z1: int = -1
    z2: int = -1
    w0: int = -1
    include_endpoints: bool = True

    @property
    def has_z_layer(self) -> bool:
        """True iff the Appendix B.1 ``z1, z2`` layer is present."""
        return self.z1 >= 0

    @property
    def has_w0(self) -> bool:
        """True iff the Appendix B.2 ``w0`` node is present."""
        return self.w0 >= 0


def figure1_instance(
    include_endpoints: bool = True,
    with_z_layer: bool = False,
    with_w0: bool = False,
) -> Figure1Instance:
    """Build the Figure 1 gadget and return its layout.

    Parameters
    ----------
    include_endpoints:
        Include the source ``u0``, the sink ``v0`` and the dashed edges
        (Proposition 4.2).  Must be True when ``with_z_layer`` is requested.
    with_z_layer:
        Appendix B.1: insert two nodes ``z1, z2`` between ``u0`` and
        ``u1/u2`` so that re-computing ``u1`` requires keeping two extra red
        pebbles, restoring ``OPT_RBP = 3`` in the re-computation variant.
    with_w0:
        Appendix B.2: add a node ``w0`` with edge ``u1→w0→w3`` so that even
        the sliding-pebble variant needs three simultaneous red pebbles on
        the inputs of ``w3``.
    """
    if with_z_layer and not include_endpoints:
        raise ValueError("the z-layer variant requires the endpoints u0 and v0")
    labels: Dict[int, str] = {}
    next_id = 0

    def new(label: str) -> int:
        nonlocal next_id
        labels[next_id] = label
        next_id += 1
        return next_id - 1

    u0 = new("u0") if include_endpoints else -1
    z1 = new("z1") if with_z_layer else -1
    z2 = new("z2") if with_z_layer else -1
    u1 = new("u1")
    u2 = new("u2")
    w0 = new("w0") if with_w0 else -1
    w1 = new("w1")
    w2 = new("w2")
    w3 = new("w3")
    w4 = new("w4")
    v1 = new("v1")
    v2 = new("v2")
    v0 = new("v0") if include_endpoints else -1

    edges: List[Edge] = []
    if include_endpoints:
        if with_z_layer:
            edges += [(u0, z1), (u0, z2), (z1, u1), (z2, u1), (z1, u2), (z2, u2)]
        else:
            edges += [(u0, u1), (u0, u2)]
    edges += [(u1, w1), (u1, w2), (u1, w4)]
    if with_w0:
        edges += [(u1, w0), (w0, w3)]
    edges += [(w1, w3), (w2, w3), (w3, w4)]
    edges += [(w4, v1), (w4, v2), (u2, v1), (u2, v2)]
    if include_endpoints:
        edges += [(v1, v0), (v2, v0)]

    name = "figure1"
    if not include_endpoints:
        name += "-core"
    if with_z_layer:
        name += "+z"
    if with_w0:
        name += "+w0"
    dag = ComputationalDAG(
        next_id,
        edges,
        labels=labels,
        name=name,
        family=DAGFamily.tag(
            "figure1",
            include_endpoints=include_endpoints,
            with_z_layer=with_z_layer,
            with_w0=with_w0,
        ),
    )
    return Figure1Instance(
        dag=dag,
        u0=u0,
        u1=u1,
        u2=u2,
        w1=w1,
        w2=w2,
        w3=w3,
        w4=w4,
        v1=v1,
        v2=v2,
        v0=v0,
        z1=z1,
        z2=z2,
        w0=w0,
        include_endpoints=include_endpoints,
    )


def figure1_gadget(
    include_endpoints: bool = True,
    with_z_layer: bool = False,
    with_w0: bool = False,
) -> ComputationalDAG:
    """The Figure 1 DAG (see :func:`figure1_instance` for the parameters)."""
    return figure1_instance(include_endpoints, with_z_layer, with_w0).dag


# --------------------------------------------------------------------------- #
# Chained gadget (Proposition 4.7)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ChainedGadgetInstance:
    """Layout of the Proposition 4.7 construction.

    ``copies`` copies of the 8-node core of Figure 1 are concatenated by
    merging node ``v1`` of copy *i* with node ``u1`` of copy *i+1* and ``v2``
    of copy *i* with ``u2`` of copy *i+1*; a fresh source ``u0`` feeds
    ``u1, u2`` of the first copy and a fresh sink ``v0`` collects
    ``v1, v2`` of the last copy.

    ``gadget_nodes[i]`` maps the role names ``"u1", "u2", "w1", ..., "v2"``
    of copy ``i`` to node ids (note that ``v1``/``v2`` of copy ``i`` are the
    same ids as ``u1``/``u2`` of copy ``i+1``).
    """

    dag: ComputationalDAG
    copies: int
    u0: int
    v0: int
    gadget_nodes: Tuple[Dict[str, int], ...]


def chained_gadget_instance(copies: int) -> ChainedGadgetInstance:
    """Build the Proposition 4.7 chain with ``copies`` gadget copies (``copies >= 1``)."""
    if copies < 1:
        raise ValueError(f"need at least one gadget copy, got {copies}")
    labels: Dict[int, str] = {}
    next_id = 0

    def new(label: str) -> int:
        nonlocal next_id
        labels[next_id] = label
        next_id += 1
        return next_id - 1

    u0 = new("u0")
    edges: List[Edge] = []
    per_copy: List[Dict[str, int]] = []
    # entry nodes of the current copy (u1, u2); for the first copy they are fresh
    cur_u1 = new("g0.u1")
    cur_u2 = new("g0.u2")
    edges += [(u0, cur_u1), (u0, cur_u2)]
    for i in range(copies):
        w1 = new(f"g{i}.w1")
        w2 = new(f"g{i}.w2")
        w3 = new(f"g{i}.w3")
        w4 = new(f"g{i}.w4")
        v1 = new(f"g{i}.v1")
        v2 = new(f"g{i}.v2")
        edges += [
            (cur_u1, w1),
            (cur_u1, w2),
            (cur_u1, w4),
            (w1, w3),
            (w2, w3),
            (w3, w4),
            (w4, v1),
            (w4, v2),
            (cur_u2, v1),
            (cur_u2, v2),
        ]
        per_copy.append(
            {
                "u1": cur_u1,
                "u2": cur_u2,
                "w1": w1,
                "w2": w2,
                "w3": w3,
                "w4": w4,
                "v1": v1,
                "v2": v2,
            }
        )
        cur_u1, cur_u2 = v1, v2
    v0 = new("v0")
    edges += [(cur_u1, v0), (cur_u2, v0)]
    dag = ComputationalDAG(
        next_id,
        edges,
        labels=labels,
        name=f"prop47-chain-{copies}",
        family=DAGFamily.tag("chained_gadget", copies=copies),
    )
    return ChainedGadgetInstance(
        dag=dag, copies=copies, u0=u0, v0=v0, gadget_nodes=tuple(per_copy)
    )


def chained_gadget_dag(copies: int) -> ComputationalDAG:
    """The Proposition 4.7 chained-gadget DAG with ``copies`` copies."""
    return chained_gadget_instance(copies).dag


# --------------------------------------------------------------------------- #
# Zipper gadget (Proposition 4.4)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ZipperInstance:
    """Layout of the zipper gadget of [3, 18] (Figure 2, left).

    Two groups ``group_a`` and ``group_b`` of ``d`` source nodes each, and a
    chain ``chain[0..length-1]``.  Chain node ``chain[i]`` has incoming edges
    from the previous chain node (if any) and from *all* nodes of one of the
    two groups, alternating: group A for even ``i``, group B for odd ``i``.
    """

    dag: ComputationalDAG
    d: int
    length: int
    group_a: Tuple[int, ...]
    group_b: Tuple[int, ...]
    chain: Tuple[int, ...]

    def group_for(self, i: int) -> Tuple[int, ...]:
        """The source group feeding chain node ``i`` (A for even ``i``, B for odd)."""
        return self.group_a if i % 2 == 0 else self.group_b


def zipper_instance(d: int, length: int) -> ZipperInstance:
    """Build a zipper gadget with group size ``d`` and chain length ``length``.

    ``length >= 2`` is required so that both source groups are actually used
    (with a single chain node group B would consist of isolated nodes).
    """
    if d < 1:
        raise ValueError(f"group size d must be >= 1, got {d}")
    if length < 2:
        raise ValueError(f"chain length must be >= 2, got {length}")
    labels: Dict[int, str] = {}
    group_a = tuple(range(0, d))
    group_b = tuple(range(d, 2 * d))
    chain = tuple(range(2 * d, 2 * d + length))
    for j, v in enumerate(group_a):
        labels[v] = f"a{j}"
    for j, v in enumerate(group_b):
        labels[v] = f"b{j}"
    for j, v in enumerate(chain):
        labels[v] = f"c{j}"
    edges: List[Edge] = []
    for i, c in enumerate(chain):
        if i > 0:
            edges.append((chain[i - 1], c))
        group = group_a if i % 2 == 0 else group_b
        for u in group:
            edges.append((u, c))
    dag = ComputationalDAG(
        2 * d + length,
        edges,
        labels=labels,
        name=f"zipper-d{d}-l{length}",
        family=DAGFamily.tag("zipper", d=d, length=length),
    )
    return ZipperInstance(dag=dag, d=d, length=length, group_a=group_a, group_b=group_b, chain=chain)


def zipper_gadget(d: int, length: int) -> ComputationalDAG:
    """The zipper-gadget DAG with group size ``d`` and chain length ``length``."""
    return zipper_instance(d, length).dag


# --------------------------------------------------------------------------- #
# Pebble collection gadget (Proposition 4.6)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PebbleCollectionInstance:
    """Layout of the pebble collection gadget of [18] (Figure 2, right).

    ``d`` source nodes ``sources[0..d-1]`` and a chain ``chain[0..length-1]``;
    chain node ``i`` has incoming edges from the previous chain node (if any)
    and from source ``i mod d``.
    """

    dag: ComputationalDAG
    d: int
    length: int
    sources: Tuple[int, ...]
    chain: Tuple[int, ...]

    def source_for(self, i: int) -> int:
        """The source feeding chain node ``i``."""
        return self.sources[i % self.d]


def pebble_collection_instance(d: int, length: int) -> PebbleCollectionInstance:
    """Build a pebble collection gadget with ``d`` sources and chain length ``length``."""
    if d < 1:
        raise ValueError(f"number of sources d must be >= 1, got {d}")
    if length < 1:
        raise ValueError(f"chain length must be >= 1, got {length}")
    labels: Dict[int, str] = {}
    sources = tuple(range(d))
    chain = tuple(range(d, d + length))
    for j, v in enumerate(sources):
        labels[v] = f"u{j}"
    for j, v in enumerate(chain):
        labels[v] = f"c{j}"
    edges: List[Edge] = []
    for i, c in enumerate(chain):
        if i > 0:
            edges.append((chain[i - 1], c))
        edges.append((sources[i % d], c))
    dag = ComputationalDAG(
        d + length,
        edges,
        labels=labels,
        name=f"collection-d{d}-l{length}",
        family=DAGFamily.tag("pebble_collection", d=d, length=length),
    )
    return PebbleCollectionInstance(dag=dag, d=d, length=length, sources=sources, chain=chain)


def pebble_collection_gadget(d: int, length: int) -> ComputationalDAG:
    """The pebble-collection-gadget DAG with ``d`` sources and chain length ``length``."""
    return pebble_collection_instance(d, length).dag
