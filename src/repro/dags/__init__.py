"""Generators for every computational DAG family used in the paper.

Each family offers two entry points: ``*_dag(...)`` returns a plain
:class:`~repro.core.dag.ComputationalDAG`, while ``*_instance(...)`` returns
a layout object that additionally names the individual nodes (used by the
structured strategy generators and by tests).
"""

from .attention import AttentionInstance, attention_dag, attention_instance
from .fanin import FanInGroupsInstance, fanin_groups_dag, fanin_groups_instance
from .fft import FFTInstance, fft_dag, fft_instance
from .gadgets import (
    ChainedGadgetInstance,
    Figure1Instance,
    PebbleCollectionInstance,
    ZipperInstance,
    chained_gadget_dag,
    chained_gadget_instance,
    figure1_gadget,
    figure1_instance,
    pebble_collection_gadget,
    pebble_collection_instance,
    zipper_gadget,
    zipper_instance,
)
from .linalg import (
    MatMulInstance,
    MatVecInstance,
    matmul_dag,
    matmul_instance,
    matvec_dag,
    matvec_instance,
)
from .pyramid import PyramidInstance, pyramid_dag, pyramid_instance
from .random_dags import random_dag, random_layered_dag
from .trees import (
    TreeInstance,
    binary_tree_dag,
    binary_tree_instance,
    kary_tree_dag,
    kary_tree_instance,
    optimal_prbp_tree_cost,
    optimal_rbp_tree_cost,
)

__all__ = [
    "AttentionInstance",
    "attention_dag",
    "attention_instance",
    "FanInGroupsInstance",
    "fanin_groups_dag",
    "fanin_groups_instance",
    "FFTInstance",
    "fft_dag",
    "fft_instance",
    "ChainedGadgetInstance",
    "Figure1Instance",
    "PebbleCollectionInstance",
    "ZipperInstance",
    "chained_gadget_dag",
    "chained_gadget_instance",
    "figure1_gadget",
    "figure1_instance",
    "pebble_collection_gadget",
    "pebble_collection_instance",
    "zipper_gadget",
    "zipper_instance",
    "MatMulInstance",
    "MatVecInstance",
    "matmul_dag",
    "matmul_instance",
    "matvec_dag",
    "matvec_instance",
    "PyramidInstance",
    "pyramid_dag",
    "pyramid_instance",
    "random_dag",
    "random_layered_dag",
    "TreeInstance",
    "binary_tree_dag",
    "binary_tree_instance",
    "kary_tree_dag",
    "kary_tree_instance",
    "optimal_prbp_tree_cost",
    "optimal_rbp_tree_cost",
]
