"""Random DAG generators used by the test suite and the machinery benchmarks.

Two generators are provided:

* :func:`random_layered_dag` — nodes are arranged in layers; each non-source
  node draws at least one in-edge from the previous layer (so the DAG never
  has isolated nodes) plus extra edges with a configurable probability.
  Layered DAGs resemble the structured computations the paper studies and
  keep the maximum in-degree under control.
* :func:`random_dag` — a generic Erdős–Rényi-style DAG over a random
  topological order, useful for fuzzing the engines and the partition
  extractors with unstructured inputs.

Both generators are deterministic given the ``seed`` argument (they use a
private :class:`numpy.random.Generator`), so failing property-based tests
can always be replayed.  Callers that manage their own random state — a
Hypothesis-driven test, a sweep drawing many DAGs from one stream — can
instead pass an explicit ``rng``; the generator then consumes that stream
and records ``seed=None`` in the family tag (the caller owns
reproducibility).  Passing both is rejected, so a call site can never
silently believe the seed it names.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.dag import ComputationalDAG, DAGFamily, Edge

__all__ = ["random_layered_dag", "random_dag"]


def _resolve_rng(
    seed: Optional[int], rng: Optional[np.random.Generator]
) -> np.random.Generator:
    """The generator's random stream: the explicit ``rng``, or one seeded here."""
    if rng is not None:
        if seed is not None:
            raise ValueError("pass either seed or rng, not both")
        return rng
    return np.random.default_rng(0 if seed is None else seed)


def _seed_str(seed_tag: Optional[int]) -> str:
    """The seed part of a generated DAG's name (``"ext"`` for a caller rng)."""
    return "ext" if seed_tag is None else str(seed_tag)


def random_layered_dag(
    layer_sizes: Sequence[int],
    edge_probability: float = 0.3,
    max_in_degree: Optional[int] = None,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> ComputationalDAG:
    """Build a random layered DAG.

    Parameters
    ----------
    layer_sizes:
        Number of nodes in each layer, sources first.  Must contain at least
        two layers of at least one node each.
    edge_probability:
        Probability of each possible extra edge from layer ``i`` to layer
        ``i + 1`` (every node already receives one guaranteed in-edge).
    max_in_degree:
        Optional cap on the in-degree of every node.
    seed:
        Seed of the private random generator (defaults to 0 when neither
        ``seed`` nor ``rng`` is given).
    rng:
        An externally managed random stream used *instead* of seeding one
        here; mutually exclusive with ``seed``.  The family tag then records
        ``seed=None`` — reproducibility is the caller's responsibility.
    """
    if len(layer_sizes) < 2:
        raise ValueError("need at least two layers")
    if any(s < 1 for s in layer_sizes):
        raise ValueError("every layer must contain at least one node")
    if not (0.0 <= edge_probability <= 1.0):
        raise ValueError(f"edge_probability must be in [0, 1], got {edge_probability}")
    seed_tag = (0 if seed is None else seed) if rng is None else None
    rng = _resolve_rng(seed, rng)
    layers: List[List[int]] = []
    next_id = 0
    for size in layer_sizes:
        layers.append(list(range(next_id, next_id + size)))
        next_id += size
    cap = max_in_degree if max_in_degree is not None else float("inf")
    if cap < 1:
        raise ValueError("max_in_degree must be at least 1")
    edge_set = set()
    in_deg = {v: 0 for layer in layers for v in layer}
    out_deg = {v: 0 for layer in layers for v in layer}

    def add(u: int, v: int) -> None:
        edge_set.add((u, v))
        in_deg[v] += 1
        out_deg[u] += 1

    for li in range(1, len(layers)):
        prev, cur = layers[li - 1], layers[li]
        for v in cur:
            add(int(rng.choice(prev)), v)
        for u in prev:
            for v in cur:
                if (u, v) in edge_set or in_deg[v] >= cap:
                    continue
                if rng.random() < edge_probability:
                    add(u, v)
    # ensure every node of a non-final layer has at least one out-edge; prefer
    # heads that still have spare in-degree, otherwise rewire one of the
    # head's surplus in-edges so the cap is preserved
    for li in range(len(layers) - 1):
        nxt = layers[li + 1]
        for u in layers[li]:
            if out_deg[u] > 0:
                continue
            candidates = [v for v in nxt if (u, v) not in edge_set]
            under_cap = [v for v in candidates if in_deg[v] < cap]
            if under_cap:
                add(u, int(rng.choice(under_cap)))
                continue
            rewired = False
            for v in candidates:
                surplus = [
                    (u2, v)
                    for (u2, vv) in edge_set
                    if vv == v and u2 != u and out_deg[u2] >= 2
                ]
                if surplus:
                    u2, _ = surplus[0]
                    edge_set.remove((u2, v))
                    in_deg[v] -= 1
                    out_deg[u2] -= 1
                    add(u, v)
                    rewired = True
                    break
            if not rewired and candidates:
                # degenerate corner: accept exceeding the cap rather than an isolated node
                add(u, candidates[0])
    edges: List[Edge] = sorted(edge_set)
    dag = ComputationalDAG(
        next_id,
        edges,
        name=f"random-layered-{'x'.join(map(str, layer_sizes))}-s{_seed_str(seed_tag)}",
        family=DAGFamily.tag(
            "random_layered",
            layer_sizes=tuple(layer_sizes),
            layers=len(layer_sizes),
            width=max(layer_sizes),
            edge_probability=edge_probability,
            max_in_degree=max_in_degree,
            seed=seed_tag,
        ),
    )
    dag.validate_no_isolated()
    return dag


def random_dag(
    n: int,
    edge_probability: float = 0.2,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> ComputationalDAG:
    """Build a random DAG on ``n`` nodes over a random topological order.

    Every non-first node receives at least one in-edge from an earlier node
    so the DAG has no isolated nodes; additional forward edges are added
    independently with probability ``edge_probability``.  ``seed`` defaults
    to 0; an externally managed ``rng`` may be passed instead (mutually
    exclusive with ``seed``; the family tag then records ``seed=None``).
    """
    if n < 2:
        raise ValueError(f"need at least two nodes, got {n}")
    if not (0.0 <= edge_probability <= 1.0):
        raise ValueError(f"edge_probability must be in [0, 1], got {edge_probability}")
    seed_tag = (0 if seed is None else seed) if rng is None else None
    rng = _resolve_rng(seed, rng)
    order = list(rng.permutation(n))
    edges: List[Edge] = []
    edge_set = set()
    for pos in range(1, n):
        v = order[pos]
        u = order[int(rng.integers(0, pos))]
        edges.append((u, v))
        edge_set.add((u, v))
        for upos in range(pos):
            u2 = order[upos]
            if (u2, v) in edge_set:
                continue
            if rng.random() < edge_probability:
                edges.append((u2, v))
                edge_set.add((u2, v))
    dag = ComputationalDAG(
        n,
        edges,
        name=f"random-n{n}-s{_seed_str(seed_tag)}",
        family=DAGFamily.tag("random", n=n, edge_probability=edge_probability, seed=seed_tag),
    )
    dag.validate_no_isolated()
    return dag
