"""Rooted in-trees: binary and k-ary reduction trees (Proposition 4.5, Appendix A.2).

A *k-ary reduction tree of depth d* has ``k**d`` leaves (the sources) and all
edges pointing towards the single root (the sink); every internal node has
exactly ``k`` distinct in-neighbours.  These trees model the aggregation of
``k**d`` values by an associative operator and are the DAG family where the
paper's closed-form optimal costs are known exactly:

* RBP with ``r = k + 1``:   ``OPT_RBP  = k**d + 2*k**(d-1) - 1``
* PRBP with ``r = k + 1``:  ``OPT_PRBP = k**d + 2*k**(d-k) - 1``  (for ``d >= k``)

(Appendix A.2; the binary case ``k = 2`` is Proposition 4.5.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.dag import ComputationalDAG, DAGFamily, Edge

__all__ = [
    "TreeInstance",
    "kary_tree_instance",
    "kary_tree_dag",
    "binary_tree_instance",
    "binary_tree_dag",
    "optimal_rbp_tree_cost",
    "optimal_prbp_tree_cost",
]


@dataclass(frozen=True)
class TreeInstance:
    """Layout of a k-ary reduction tree of depth ``d``.

    ``levels[j]`` holds the node ids of depth ``j`` from the root: the root
    is ``levels[0][0]`` and the leaves are ``levels[d]``.  Children (i.e.
    in-neighbours) of node ``levels[j][i]`` are
    ``levels[j+1][k*i], ..., levels[j+1][k*i + k - 1]``.
    """

    dag: ComputationalDAG
    k: int
    depth: int
    levels: Tuple[Tuple[int, ...], ...]

    @property
    def root(self) -> int:
        """The single sink of the tree."""
        return self.levels[0][0]

    @property
    def leaves(self) -> Tuple[int, ...]:
        """The ``k**depth`` source nodes."""
        return self.levels[self.depth]

    def children(self, level: int, index: int) -> Tuple[int, ...]:
        """In-neighbours of the ``index``-th node of ``level`` (ordered left to right)."""
        lo = self.k * index
        return self.levels[level + 1][lo : lo + self.k]


def kary_tree_instance(k: int, depth: int) -> TreeInstance:
    """Build a k-ary reduction tree of depth ``depth`` (``k >= 2``, ``depth >= 1``)."""
    if k < 2:
        raise ValueError(f"arity k must be >= 2, got {k}")
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    labels: Dict[int, str] = {}
    levels: List[Tuple[int, ...]] = []
    next_id = 0
    for level in range(depth + 1):
        width = k**level
        ids = tuple(range(next_id, next_id + width))
        for idx, node in enumerate(ids):
            labels[node] = f"t{level},{idx}"
        levels.append(ids)
        next_id += width
    edges: List[Edge] = []
    for level in range(depth):
        for idx, parent in enumerate(levels[level]):
            for child in levels[level + 1][k * idx : k * idx + k]:
                edges.append((child, parent))
    dag = ComputationalDAG(
        next_id,
        edges,
        labels=labels,
        name=f"{k}ary-tree-d{depth}",
        family=DAGFamily.tag("kary_tree", k=k, depth=depth),
    )
    return TreeInstance(dag=dag, k=k, depth=depth, levels=tuple(levels))


def kary_tree_dag(k: int, depth: int) -> ComputationalDAG:
    """The k-ary reduction tree DAG of depth ``depth``."""
    return kary_tree_instance(k, depth).dag


def binary_tree_instance(depth: int) -> TreeInstance:
    """Binary reduction tree of depth ``depth`` (the Proposition 4.5 family)."""
    return kary_tree_instance(2, depth)


def binary_tree_dag(depth: int) -> ComputationalDAG:
    """The binary reduction tree DAG of depth ``depth``."""
    return binary_tree_instance(depth).dag


def optimal_rbp_tree_cost(k: int, depth: int) -> int:
    """Closed-form ``OPT_RBP`` for the k-ary tree at ``r = k + 1`` (Appendix A.2).

    The trivial cost is ``k**depth + 1`` (load every leaf, save the root);
    every internal node above the bottom two levels forces ``2*(k-1)``
    additional I/O steps.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    trivial = k**depth + 1
    nontrivial = 2 * (k - 1) * sum(k**i for i in range(depth - 1))
    return trivial + nontrivial


def optimal_prbp_tree_cost(k: int, depth: int) -> int:
    """Closed-form ``OPT_PRBP`` for the k-ary tree at ``r = k + 1`` (Appendix A.2).

    Partial computations make the bottom ``k + 1`` levels free; every node
    above them still costs ``2*(k-1)`` I/O steps.  Requires ``depth >= k``;
    for shallower trees PRBP only pays the trivial cost.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    trivial = k**depth + 1
    if depth < k:
        return trivial
    nontrivial = 2 * (k - 1) * sum(k**i for i in range(depth - k))
    return trivial + nontrivial
