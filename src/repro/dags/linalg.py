"""Linear-algebra computational DAGs: matrix–vector and matrix–matrix products.

These are the DAGs of Proposition 4.3 and Theorem 6.10.

Matrix–vector multiplication ``A · x = y`` (``A`` is ``m × m``, ``x`` is
``m × 1``) is modelled exactly as in the paper: ``m² + m`` source nodes (the
entries of ``A`` and ``x``), ``m²`` intermediate product nodes of in-degree 2
(``p[j,i] = A[j,i] * x[i]``), and ``m`` sink nodes of in-degree ``m``
(``y[j] = Σ_i p[j,i]``).

Standard (non-Strassen) matrix multiplication ``A · B = C`` with ``A`` of
size ``m1 × m2`` and ``B`` of size ``m2 × m3`` has ``m1·m2 + m2·m3`` sources,
``m1·m2·m3`` product nodes of in-degree 2 and out-degree 1 (the paper's
*internal nodes*), and ``m1·m3`` sinks of in-degree ``m2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.dag import ComputationalDAG, DAGFamily, Edge

__all__ = [
    "MatVecInstance",
    "matvec_instance",
    "matvec_dag",
    "MatMulInstance",
    "matmul_instance",
    "matmul_dag",
]


@dataclass(frozen=True)
class MatVecInstance:
    """Layout of the matrix–vector multiplication DAG for an ``m × m`` matrix.

    Node-id accessors mirror the mathematical notation of Proposition 4.3:
    ``a(j, i)`` is the entry :math:`A_{j,i}`, ``x(i)`` the vector entry
    :math:`x_i`, ``product(j, i)`` the intermediate :math:`A_{j,i} \\cdot x_i`
    and ``y(j)`` the output entry.  All indices are 0-based.
    """

    dag: ComputationalDAG
    m: int

    def a(self, j: int, i: int) -> int:
        """Node id of the matrix entry ``A[j, i]``."""
        return j * self.m + i

    def x(self, i: int) -> int:
        """Node id of the vector entry ``x[i]``."""
        return self.m * self.m + i

    def product(self, j: int, i: int) -> int:
        """Node id of the intermediate product ``A[j, i] * x[i]``."""
        return self.m * self.m + self.m + j * self.m + i

    def y(self, j: int) -> int:
        """Node id of the output entry ``y[j]``."""
        return 2 * self.m * self.m + self.m + j

    @property
    def n_nodes(self) -> int:
        """Total node count ``2m² + 2m``."""
        return 2 * self.m * self.m + 2 * self.m


def matvec_instance(m: int) -> MatVecInstance:
    """Build the matrix–vector DAG for an ``m × m`` matrix (``m >= 1``)."""
    if m < 1:
        raise ValueError(f"matrix dimension m must be >= 1, got {m}")
    inst = MatVecInstance(dag=None, m=m)  # type: ignore[arg-type]
    labels: Dict[int, str] = {}
    edges: List[Edge] = []
    for j in range(m):
        for i in range(m):
            labels[inst.a(j, i)] = f"A[{j},{i}]"
    for i in range(m):
        labels[inst.x(i)] = f"x[{i}]"
    for j in range(m):
        for i in range(m):
            p = inst.product(j, i)
            labels[p] = f"p[{j},{i}]"
            edges.append((inst.a(j, i), p))
            edges.append((inst.x(i), p))
    for j in range(m):
        yj = inst.y(j)
        labels[yj] = f"y[{j}]"
        for i in range(m):
            edges.append((inst.product(j, i), yj))
    dag = ComputationalDAG(
        inst.n_nodes,
        edges,
        labels=labels,
        name=f"matvec-m{m}",
        family=DAGFamily.tag("matvec", m=m),
    )
    return MatVecInstance(dag=dag, m=m)


def matvec_dag(m: int) -> ComputationalDAG:
    """The matrix–vector multiplication DAG for an ``m × m`` matrix."""
    return matvec_instance(m).dag


@dataclass(frozen=True)
class MatMulInstance:
    """Layout of the standard matrix-multiplication DAG ``C = A · B``.

    ``A`` is ``m1 × m2``, ``B`` is ``m2 × m3``.  ``product(i, k, j)`` is the
    scalar product :math:`A_{i,k} \\cdot B_{k,j}` and ``c(i, j)`` the output
    entry :math:`C_{i,j}` aggregating the ``m2`` products of its row/column
    pair.  All indices 0-based.
    """

    dag: ComputationalDAG
    m1: int
    m2: int
    m3: int

    def a(self, i: int, k: int) -> int:
        """Node id of ``A[i, k]``."""
        return i * self.m2 + k

    def b(self, k: int, j: int) -> int:
        """Node id of ``B[k, j]``."""
        return self.m1 * self.m2 + k * self.m3 + j

    def product(self, i: int, k: int, j: int) -> int:
        """Node id of the product ``A[i, k] * B[k, j]``."""
        base = self.m1 * self.m2 + self.m2 * self.m3
        return base + (i * self.m2 + k) * self.m3 + j

    def c(self, i: int, j: int) -> int:
        """Node id of the output entry ``C[i, j]``."""
        base = self.m1 * self.m2 + self.m2 * self.m3 + self.m1 * self.m2 * self.m3
        return base + i * self.m3 + j

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return (
            self.m1 * self.m2
            + self.m2 * self.m3
            + self.m1 * self.m2 * self.m3
            + self.m1 * self.m3
        )

    @property
    def internal_edges(self) -> int:
        """Number of edges from product nodes to output nodes (the paper's *internal edges*)."""
        return self.m1 * self.m2 * self.m3


def matmul_instance(m1: int, m2: int, m3: int) -> MatMulInstance:
    """Build the matmul DAG for ``A (m1×m2) · B (m2×m3)`` (all dimensions ``>= 1``)."""
    if min(m1, m2, m3) < 1:
        raise ValueError(f"all dimensions must be >= 1, got ({m1}, {m2}, {m3})")
    inst = MatMulInstance(dag=None, m1=m1, m2=m2, m3=m3)  # type: ignore[arg-type]
    labels: Dict[int, str] = {}
    edges: List[Edge] = []
    for i in range(m1):
        for k in range(m2):
            labels[inst.a(i, k)] = f"A[{i},{k}]"
    for k in range(m2):
        for j in range(m3):
            labels[inst.b(k, j)] = f"B[{k},{j}]"
    for i in range(m1):
        for k in range(m2):
            for j in range(m3):
                p = inst.product(i, k, j)
                labels[p] = f"p[{i},{k},{j}]"
                edges.append((inst.a(i, k), p))
                edges.append((inst.b(k, j), p))
    for i in range(m1):
        for j in range(m3):
            cij = inst.c(i, j)
            labels[cij] = f"C[{i},{j}]"
            for k in range(m2):
                edges.append((inst.product(i, k, j), cij))
    dag = ComputationalDAG(
        inst.n_nodes,
        edges,
        labels=labels,
        name=f"matmul-{m1}x{m2}x{m3}",
        family=DAGFamily.tag("matmul", m1=m1, m2=m2, m3=m3),
    )
    return MatMulInstance(dag=dag, m1=m1, m2=m2, m3=m3)


def matmul_dag(m1: int, m2: int, m3: int) -> ComputationalDAG:
    """The standard matrix-multiplication DAG for ``A (m1×m2) · B (m2×m3)``."""
    return matmul_instance(m1, m2, m3).dag
