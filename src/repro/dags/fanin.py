"""The Lemma 5.4 fan-in construction (Figure 3).

This DAG separates the classic S-partition bound from the true PRBP cost:
with 7 source nodes ``u_1 .. u_7``, 7 disjoint groups ``H_1 .. H_7`` of
``Θ(n)`` nodes each and one sink ``v``, where ``u_i`` feeds every node of
``H_i`` and every node of every group feeds ``v``, PRBP can pebble the whole
DAG with ``r = 3`` at the trivial cost of 8 (load the 7 sources once each,
save the sink), while every ``S``-partition with ``S = 2r = 6`` needs
``Θ(n)`` classes, so the Hong–Kung style bound would wrongly claim an
``Ω(n)`` cost.

The number of groups defaults to 7 as in the paper (chosen so that no
dominator of size ``2r = 6`` covers all the sources) but is configurable so
the same construction can be studied for other cache sizes: the separation
needs ``num_groups >= 2r + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.dag import ComputationalDAG, DAGFamily, Edge

__all__ = ["FanInGroupsInstance", "fanin_groups_instance", "fanin_groups_dag"]


@dataclass(frozen=True)
class FanInGroupsInstance:
    """Layout of the Figure 3 construction.

    ``sources[i]`` is the node ``u_{i+1}``; ``groups[i]`` holds the node ids
    of ``H_{i+1}``; ``sink`` is the node ``v``.
    """

    dag: ComputationalDAG
    num_groups: int
    group_size: int
    sources: Tuple[int, ...]
    groups: Tuple[Tuple[int, ...], ...]
    sink: int


def fanin_groups_instance(num_groups: int = 7, group_size: int = 10) -> FanInGroupsInstance:
    """Build the Lemma 5.4 DAG with ``num_groups`` groups of ``group_size`` nodes each."""
    if num_groups < 1:
        raise ValueError(f"num_groups must be >= 1, got {num_groups}")
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    labels: Dict[int, str] = {}
    sources = tuple(range(num_groups))
    for i, u in enumerate(sources):
        labels[u] = f"u{i + 1}"
    groups: List[Tuple[int, ...]] = []
    next_id = num_groups
    for i in range(num_groups):
        ids = tuple(range(next_id, next_id + group_size))
        for j, w in enumerate(ids):
            labels[w] = f"H{i + 1},{j}"
        groups.append(ids)
        next_id += group_size
    sink = next_id
    labels[sink] = "v"
    next_id += 1
    edges: List[Edge] = []
    for i in range(num_groups):
        for w in groups[i]:
            edges.append((sources[i], w))
            edges.append((w, sink))
    dag = ComputationalDAG(
        next_id,
        edges,
        labels=labels,
        name=f"fanin-{num_groups}x{group_size}",
        family=DAGFamily.tag("fanin_groups", num_groups=num_groups, group_size=group_size),
    )
    return FanInGroupsInstance(
        dag=dag,
        num_groups=num_groups,
        group_size=group_size,
        sources=sources,
        groups=tuple(groups),
        sink=sink,
    )


def fanin_groups_dag(num_groups: int = 7, group_size: int = 10) -> ComputationalDAG:
    """The Lemma 5.4 fan-in DAG (Figure 3)."""
    return fanin_groups_instance(num_groups, group_size).dag
