"""The pyramid gadget (mentioned with Proposition 4.6, originally from [8, 19]).

The pyramid of height ``h`` has ``h + 1`` levels: the bottom level holds
``h + 1`` source nodes and each level above is one node narrower, down to a
single apex (the sink).  Node ``j`` of level ``t`` (counting levels from the
bottom, ``t = 0`` being the sources) has in-neighbours ``j`` and ``j + 1`` of
level ``t - 1``.

In RBP the pyramid is the classic gadget forcing a strategy to gather many
red pebbles: pebbling the apex of a height-``h`` pyramid without I/O beyond
the trivial cost requires ``h + 1`` red pebbles.  The paper notes that its
role in PRBP constructions is played by the more robust pebble collection
gadget, but the pyramid remains useful as a test DAG and for comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.dag import ComputationalDAG, DAGFamily, Edge

__all__ = ["PyramidInstance", "pyramid_instance", "pyramid_dag"]


@dataclass(frozen=True)
class PyramidInstance:
    """Layout of the pyramid of height ``h``: ``levels[t]`` are the ids of level ``t`` (bottom = 0)."""

    dag: ComputationalDAG
    height: int
    levels: Tuple[Tuple[int, ...], ...]

    @property
    def apex(self) -> int:
        """The single sink at the top of the pyramid."""
        return self.levels[self.height][0]

    @property
    def base(self) -> Tuple[int, ...]:
        """The ``height + 1`` source nodes at the bottom."""
        return self.levels[0]


def pyramid_instance(height: int) -> PyramidInstance:
    """Build a pyramid of height ``height`` (``height >= 1``)."""
    if height < 1:
        raise ValueError(f"height must be >= 1, got {height}")
    labels: Dict[int, str] = {}
    levels: List[Tuple[int, ...]] = []
    next_id = 0
    for t in range(height + 1):
        width = height + 1 - t
        ids = tuple(range(next_id, next_id + width))
        for j, v in enumerate(ids):
            labels[v] = f"P{t},{j}"
        levels.append(ids)
        next_id += width
    edges: List[Edge] = []
    for t in range(1, height + 1):
        for j, v in enumerate(levels[t]):
            edges.append((levels[t - 1][j], v))
            edges.append((levels[t - 1][j + 1], v))
    dag = ComputationalDAG(
        next_id,
        edges,
        labels=labels,
        name=f"pyramid-h{height}",
        family=DAGFamily.tag("pyramid", height=height),
    )
    return PyramidInstance(dag=dag, height=height, levels=tuple(levels))


def pyramid_dag(height: int) -> ComputationalDAG:
    """The pyramid DAG of height ``height``."""
    return pyramid_instance(height).dag
