"""The m-point FFT (butterfly) DAG of Theorem 6.9.

The ``m``-point FFT graph (``m`` a power of two) has ``log2(m) + 1`` levels
of ``m`` nodes each.  Level 0 holds the sources; the node ``j`` of level
``t`` has exactly two in-neighbours on level ``t - 1``: node ``j`` itself and
node ``j XOR 2**(t-1)`` (the classic butterfly wiring, which is isomorphic to
the recursive description in the paper: two half-size FFTs whose outputs
``u_i`` feed the new layer's ``v_j`` whenever ``i ≡ j (mod m/2)``).

Hong and Kung's lower bound ``Ω(m·log m / log r)`` holds for this DAG in RBP,
and Theorem 6.9 shows the identical bound for PRBP via S-dominator
partitions; see :mod:`repro.bounds.analytic`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.dag import ComputationalDAG, DAGFamily, Edge

__all__ = ["FFTInstance", "fft_instance", "fft_dag"]


@dataclass(frozen=True)
class FFTInstance:
    """Layout of the ``m``-point butterfly DAG.

    ``node(t, j)`` is the ``j``-th node of level ``t`` (level 0 = sources,
    level ``log2(m)`` = sinks).
    """

    dag: ComputationalDAG
    m: int
    levels: int  # number of butterfly levels = log2(m)

    def node(self, t: int, j: int) -> int:
        """Node id of level ``t`` (0-based from the sources), position ``j``."""
        return t * self.m + j

    @property
    def source_level(self) -> Tuple[int, ...]:
        """Node ids of the input level."""
        return tuple(self.node(0, j) for j in range(self.m))

    @property
    def sink_level(self) -> Tuple[int, ...]:
        """Node ids of the output level."""
        return tuple(self.node(self.levels, j) for j in range(self.m))


def _is_power_of_two(m: int) -> bool:
    return m >= 1 and (m & (m - 1)) == 0


def fft_instance(m: int) -> FFTInstance:
    """Build the ``m``-point FFT DAG (``m`` must be a power of two, ``m >= 2``)."""
    if not _is_power_of_two(m) or m < 2:
        raise ValueError(f"m must be a power of two >= 2, got {m}")
    levels = m.bit_length() - 1  # log2(m)
    labels: Dict[int, str] = {}
    edges: List[Edge] = []
    inst = FFTInstance(dag=None, m=m, levels=levels)  # type: ignore[arg-type]
    for t in range(levels + 1):
        for j in range(m):
            labels[inst.node(t, j)] = f"f{t},{j}"
    for t in range(1, levels + 1):
        stride = 1 << (t - 1)
        for j in range(m):
            v = inst.node(t, j)
            edges.append((inst.node(t - 1, j), v))
            edges.append((inst.node(t - 1, j ^ stride), v))
    dag = ComputationalDAG(
        m * (levels + 1),
        edges,
        labels=labels,
        name=f"fft-{m}",
        family=DAGFamily.tag("fft", m=m),
    )
    return FFTInstance(dag=dag, m=m, levels=levels)


def fft_dag(m: int) -> ComputationalDAG:
    """The ``m``-point FFT (butterfly) DAG."""
    return fft_instance(m).dag
