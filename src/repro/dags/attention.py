"""The self-attention computational DAG of Theorem 6.11.

The paper follows [20] (Saha & Ye) and analyses the I/O bottleneck of the
attention mechanism, the matrix product ``Q · Kᵀ`` followed by an
element-wise exponentiation.  The relevant part of the DAG is:

* ``2·m·d`` **source nodes** — the entries of ``Q`` (``m × d``) and of
  ``Kᵀ`` (``d × m``);
* ``m²·d`` **internal nodes** — the scalar products ``Q[i,k] · Kᵀ[k,j]``,
  each with two source in-neighbours and a single out-edge;
* ``m²`` **root nodes** — the entries of ``S = Q·Kᵀ``, each aggregating the
  ``d`` internal nodes of its *internal tree*;
* ``m²`` **exponentiation nodes** — one out-neighbour per root (so roots are
  *not* sinks, the property that makes the large-cache regime interesting).

With ``include_softmax=True`` the DAG is extended by the row-sum nodes
(in-degree ``m``) and the normalised output nodes so that examples can show
the full softmax data flow; the lower-bound analysis of Theorem 6.11 only
needs the part described above, which is the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.dag import ComputationalDAG, DAGFamily, Edge

__all__ = ["AttentionInstance", "attention_instance", "attention_dag"]


@dataclass(frozen=True)
class AttentionInstance:
    """Layout of the attention (``Q·Kᵀ`` + exp) DAG for sequence length ``m`` and head dimension ``d``."""

    dag: ComputationalDAG
    m: int
    d: int
    include_softmax: bool

    def q(self, i: int, k: int) -> int:
        """Node id of ``Q[i, k]``."""
        return i * self.d + k

    def kt(self, k: int, j: int) -> int:
        """Node id of ``Kᵀ[k, j]``."""
        return self.m * self.d + k * self.m + j

    def product(self, i: int, j: int, k: int) -> int:
        """Node id of the internal product ``Q[i, k] * Kᵀ[k, j]``."""
        base = 2 * self.m * self.d
        return base + (i * self.m + j) * self.d + k

    def score(self, i: int, j: int) -> int:
        """Node id of the root node ``S[i, j]`` (entry of ``Q·Kᵀ``)."""
        base = 2 * self.m * self.d + self.m * self.m * self.d
        return base + i * self.m + j

    def exp(self, i: int, j: int) -> int:
        """Node id of the exponentiation node ``exp(S[i, j])``."""
        base = 2 * self.m * self.d + self.m * self.m * self.d + self.m * self.m
        return base + i * self.m + j

    def rowsum(self, i: int) -> int:
        """Node id of the softmax row-sum node for row ``i`` (softmax extension only)."""
        if not self.include_softmax:
            raise ValueError("this instance was built without the softmax extension")
        base = 2 * self.m * self.d + self.m * self.m * self.d + 2 * self.m * self.m
        return base + i

    def output(self, i: int, j: int) -> int:
        """Node id of the normalised output node (softmax extension only)."""
        if not self.include_softmax:
            raise ValueError("this instance was built without the softmax extension")
        base = 2 * self.m * self.d + self.m * self.m * self.d + 2 * self.m * self.m + self.m
        return base + i * self.m + j

    @property
    def n_nodes(self) -> int:
        """Total node count of the instance."""
        base = 2 * self.m * self.d + self.m * self.m * self.d + 2 * self.m * self.m
        if self.include_softmax:
            base += self.m + self.m * self.m
        return base

    @property
    def internal_edges(self) -> int:
        """Number of internal-node → root edges (the quantity counted in Theorem 6.11)."""
        return self.m * self.m * self.d


def attention_instance(m: int, d: int, include_softmax: bool = False) -> AttentionInstance:
    """Build the attention DAG for sequence length ``m`` and head dimension ``d``."""
    if m < 1 or d < 1:
        raise ValueError(f"m and d must be >= 1, got m={m}, d={d}")
    inst = AttentionInstance(dag=None, m=m, d=d, include_softmax=include_softmax)  # type: ignore[arg-type]
    labels: Dict[int, str] = {}
    edges: List[Edge] = []
    for i in range(m):
        for k in range(d):
            labels[inst.q(i, k)] = f"Q[{i},{k}]"
    for k in range(d):
        for j in range(m):
            labels[inst.kt(k, j)] = f"KT[{k},{j}]"
    for i in range(m):
        for j in range(m):
            for k in range(d):
                p = inst.product(i, j, k)
                labels[p] = f"qk[{i},{j},{k}]"
                edges.append((inst.q(i, k), p))
                edges.append((inst.kt(k, j), p))
    for i in range(m):
        for j in range(m):
            s = inst.score(i, j)
            labels[s] = f"S[{i},{j}]"
            for k in range(d):
                edges.append((inst.product(i, j, k), s))
    for i in range(m):
        for j in range(m):
            e = inst.exp(i, j)
            labels[e] = f"E[{i},{j}]"
            edges.append((inst.score(i, j), e))
    if include_softmax:
        for i in range(m):
            rs = inst.rowsum(i)
            labels[rs] = f"Z[{i}]"
            for j in range(m):
                edges.append((inst.exp(i, j), rs))
        for i in range(m):
            for j in range(m):
                o = inst.output(i, j)
                labels[o] = f"P[{i},{j}]"
                edges.append((inst.exp(i, j), o))
                edges.append((inst.rowsum(i), o))
    dag = ComputationalDAG(
        inst.n_nodes,
        edges,
        labels=labels,
        name=f"attention-m{m}-d{d}{'-softmax' if include_softmax else ''}",
        family=DAGFamily.tag("attention", m=m, d=d, include_softmax=include_softmax),
    )
    return AttentionInstance(dag=dag, m=m, d=d, include_softmax=include_softmax)


def attention_dag(m: int, d: int, include_softmax: bool = False) -> ComputationalDAG:
    """The attention (``Q·Kᵀ`` + exp) DAG for sequence length ``m`` and head dimension ``d``."""
    return attention_instance(m, d, include_softmax).dag
