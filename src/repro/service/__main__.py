"""``python -m repro.service`` / ``repro-serve`` — run and talk to the daemon.

Subcommands:

* ``serve`` — run a service in the foreground (SIGINT/SIGTERM drain
  gracefully); prints ``listening on HOST:PORT`` once bound, so wrappers
  can scrape the ephemeral port when started with ``--port 0``.
* ``solve`` — pose one benchmark-registry scenario to a running server;
  ``--stream`` prints the anytime-progress events as they arrive.
* ``ping`` / ``stats`` / ``shutdown`` — client one-liners for operations.
* ``smoke`` — self-contained end-to-end check (used by CI): starts an
  in-process server on an ephemeral port, solves scenarios through the TCP
  client, verifies the answers are bit-identical to local ``solve()``
  calls, re-requests them asserting shared-cache hits, streams one anytime
  solve asserting ≥ 2 improving cost events, then drains and shuts down.

Exit codes: 0 on success; 1 on any failure (including smoke assertions).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from ..api import PebblingProblem, solve
from .client import ProgressEvent, ServiceClient
from .server import ServiceConfig, SolveService

__all__ = ["main"]

#: Scenarios the smoke test pushes through the service (quick tier).
SMOKE_SCENARIOS = ("tree-prbp-critical", "fft-blocked-prbp", "chained-prbp-constant")

#: Scenario streamed in the smoke test; its greedy seed leaves the anytime
#: refiner plenty of accepted improvements at this step budget.
SMOKE_STREAM_SCENARIO = "chained-rbp-greedy"
SMOKE_STREAM_OPTIONS = {"refine_steps": 192, "seed": 0}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the repro-prbp solve service, or talk to a running one.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a solve service in the foreground")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7421, help="0 binds an ephemeral port")
    serve.add_argument("--workers", type=int, default=2, metavar="N")
    serve.add_argument("--max-pending", type=int, default=256, metavar="N")
    serve.add_argument(
        "--cache-dir", metavar="PATH", help="disk tier of the shared result cache"
    )
    serve.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="keep the shared cache memory-only (ignores --cache-dir)",
    )
    serve.add_argument(
        "--max-disk-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="cap the cache's disk tier; oldest entries are pruned first",
    )
    serve.add_argument(
        "--no-processes",
        action="store_true",
        help="solve in threads instead of worker processes",
    )

    for name, help_text in (
        ("ping", "round-trip liveness check"),
        ("stats", "print the server's counters as json"),
        ("shutdown", "ask the server to drain and stop"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--host", default="127.0.0.1")
        cmd.add_argument("--port", type=int, default=7421)
        if name == "shutdown":
            cmd.add_argument(
                "--no-drain", action="store_true", help="abort queued jobs instead of finishing them"
            )

    solve_cmd = sub.add_parser("solve", help="solve one bench-registry scenario remotely")
    solve_cmd.add_argument("--host", default="127.0.0.1")
    solve_cmd.add_argument("--port", type=int, default=7421)
    solve_cmd.add_argument("--scenario", required=True, metavar="NAME")
    solve_cmd.add_argument("--tier", choices=("quick", "full"), default="quick")
    solve_cmd.add_argument("--solver", default=None, help="override the scenario's solver")
    solve_cmd.add_argument(
        "--stream", action="store_true", help="print anytime-progress events as they arrive"
    )

    smoke = sub.add_parser("smoke", help="self-contained end-to-end service check (CI)")
    smoke.add_argument("--workers", type=int, default=2, metavar="N")
    smoke.add_argument(
        "--no-processes", action="store_true", help="force the thread worker path"
    )
    return parser


# --------------------------------------------------------------------------- #
# serve
# --------------------------------------------------------------------------- #


def _cmd_serve(args: argparse.Namespace) -> int:
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        cache_dir=None if args.no_disk_cache else args.cache_dir,
        max_disk_bytes=args.max_disk_bytes,
        prefer_processes=not args.no_processes,
    )

    async def run() -> None:
        service = SolveService(config)
        await service.start()
        host, port = service.address
        print(f"repro-serve listening on {host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # e.g. Windows event loops
                loop.add_signal_handler(sig, service.request_shutdown)
        await service.serve_forever()
        print("repro-serve: drained and stopped", flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


# --------------------------------------------------------------------------- #
# client one-liners
# --------------------------------------------------------------------------- #


def _cmd_ping(args: argparse.Namespace) -> int:
    async def run() -> int:
        async with await ServiceClient.connect(args.host, args.port) as client:
            doc = await client.ping()
            print(f"pong (protocol v{doc.get('protocol_version')})")
        return 0

    return asyncio.run(run())


def _cmd_stats(args: argparse.Namespace) -> int:
    async def run() -> int:
        async with await ServiceClient.connect(args.host, args.port) as client:
            print(json.dumps(await client.stats(), indent=2, sort_keys=True))
        return 0

    return asyncio.run(run())


def _cmd_shutdown(args: argparse.Namespace) -> int:
    async def run() -> int:
        async with await ServiceClient.connect(args.host, args.port) as client:
            await client.shutdown_server(drain=not args.no_drain)
            print("shutdown requested" + (" (drain)" if not args.no_drain else " (abort queued)"))
        return 0

    return asyncio.run(run())


def _scenario_problem(name: str, tier: str) -> Tuple[PebblingProblem, str, Dict[str, Any]]:
    """Materialize a bench-registry scenario into (problem, solver, options)."""
    from ..bench.scenario import materialize_scenario

    return materialize_scenario(name, tier)


def _cmd_solve(args: argparse.Namespace) -> int:
    problem, solver, options = _scenario_problem(args.scenario, args.tier)
    if args.solver is not None:
        solver = args.solver

    async def run() -> int:
        async with await ServiceClient.connect(args.host, args.port) as client:
            if args.stream:

                def show(event: ProgressEvent) -> None:
                    print(f"  anytime cost {event.cost} at {event.elapsed_s * 1000:.1f} ms", flush=True)

                result, events = await client.solve_stream(
                    problem, solver, on_progress=show, **options
                )
                print(f"{len(events)} progress events")
            else:
                result, meta = await client.solve_detailed(problem, solver, **options)
                if meta["cache_hit"]:
                    print("(answered from the shared cache)")
            print(result.describe())
        return 0

    return asyncio.run(run())


# --------------------------------------------------------------------------- #
# smoke
# --------------------------------------------------------------------------- #


def _check(condition: bool, message: str, failures: List[str]) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        failures.append(message)


async def _smoke(workers: int, prefer_processes: bool) -> int:
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as cache_dir:
        service = SolveService(
            ServiceConfig(
                port=0,
                workers=workers,
                cache_dir=cache_dir,
                prefer_processes=prefer_processes,
            )
        )
        await service.start()
        host, port = service.address
        print(f"smoke: server on {host}:{port} (pool mode: {service.stats()['pool']['mode']})")

        async with await ServiceClient.connect(host, port) as client:
            await client.ping()

            # 1. three scenarios through the TCP client, checked against local solves
            workload = [(name, *_scenario_problem(name, "quick")) for name in SMOKE_SCENARIOS]
            for name, problem, solver, options in workload:
                local = solve(problem, solver=solver, **options)
                remote, meta = await client.solve_detailed(problem, solver, **options)
                _check(
                    remote.cost == local.cost
                    and remote.solver == local.solver
                    and remote.schedule.moves == local.schedule.moves,
                    f"{name}: remote result bit-identical to local solve (cost {remote.cost})",
                    failures,
                )
                _check(not meta["cache_hit"], f"{name}: first request was a fresh solve", failures)

            # 2. repeats answered from the shared cache
            for name, problem, solver, options in workload:
                _, meta = await client.solve_detailed(problem, solver, **options)
                _check(meta["cache_hit"], f"{name}: repeat answered from the shared cache", failures)
            stats = await client.stats()
            hits = stats["jobs"]["cache_answers"]
            _check(
                hits >= len(workload),
                f"cache answered {hits} repeat request(s) (counter from server stats)",
                failures,
            )

            # 3. streamed anytime progress: monotonically improving costs
            problem, solver, _ = _scenario_problem(SMOKE_STREAM_SCENARIO, "quick")
            result, events = await client.solve_stream(
                problem, solver, **SMOKE_STREAM_OPTIONS
            )
            costs = [event.cost for event in events]
            improving = [c for prev, c in zip(costs, costs[1:]) if c < prev]
            _check(
                len(events) >= 3 and len(improving) >= 2,
                f"streamed solve pushed {len(events)} events, {len(improving)} strict improvements "
                f"({costs[0] if costs else '-'} -> {result.cost})",
                failures,
            )
            _check(
                costs == sorted(costs, reverse=True) and (not costs or costs[-1] == result.cost),
                "streamed costs are monotone and end at the final result",
                failures,
            )

            # 4. graceful shutdown drains cleanly
            await client.shutdown_server(drain=True)
        await service.wait_closed()
        print("smoke: server drained and closed")

    if failures:
        print(f"smoke: {len(failures)} check(s) FAILED", file=sys.stderr)
        return 1
    print("smoke: all checks passed")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    return asyncio.run(_smoke(args.workers, prefer_processes=not args.no_processes))


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "serve": _cmd_serve,
        "ping": _cmd_ping,
        "stats": _cmd_stats,
        "shutdown": _cmd_shutdown,
        "solve": _cmd_solve,
        "smoke": _cmd_smoke,
    }
    try:
        return handlers[args.command](args)
    except ConnectionRefusedError:
        print("error: no service is listening on the given host/port", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
