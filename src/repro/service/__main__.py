"""``python -m repro.service`` / ``repro-serve`` — run and talk to the daemon.

Subcommands:

* ``serve`` — run a service in the foreground (SIGINT/SIGTERM drain
  gracefully); prints ``listening on HOST:PORT`` once bound, so wrappers
  can scrape the ephemeral port when started with ``--port 0``.
* ``solve`` — pose one benchmark-registry scenario to a running server;
  ``--stream`` prints the anytime-progress events as they arrive.
* ``ping`` / ``stats`` / ``shutdown`` — client one-liners for operations;
  ``stats --watch N`` polls repeatedly.
* ``metrics`` — print a server's Prometheus-style text exposition (or
  the JSON snapshot with ``--json``).
* ``smoke`` — self-contained end-to-end check (used by CI): starts an
  in-process server on an ephemeral port, solves scenarios through the TCP
  client, verifies the answers are bit-identical to local ``solve()``
  calls, re-requests them asserting shared-cache hits, streams one anytime
  solve asserting ≥ 2 improving cost events, then drains and shuts down.
* ``route`` — run a :class:`~repro.service.router.SolveRouter` in the
  foreground: consistent-hash routing by problem digest over ``--backend``
  solve nodes, with tiered caching, per-client rate limits and failover.
* ``cluster-smoke`` — self-contained cluster check (used by CI): boots one
  router over N in-process backends, then proves the sharding story end to
  end — deterministic consistent-hash placement, hot-LRU repeats, a peer
  fetch that avoids a recompute, a backend kill answered by bit-identical
  failover re-dispatch, and token-bucket shedding with typed errors.

Exit codes: 0 on success; 1 on any failure (including smoke assertions).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..api import PebblingProblem, solve
from .client import ProgressEvent, ServiceClient, ServiceError
from .router import BackendSpec, HashRing, RouterConfig, SolveRouter
from .server import ServiceConfig, SolveService

__all__ = ["main"]

#: Scenarios the smoke test pushes through the service (quick tier).
SMOKE_SCENARIOS = ("tree-prbp-critical", "fft-blocked-prbp", "chained-prbp-constant")

#: Scenario streamed in the smoke test; its greedy seed leaves the anytime
#: refiner plenty of accepted improvements at this step budget.
SMOKE_STREAM_SCENARIO = "chained-rbp-greedy"
SMOKE_STREAM_OPTIONS = {"refine_steps": 192, "seed": 0}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the repro-prbp solve service, or talk to a running one.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a solve service in the foreground")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7421, help="0 binds an ephemeral port")
    serve.add_argument("--workers", type=int, default=2, metavar="N")
    serve.add_argument("--max-pending", type=int, default=256, metavar="N")
    serve.add_argument(
        "--cache-dir", metavar="PATH", help="disk tier of the shared result cache"
    )
    serve.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="keep the shared cache memory-only (ignores --cache-dir)",
    )
    serve.add_argument(
        "--max-disk-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="cap the cache's disk tier; least-recently-used entries are pruned first",
    )
    serve.add_argument(
        "--no-processes",
        action="store_true",
        help="solve in threads instead of worker processes",
    )
    serve.add_argument(
        "--trace-file",
        metavar="PATH",
        help="append finished trace spans to PATH as JSON lines",
    )

    for name, help_text in (
        ("ping", "round-trip liveness check"),
        ("stats", "print the server's counters as json"),
        ("shutdown", "ask the server to drain and stop"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--host", default="127.0.0.1")
        cmd.add_argument("--port", type=int, default=7421)
        if name == "shutdown":
            cmd.add_argument(
                "--no-drain", action="store_true", help="abort queued jobs instead of finishing them"
            )
        if name == "stats":
            cmd.add_argument(
                "--watch",
                type=float,
                default=None,
                metavar="SECONDS",
                help="poll repeatedly every SECONDS until interrupted",
            )
            cmd.add_argument(
                "--watch-count",
                type=int,
                default=None,
                metavar="N",
                help="with --watch: stop after N snapshots",
            )

    metrics_cmd = sub.add_parser(
        "metrics", help="print a server's metrics as Prometheus-style text"
    )
    metrics_cmd.add_argument("--host", default="127.0.0.1")
    metrics_cmd.add_argument("--port", type=int, default=7421)
    metrics_cmd.add_argument(
        "--json", action="store_true", help="print the JSON snapshot instead of text"
    )

    solve_cmd = sub.add_parser("solve", help="solve one bench-registry scenario remotely")
    solve_cmd.add_argument("--host", default="127.0.0.1")
    solve_cmd.add_argument("--port", type=int, default=7421)
    solve_cmd.add_argument("--scenario", required=True, metavar="NAME")
    solve_cmd.add_argument("--tier", choices=("quick", "full"), default="quick")
    solve_cmd.add_argument("--solver", default=None, help="override the scenario's solver")
    solve_cmd.add_argument(
        "--stream", action="store_true", help="print anytime-progress events as they arrive"
    )

    smoke = sub.add_parser("smoke", help="self-contained end-to-end service check (CI)")
    smoke.add_argument("--workers", type=int, default=2, metavar="N")
    smoke.add_argument(
        "--no-processes", action="store_true", help="force the thread worker path"
    )

    route = sub.add_parser("route", help="run a cluster front router in the foreground")
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=7420, help="0 binds an ephemeral port")
    route.add_argument(
        "--backend",
        action="append",
        required=True,
        metavar="HOST:PORT",
        help="a backend solve node (repeat for each node)",
    )
    route.add_argument(
        "--ring-replicas", type=int, default=64, metavar="N", help="virtual nodes per backend"
    )
    route.add_argument(
        "--hot-cache", type=int, default=2048, metavar="N", help="router hot-LRU entries"
    )
    route.add_argument(
        "--max-inflight", type=int, default=512, metavar="N", help="overload shed threshold"
    )
    route.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="R",
        help="per-client token-bucket refill (requests/s); omit for unlimited",
    )
    route.add_argument(
        "--burst", type=float, default=None, metavar="B", help="token-bucket capacity"
    )
    route.add_argument(
        "--no-peer-probe",
        action="store_true",
        help="skip peer cache probes (primary answers or recomputes)",
    )
    route.add_argument(
        "--trace-file",
        metavar="PATH",
        help="append finished trace spans to PATH as JSON lines",
    )

    cluster = sub.add_parser(
        "cluster-smoke", help="self-contained router+backends cluster check (CI)"
    )
    cluster.add_argument("--backends", type=int, default=3, metavar="N")
    cluster.add_argument("--workers", type=int, default=1, metavar="N")
    cluster.add_argument(
        "--no-processes", action="store_true", help="force the thread worker path"
    )
    return parser


# --------------------------------------------------------------------------- #
# serve
# --------------------------------------------------------------------------- #


def _cmd_serve(args: argparse.Namespace) -> int:
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        cache_dir=None if args.no_disk_cache else args.cache_dir,
        max_disk_bytes=args.max_disk_bytes,
        prefer_processes=not args.no_processes,
        trace_file=args.trace_file,
    )

    async def run() -> None:
        service = SolveService(config)
        await service.start()
        host, port = service.address
        print(f"repro-serve listening on {host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # e.g. Windows event loops
                loop.add_signal_handler(sig, service.request_shutdown)
        await service.serve_forever()
        print("repro-serve: drained and stopped", flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


# --------------------------------------------------------------------------- #
# client one-liners
# --------------------------------------------------------------------------- #


def _cmd_ping(args: argparse.Namespace) -> int:
    async def run() -> int:
        async with await ServiceClient.connect(args.host, args.port) as client:
            doc = await client.ping()
            print(f"pong (protocol v{doc.get('protocol_version')})")
        return 0

    return asyncio.run(run())


def _cmd_stats(args: argparse.Namespace) -> int:
    async def run() -> int:
        async with await ServiceClient.connect(args.host, args.port) as client:
            if args.watch is None:
                print(json.dumps(await client.stats(), indent=2, sort_keys=True))
                return 0
            polls = 0
            while True:
                print(json.dumps(await client.stats(), indent=2, sort_keys=True), flush=True)
                polls += 1
                if args.watch_count is not None and polls >= args.watch_count:
                    return 0
                await asyncio.sleep(max(0.0, args.watch))
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    async def run() -> int:
        async with await ServiceClient.connect(args.host, args.port) as client:
            doc = await client.metrics()
        if args.json:
            print(json.dumps(doc["snapshot"], indent=2, sort_keys=True))
        else:
            print(doc["exposition"], end="")
        return 0

    return asyncio.run(run())


def _cmd_shutdown(args: argparse.Namespace) -> int:
    async def run() -> int:
        async with await ServiceClient.connect(args.host, args.port) as client:
            await client.shutdown_server(drain=not args.no_drain)
            print("shutdown requested" + (" (drain)" if not args.no_drain else " (abort queued)"))
        return 0

    return asyncio.run(run())


def _scenario_problem(name: str, tier: str) -> Tuple[PebblingProblem, str, Dict[str, Any]]:
    """Materialize a bench-registry scenario into (problem, solver, options)."""
    from ..bench.scenario import materialize_scenario

    return materialize_scenario(name, tier)


def _cmd_solve(args: argparse.Namespace) -> int:
    problem, solver, options = _scenario_problem(args.scenario, args.tier)
    if args.solver is not None:
        solver = args.solver

    async def run() -> int:
        async with await ServiceClient.connect(args.host, args.port) as client:
            if args.stream:

                def show(event: ProgressEvent) -> None:
                    print(f"  anytime cost {event.cost} at {event.elapsed_s * 1000:.1f} ms", flush=True)

                result, events = await client.solve_stream(
                    problem, solver, on_progress=show, **options
                )
                print(f"{len(events)} progress events")
            else:
                result, meta = await client.solve_detailed(problem, solver, **options)
                if meta["cache_hit"]:
                    print("(answered from the shared cache)")
            print(result.describe())
        return 0

    return asyncio.run(run())


# --------------------------------------------------------------------------- #
# smoke
# --------------------------------------------------------------------------- #


def _check(condition: bool, message: str, failures: List[str]) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        failures.append(message)


async def _smoke(workers: int, prefer_processes: bool) -> int:
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as cache_dir:
        service = SolveService(
            ServiceConfig(
                port=0,
                workers=workers,
                cache_dir=cache_dir,
                prefer_processes=prefer_processes,
            )
        )
        await service.start()
        host, port = service.address
        print(f"smoke: server on {host}:{port} (pool mode: {service.stats()['pool']['mode']})")

        async with await ServiceClient.connect(host, port) as client:
            await client.ping()

            # 1. three scenarios through the TCP client, checked against local solves
            workload = [(name, *_scenario_problem(name, "quick")) for name in SMOKE_SCENARIOS]
            for name, problem, solver, options in workload:
                local = solve(problem, solver=solver, **options)
                remote, meta = await client.solve_detailed(problem, solver, **options)
                _check(
                    remote.cost == local.cost
                    and remote.solver == local.solver
                    and remote.schedule.moves == local.schedule.moves,
                    f"{name}: remote result bit-identical to local solve (cost {remote.cost})",
                    failures,
                )
                _check(not meta["cache_hit"], f"{name}: first request was a fresh solve", failures)

            # 2. repeats answered from the shared cache
            for name, problem, solver, options in workload:
                _, meta = await client.solve_detailed(problem, solver, **options)
                _check(meta["cache_hit"], f"{name}: repeat answered from the shared cache", failures)
            stats = await client.stats()
            hits = stats["jobs"]["cache_answers"]
            _check(
                hits >= len(workload),
                f"cache answered {hits} repeat request(s) (counter from server stats)",
                failures,
            )

            # 3. streamed anytime progress: monotonically improving costs
            problem, solver, _ = _scenario_problem(SMOKE_STREAM_SCENARIO, "quick")
            result, events = await client.solve_stream(
                problem, solver, **SMOKE_STREAM_OPTIONS
            )
            costs = [event.cost for event in events]
            improving = [c for prev, c in zip(costs, costs[1:]) if c < prev]
            _check(
                len(events) >= 3 and len(improving) >= 2,
                f"streamed solve pushed {len(events)} events, {len(improving)} strict improvements "
                f"({costs[0] if costs else '-'} -> {result.cost})",
                failures,
            )
            _check(
                costs == sorted(costs, reverse=True) and (not costs or costs[-1] == result.cost),
                "streamed costs are monotone and end at the final result",
                failures,
            )

            # 4. graceful shutdown drains cleanly
            await client.shutdown_server(drain=True)
        await service.wait_closed()
        print("smoke: server drained and closed")

    if failures:
        print(f"smoke: {len(failures)} check(s) FAILED", file=sys.stderr)
        return 1
    print("smoke: all checks passed")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    return asyncio.run(_smoke(args.workers, prefer_processes=not args.no_processes))


# --------------------------------------------------------------------------- #
# route
# --------------------------------------------------------------------------- #


def _parse_backend(text: str) -> BackendSpec:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"error: --backend needs HOST:PORT, got {text!r}")
    return BackendSpec(host, int(port))


def _cmd_route(args: argparse.Namespace) -> int:
    config = RouterConfig(
        backends=tuple(_parse_backend(text) for text in args.backend),
        host=args.host,
        port=args.port,
        ring_replicas=args.ring_replicas,
        hot_cache_entries=args.hot_cache,
        max_inflight=args.max_inflight,
        rate_limit_per_s=args.rate_limit,
        rate_limit_burst=args.burst,
        peer_probe=not args.no_peer_probe,
        trace_file=args.trace_file,
    )

    async def run() -> None:
        router = SolveRouter(config)
        await router.start()
        host, port = router.address
        names = ", ".join(spec.name for spec in config.backends)
        print(f"repro-route listening on {host}:{port} over [{names}]", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, router.request_shutdown)
        await router.serve_forever()
        print("repro-route: drained and stopped", flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


# --------------------------------------------------------------------------- #
# cluster smoke
# --------------------------------------------------------------------------- #


def _uncached_problem_for(
    ring: HashRing, primary: str, taken: set
) -> Tuple[PebblingProblem, str]:
    """A fresh problem whose ring primary is ``primary`` (for failover tests)."""
    from ..api.cache import problem_digest
    from ..dags import kary_tree_dag

    for arity in (2, 3):
        for depth in (3, 4, 5, 6):
            for r in (2, 3, 4, 5):
                problem = PebblingProblem(kary_tree_dag(arity, depth), r=r)
                digest = problem_digest(problem, solver="auto", options={})
                if digest not in taken and ring.route(digest) == primary:
                    taken.add(digest)
                    return problem, digest
    raise RuntimeError(f"no candidate problem hashed to backend {primary}")


async def _cluster_smoke(backends_n: int, workers: int, prefer_processes: bool) -> int:
    from ..api.cache import problem_digest

    failures: List[str] = []
    with contextlib.ExitStack() as stack:
        # one *separate* cache dir per backend: peer fetch must cross the
        # network through the cache_only probe, not leak through a shared disk
        backends: List[SolveService] = []
        # ONE trace sink shared by the router and every backend: the whole
        # point of cross-node tracing is that spans from different nodes
        # stitch into one trace, which check 5 below asserts.
        trace_dir = stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-cluster-trace-")
        )
        trace_path = Path(trace_dir) / "spans.jsonl"
        for _ in range(backends_n):
            cache_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-")
            )
            service = SolveService(
                ServiceConfig(
                    port=0,
                    workers=workers,
                    cache_dir=cache_dir,
                    prefer_processes=prefer_processes,
                    trace_file=trace_path,
                )
            )
            await service.start()
            backends.append(service)
        specs = tuple(BackendSpec(*service.address) for service in backends)
        by_name = {spec.name: service for spec, service in zip(specs, backends)}
        router = SolveRouter(
            RouterConfig(
                backends=specs,
                failure_threshold=1,
                cooldown_s=30.0,
                trace_file=trace_path,
            )
        )
        await router.start()
        host, port = router.address
        ring = HashRing(tuple(spec.name for spec in specs))
        print(f"cluster-smoke: router on {host}:{port} over {len(backends)} backends")

        async with await ServiceClient.connect(host, port) as client:
            pong = await client.ping()
            _check(pong.get("role") == "router", "router answers ping with role=router", failures)

            # 1. consistent-hash placement: the backend each solve lands on is
            #    exactly the one an independently built ring predicts
            workload = [(name, *_scenario_problem(name, "quick")) for name in SMOKE_SCENARIOS]
            for name, problem, solver, options in workload:
                local = solve(problem, solver=solver, **options)
                remote, meta = await client.solve_detailed(problem, solver, **options)
                digest = problem_digest(problem, solver=solver, options=dict(options))
                _check(
                    remote.cost == local.cost and remote.schedule.moves == local.schedule.moves,
                    f"{name}: routed result bit-identical to local solve (cost {remote.cost})",
                    failures,
                )
                _check(
                    meta["backend"] == ring.route(digest),
                    f"{name}: landed on ring-predicted backend {ring.route(digest)}",
                    failures,
                )

            # 2. repeats hit the router's hot LRU without touching a backend
            before = (await client.stats())["routing"]
            for name, problem, solver, options in workload:
                _, meta = await client.solve_detailed(problem, solver, **options)
                _check(meta["cache_hit"], f"{name}: repeat answered from cluster cache", failures)
            after = (await client.stats())["routing"]
            _check(
                after["hot_hits"] - before["hot_hits"] >= len(workload),
                f"hot LRU served {after['hot_hits'] - before['hot_hits']} repeat(s), "
                "no backend round trips",
                failures,
            )
            _check(
                after["dispatched"] == before["dispatched"],
                "repeats dispatched no new backend solves",
                failures,
            )

            # 3. peer fetch: a result computed on a NON-primary node is found
            #    by probing peers, so the primary never recomputes it
            taken: set = set()
            primary_name = specs[0].name
            peer_name = specs[1 % len(specs)].name
            peer_problem, peer_digest = _uncached_problem_for(ring, primary_name, taken)
            peer_pref = ring.preference(peer_digest)
            donor = by_name[peer_pref[1]]  # first non-primary on the ring
            async with await ServiceClient.connect(*donor.address) as direct:
                seeded = await direct.solve(peer_problem)
            routed, meta = await client.solve_detailed(peer_problem)
            stats = await client.stats()
            _check(
                meta["cache_hit"] and meta["backend"] == peer_pref[1],
                f"peer fetch answered from non-primary {peer_pref[1]}",
                failures,
            )
            _check(
                routed.cost == seeded.cost and stats["routing"]["peer_fetch_hits"] >= 1,
                f"peer fetch avoided a recompute (peer_fetch_hits="
                f"{stats['routing']['peer_fetch_hits']})",
                failures,
            )

            # 4. failover: kill a backend hard, then route a fresh problem
            #    whose primary it was — the answer must come from another
            #    node, bit-identical to a local solve
            victim_problem, victim_digest = _uncached_problem_for(ring, peer_name, taken)
            victim = by_name[peer_name]
            await victim.shutdown(drain=False)
            local = solve(victim_problem)
            remote, meta = await client.solve_detailed(victim_problem)
            stats = await client.stats()
            _check(
                remote.cost == local.cost and remote.schedule.moves == local.schedule.moves,
                f"failover result bit-identical after killing {peer_name} (cost {remote.cost})",
                failures,
            )
            _check(
                meta["backend"] != peer_name and meta["backend"] in by_name,
                f"re-dispatched to surviving backend {meta['backend']}",
                failures,
            )
            _check(
                any(not b["alive"] for b in stats["backends"]),
                "router marked the killed backend down",
                failures,
            )

            # 5. observability: the metrics op serves parseable exposition on
            #    both tiers, and the shared trace sink holds at least one
            #    trace whose spans cover the router's routing decision, the
            #    backend's queue wait and the solver execution
            from ..obs.metrics import parse_exposition

            families = parse_exposition((await client.metrics())["exposition"])
            _check(
                "repro_router_requests_total" in families
                and "repro_router_tier_seconds" in families,
                "router metrics exposition parses (request + tier series present)",
                failures,
            )
            survivor = next(b for b in backends if b is not victim)
            async with await ServiceClient.connect(*survivor.address) as direct:
                backend_families = parse_exposition((await direct.metrics())["exposition"])
            _check(
                "repro_request_latency_seconds" in backend_families
                and "repro_cache_ops_total" in backend_families
                and "repro_queue_depth" in backend_families,
                "backend metrics expose latency histogram, cache counters, queue gauge",
                failures,
            )

            trace_names: Dict[str, set] = {}
            trace_nodes: Dict[str, set] = {}
            for line in trace_path.read_text(encoding="utf-8").splitlines():
                try:
                    span = json.loads(line)
                except json.JSONDecodeError:
                    continue
                trace_names.setdefault(span["trace_id"], set()).add(span["name"])
                trace_nodes.setdefault(span["trace_id"], set()).add(span["node"])
            stitched = [
                tid
                for tid, names in trace_names.items()
                if {"router.route", "queue_wait", "solve_exec"} <= names
            ]
            _check(
                bool(stitched),
                f"{len(stitched)} trace(s) cover routing decision, queue wait "
                "and solver execution under one trace id",
                failures,
            )
            _check(
                any(
                    any(node.startswith("router:") for node in trace_nodes[tid])
                    and any(node.startswith("service:") for node in trace_nodes[tid])
                    for tid in stitched
                ),
                "a stitched trace crosses the router and a backend node",
                failures,
            )

        # 6. rate limiting: a second router with a one-token bucket sheds the
        #    second request with a typed error (counted, not dropped)
        limited = SolveRouter(
            RouterConfig(
                backends=(specs[0],),
                rate_limit_per_s=0.001,
                rate_limit_burst=1,
            )
        )
        await limited.start()
        async with await ServiceClient.connect(*limited.address) as client:
            name, problem, solver, options = workload[0]
            _ = await client.solve_detailed(problem, solver, client_id="smoke", **options)
            try:
                await client.solve_detailed(problem, solver, client_id="smoke", **options)
                shed_ok = False
            except ServiceError as exc:
                shed_ok = exc.code == "rate-limited"
            stats = limited.stats()
            _check(shed_ok, "second request shed with a typed rate-limited error", failures)
            _check(
                stats["shed"]["rate_limited"] == 1,
                "shed request was counted, not silently dropped",
                failures,
            )
        await limited.shutdown()

        await router.shutdown()
        for service in backends:
            if service is not victim:
                await service.shutdown()
        print("cluster-smoke: router and backends drained")

    if failures:
        print(f"cluster-smoke: {len(failures)} check(s) FAILED", file=sys.stderr)
        return 1
    print("cluster-smoke: all checks passed")
    return 0


def _cmd_cluster_smoke(args: argparse.Namespace) -> int:
    if args.backends < 2:
        print("error: cluster-smoke needs at least 2 backends", file=sys.stderr)
        return 1
    return asyncio.run(
        _cluster_smoke(args.backends, args.workers, prefer_processes=not args.no_processes)
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "serve": _cmd_serve,
        "ping": _cmd_ping,
        "stats": _cmd_stats,
        "metrics": _cmd_metrics,
        "shutdown": _cmd_shutdown,
        "solve": _cmd_solve,
        "smoke": _cmd_smoke,
        "route": _cmd_route,
        "cluster-smoke": _cmd_cluster_smoke,
    }
    try:
        return handlers[args.command](args)
    except ConnectionRefusedError:
        print("error: no service is listening on the given host/port", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
