"""Client library for the solve service.

:class:`ServiceClient` is the asyncio client: one TCP connection, one
request in flight at a time (open several clients for concurrency — the
server schedules across connections via its admission queue).  Three
calling conventions cover the protocol:

* **blocking** — :meth:`ServiceClient.solve` poses a problem and returns
  the :class:`~repro.api.result.SolveResult`, reconstructed locally by
  replaying the wire schedule through the game engine (so it is
  bit-identical to what a local ``solve()`` would have produced);
* **fire-and-forget** — :meth:`ServiceClient.submit` returns a job id
  immediately; :meth:`ServiceClient.poll` (optionally waiting) fetches the
  state and, once finished, the result;
* **streaming** — :meth:`ServiceClient.solve_stream` returns the result
  *plus* the anytime-progress events (strictly improving costs) the server
  pushed while the solve ran, invoking an optional callback per event as
  they arrive.

For scripts and the CLI there is a tiny synchronous facade,
:func:`solve_via_service`, which wraps one connect/solve/close round trip
in ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..api.problem import PebblingProblem
from ..api.result import SolveResult
from ..obs.tracing import current_trace
from . import protocol
from .protocol import ProtocolError, read_frame, write_frame

__all__ = [
    "ProgressEvent",
    "ServiceClient",
    "ServiceError",
    "solve_via_service",
]


class ServiceError(Exception):
    """An ``error`` response from the server, with its machine-readable code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code

    def __str__(self) -> str:
        return f"[{self.code}] {super().__str__()}"


@dataclass(frozen=True)
class ProgressEvent:
    """One anytime-progress push: the best known cost at ``elapsed_s``."""

    cost: int
    elapsed_s: float


class ServiceClient:
    """One connection to a running solve service.

    Construct via :meth:`connect` (or use as an async context manager)::

        async with await ServiceClient.connect(host, port) as client:
            result = await client.solve(problem)
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._request_seq = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        """Open a connection to ``host:port``."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def _next_id(self) -> str:
        self._request_seq += 1
        return f"r{self._request_seq}"

    async def _roundtrip(self, op: str, **fields: object) -> Dict[str, Any]:
        """Send one request and return its (non-progress) response."""
        request_id = self._next_id()
        await write_frame(self._writer, protocol.make_request(op, request_id, **fields))
        return await self._next_response(request_id)

    async def _next_response(self, request_id: str) -> Dict[str, Any]:
        doc = await read_frame(self._reader)
        if doc is None:
            raise ConnectionError("server closed the connection mid-request")
        if doc.get("id") not in (request_id, None):
            raise ProtocolError(
                f"response id {doc.get('id')!r} does not match request {request_id!r}"
            )
        if doc.get("op") == "error":
            raise ServiceError(str(doc.get("code", "internal")), str(doc.get("error", "")))
        return doc

    @staticmethod
    def _expect(doc: Mapping[str, Any], op: str) -> Mapping[str, Any]:
        if doc.get("op") != op:
            raise ProtocolError(f"expected a {op!r} response, got {doc.get('op')!r}")
        return doc

    # ------------------------------------------------------------------ #
    # protocol operations
    # ------------------------------------------------------------------ #

    async def ping(self) -> Dict[str, Any]:
        """Round-trip liveness check; returns the ``pong`` payload."""
        return dict(self._expect(await self._roundtrip("ping"), "pong"))

    async def stats(self) -> Dict[str, Any]:
        """The server's counter snapshot (queue depth, cache hits, ...)."""
        doc = self._expect(await self._roundtrip("stats"), "stats")
        stats = doc.get("stats")
        return dict(stats) if isinstance(stats, dict) else {}

    async def metrics(self) -> Dict[str, Any]:
        """The server's metrics (protocol v4): text exposition + JSON snapshot.

        Returns ``{"exposition": <Prometheus-style text>, "snapshot": <dict>}``.
        """
        doc = self._expect(await self._roundtrip("metrics"), "metrics")
        snapshot = doc.get("snapshot")
        return {
            "exposition": str(doc.get("exposition", "")),
            "snapshot": dict(snapshot) if isinstance(snapshot, dict) else {},
        }

    async def shutdown_server(self, drain: bool = True) -> None:
        """Ask the server to shut down (gracefully draining by default)."""
        self._expect(await self._roundtrip("shutdown", drain=drain), "ok")

    async def solve(
        self,
        problem: PebblingProblem,
        solver: str = "auto",
        *,
        priority: int = 0,
        deadline_s: Optional[float] = None,
        client_id: Optional[str] = None,
        **options: object,
    ) -> SolveResult:
        """Solve remotely and return the validated result."""
        result, _ = await self.solve_detailed(
            problem,
            solver,
            priority=priority,
            deadline_s=deadline_s,
            client_id=client_id,
            **options,
        )
        return result

    async def solve_detailed(
        self,
        problem: PebblingProblem,
        solver: str = "auto",
        *,
        priority: int = 0,
        deadline_s: Optional[float] = None,
        client_id: Optional[str] = None,
        **options: object,
    ) -> Tuple[SolveResult, Dict[str, Any]]:
        """:meth:`solve` plus the response metadata (``cache_hit``, ``job_id``).

        ``client_id`` is the rate-limit identity a front router buckets
        requests under; a plain single-node server ignores it.  The metadata
        also carries ``backend`` when a router answered (which node served).
        """
        fields: Dict[str, object] = {}
        if client_id is not None:
            fields["client_id"] = client_id
        # Propagate the caller's ambient trace context (if any) so the
        # server's spans parent under it; v3 peers ignore the field.
        ambient = current_trace()
        if ambient is not None:
            fields["trace"] = ambient.to_wire()
        doc = self._expect(
            await self._roundtrip(
                "solve",
                problem=protocol.problem_to_wire(problem),
                solver=solver,
                options=dict(options),
                priority=priority,
                deadline_s=deadline_s,
                stream=False,
                wait=True,
                **fields,
            ),
            "result",
        )
        result = self._decode_result(problem, doc)
        return result, {
            "cache_hit": bool(doc.get("cache_hit")),
            "job_id": doc.get("job_id"),
            "backend": doc.get("backend"),
        }

    async def probe(
        self,
        problem: PebblingProblem,
        solver: str = "auto",
        **options: object,
    ) -> Optional[SolveResult]:
        """Ask the server's shared cache for a result *without* solving.

        Returns the cached (replay-validated) result, or ``None`` when the
        server answers ``cache-miss``.  This is the peer-fetch primitive the
        cluster router uses: probing every peer costs one cache lookup each,
        which is always cheaper than recomputing a solve.
        """
        try:
            doc = self._expect(
                await self._roundtrip(
                    "solve",
                    problem=protocol.problem_to_wire(problem),
                    solver=solver,
                    options=dict(options),
                    stream=False,
                    wait=True,
                    cache_only=True,
                ),
                "result",
            )
        except ServiceError as exc:
            if exc.code == "cache-miss":
                return None
            raise
        return self._decode_result(problem, doc)

    async def solve_stream(
        self,
        problem: PebblingProblem,
        solver: str = "auto",
        *,
        priority: int = 0,
        deadline_s: Optional[float] = None,
        on_progress: Optional[Callable[[ProgressEvent], None]] = None,
        **options: object,
    ) -> Tuple[SolveResult, List[ProgressEvent]]:
        """Solve remotely with streamed anytime progress.

        Returns the final result and every :class:`ProgressEvent` the server
        pushed (first event: the refinement seed's cost; later events:
        strictly cheaper accepted schedules).  ``on_progress`` is invoked
        per event as it arrives, before the final result exists.

        A request the shared cache can already answer returns immediately
        with an **empty** event list — no solve runs, so there is no
        progress to stream; the cached result is the same one a fresh
        streamed solve would have ended on.
        """
        request_id = self._next_id()
        await write_frame(
            self._writer,
            protocol.make_request(
                "solve",
                request_id,
                problem=protocol.problem_to_wire(problem),
                solver=solver,
                options=dict(options),
                priority=priority,
                deadline_s=deadline_s,
                stream=True,
                wait=True,
                **(
                    {"trace": current_trace().to_wire()}
                    if current_trace() is not None
                    else {}
                ),
            ),
        )
        events: List[ProgressEvent] = []
        while True:
            doc = await self._next_response(request_id)
            if doc.get("op") == "progress":
                event = ProgressEvent(
                    cost=int(doc.get("cost", -1)), elapsed_s=float(doc.get("elapsed_s", 0.0))
                )
                events.append(event)
                if on_progress is not None:
                    on_progress(event)
                continue
            self._expect(doc, "result")
            return self._decode_result(problem, doc), events

    async def submit(
        self,
        problem: PebblingProblem,
        solver: str = "auto",
        *,
        priority: int = 0,
        deadline_s: Optional[float] = None,
        **options: object,
    ) -> str:
        """Fire-and-forget solve; returns the server-assigned job id."""
        doc = self._expect(
            await self._roundtrip(
                "solve",
                problem=protocol.problem_to_wire(problem),
                solver=solver,
                options=dict(options),
                priority=priority,
                deadline_s=deadline_s,
                stream=False,
                wait=False,
            ),
            "accepted",
        )
        return str(doc["job_id"])

    async def poll(
        self, job_id: str, problem: Optional[PebblingProblem] = None, *, wait: bool = False
    ) -> Tuple[str, Optional[SolveResult]]:
        """State of a submitted job, plus its result once finished.

        ``problem`` is required to decode a finished job's result (the wire
        result references the problem both sides already hold); without it
        only the state comes back.  A job that *failed* raises the
        corresponding :class:`ServiceError`.
        """
        doc = self._expect(await self._roundtrip("poll", job_id=job_id, wait=wait), "status")
        state = str(doc.get("state"))
        if doc.get("error") is not None:
            raise ServiceError(str(doc.get("code", "internal")), str(doc["error"]))
        result: Optional[SolveResult] = None
        if problem is not None and isinstance(doc.get("result"), dict):
            result = protocol.result_from_wire(problem, doc["result"])
        return state, result

    async def wait(self, job_id: str, problem: PebblingProblem) -> SolveResult:
        """Block until a submitted job finishes; returns its result."""
        state, result = await self.poll(job_id, problem, wait=True)
        if result is None:
            raise ServiceError("internal", f"job {job_id} ended in state {state!r} without a result")
        return result

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _decode_result(problem: PebblingProblem, doc: Mapping[str, Any]) -> SolveResult:
        wire = doc.get("result")
        if not isinstance(wire, Mapping):
            raise ProtocolError("'result' response carries no result object")
        return protocol.result_from_wire(problem, wire)


def solve_via_service(
    host: str,
    port: int,
    problem: PebblingProblem,
    solver: str = "auto",
    **options: object,
) -> SolveResult:
    """One-shot synchronous convenience: connect, solve, close."""

    async def run() -> SolveResult:
        async with await ServiceClient.connect(host, port) as client:
            return await client.solve(problem, solver, **options)

    return asyncio.run(run())
