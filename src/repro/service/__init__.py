"""repro.service — the long-running solve daemon and its client.

The library's :func:`repro.api.solve` machinery behind a resident asyncio
TCP server: an admission queue (bounded, priority-ordered, deadline-aware,
with in-flight dedup by problem digest), a worker pool fanning solves over
processes behind one shared persistent :class:`~repro.api.cache.ResultCache`,
and streamed anytime progress — the refiner's improving schedules reach the
client while the solve is still running.

Quick start::

    # terminal 1
    python -m repro.service serve --port 7421 --workers 4

    # terminal 2 (or any client process)
    import asyncio
    from repro.api import PebblingProblem
    from repro.dags import kary_tree_dag
    from repro.service import ServiceClient

    async def main():
        async with await ServiceClient.connect("127.0.0.1", 7421) as client:
            result = await client.solve(PebblingProblem(kary_tree_dag(2, 5), r=3))
            print(result.describe())

    asyncio.run(main())

Everything on the wire is the length-prefixed JSON protocol of
:mod:`repro.service.protocol`; results are replay-validated on receipt, so
a remote solve returns the same bit-identical :class:`~repro.api.result.SolveResult`
a local one would.
"""

from .client import ProgressEvent, ServiceClient, ServiceError, solve_via_service
from .protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION, ProtocolError
from .queue import (
    AdmissionQueue,
    ClientRateLimiter,
    DeadlineExceeded,
    JobState,
    QueueClosed,
    QueueFull,
    ServiceJob,
    TokenBucket,
)
from .router import BackendSpec, HashRing, RouterConfig, SolveRouter, run_router
from .server import ServiceConfig, SolveService, run_service
from .workers import WorkerPool

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ProgressEvent",
    "ServiceClient",
    "ServiceError",
    "solve_via_service",
    "AdmissionQueue",
    "ClientRateLimiter",
    "DeadlineExceeded",
    "JobState",
    "QueueClosed",
    "QueueFull",
    "ServiceJob",
    "TokenBucket",
    "BackendSpec",
    "HashRing",
    "RouterConfig",
    "SolveRouter",
    "run_router",
    "ServiceConfig",
    "SolveService",
    "run_service",
    "WorkerPool",
]
