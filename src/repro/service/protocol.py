"""Wire protocol of the solve service: length-prefixed JSON frames.

Every message — request or response — is one *frame*: a 4-byte big-endian
unsigned payload length followed by that many bytes of UTF-8 JSON encoding a
single object.  Frames keep the stream self-synchronizing (a reader always
knows where the next message starts) while staying trivially debuggable:
``socat`` plus a hex dump shows you the whole conversation.

Versioning
----------
Each message carries ``"v": PROTOCOL_VERSION``.  A server refuses requests
whose version is outside :data:`SUPPORTED_PROTOCOL_VERSIONS` with a
``protocol`` error instead of guessing; the version is bumped whenever the
frame layout or a message schema changes incompatibly.  v4 is a strict
superset of v3 — every new field is optional and every new op degrades to a
typed error on a v3 server — so v3 requests are still accepted and validators
ignore unknown fields (which is how a v3 server already treated a v4
``trace`` field).  Response frames stamp the server's own version; clients
do not gate on it.

Problem and result serialization
--------------------------------
Problems travel as their full content — DAG (``n``, edge list, labels, name,
family tag), capacity, game, variant — plus the
:func:`repro.core.canonical.dag_digest` of the DAG.  The receiving side
rebuilds the DAG and recomputes the digest; a mismatch means the wire doc
does not faithfully describe the graph and is refused.  Results travel as
the schedule's packed columnar form (the base64 ``ops``/``nodes``/``args``
columns of :mod:`repro.core.schedule_ir`, protocol version 2) plus solver
provenance; :func:`result_from_wire` decodes the columns and replays them
through the vectorised replay kernel (the library's "never trust, always
replay" policy), so a service client ends up holding a
:class:`~repro.api.result.SolveResult` whose cost is the cost of an actually
legal pebbling — bit-identical to what a local ``solve()`` returns.

Family-tag parameters may contain tuples (e.g. ``layer_sizes``); JSON would
silently turn them into lists, so scalar values pass through as-is and
containers are type-tagged (``{"__tuple__": [...]}``) and restored exactly.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.canonical import dag_digest
from ..core.dag import ComputationalDAG, DAGFamily
from ..core.schedule_ir import (
    from_schedule,
    ir_from_arrays,
    kernel_stats,
    pack_arrays,
    to_schedule,
    unpack_arrays,
)
from ..core.strategy import ScheduleStats
from ..core.variants import GameVariant
from ..api.problem import GAMES, PebblingProblem
from ..api.result import Schedule, SolveAttempt, SolveResult, SolveStats
from ..solvers.anytime import RefinementTrajectory

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "MAX_FRAME_BYTES",
    "REQUEST_OPS",
    "RESPONSE_OPS",
    "ERROR_CODES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "make_request",
    "make_response",
    "validate_request",
    "problem_to_wire",
    "problem_from_wire",
    "result_to_wire",
    "result_from_wire",
]

#: Bumped on any incompatible change to the frame layout or message schemas.
#: v2: result frames carry the schedule as packed schedule-IR columns
#: instead of a per-move JSON list.
#: v3: ``solve`` requests may carry ``cache_only`` (answer from the shared
#: cache or fail with ``cache-miss`` — the cluster's peer-fetch probe) and
#: ``client_id`` (rate-limit identity, consumed by the front router);
#: responses may carry ``backend`` (which node served a routed request);
#: router-origin error codes added.
#: v4: observability.  ``solve`` requests may carry an optional ``trace``
#: object (``{"trace_id", "span_id"}``) propagating a distributed-trace
#: context; solve ``result``/``error`` responses may echo a ``trace_id``;
#: a new ``metrics`` op returns the node's metrics registry (text
#: exposition and/or JSON snapshot); ``solve_stats`` gains ``attempts``
#: (per-member portfolio timings).  All additions are optional, so v3
#: frames remain valid and v3 servers ignore the trace field.
PROTOCOL_VERSION = 4

#: Request versions this build accepts.  v3 requests lack the optional
#: observability fields but are otherwise identical.
SUPPORTED_PROTOCOL_VERSIONS = frozenset({3, 4})

#: Upper bound on a single frame's payload.  Large enough for the move list
#: of a multi-thousand-node schedule, small enough that a garbage length
#: prefix cannot make the server allocate gigabytes.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Operations a client may send.
REQUEST_OPS = frozenset({"ping", "solve", "poll", "stats", "metrics", "shutdown"})

#: Operations a server may answer with.
RESPONSE_OPS = frozenset(
    {"pong", "result", "accepted", "status", "progress", "stats", "metrics", "ok", "error"}
)

#: Machine-readable failure classes carried by ``error`` responses.
ERROR_CODES = frozenset(
    {
        "protocol",
        "bad-request",
        "queue-full",
        "deadline",
        "solver-error",
        "unknown-job",
        "shutting-down",
        "internal",
        # v3 — cluster codes.  ``cache-miss`` answers a cache_only probe the
        # shared cache cannot serve; the rest originate at the front router:
        # a client over its token bucket, a router at its in-flight bound,
        # and a request whose every candidate backend is down.
        "cache-miss",
        "rate-limited",
        "overloaded",
        "no-backend",
    }
)

#: Option values allowed over the wire: JSON scalars only.  Callbacks and
#: other rich objects are intentionally unrepresentable — the service adds
#: its own ``on_progress`` bridge server-side for streamed solves.
_SCALAR_TYPES = (bool, int, float, str, type(None))


class ProtocolError(ValueError):
    """A frame or message that does not conform to this protocol version."""


# --------------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------------- #


def encode_frame(doc: Mapping[str, object]) -> bytes:
    """Serialize one message object into a length-prefixed frame."""
    try:
        payload = json.dumps(doc, separators=(",", ":"), allow_nan=False).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serializable: {exc}") from exc
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Dict[str, object]:
    """Parse one frame payload (header already stripped) into a message dict."""
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid UTF-8 JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(f"frame payload must be a JSON object, got {type(doc).__name__}")
    return doc


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on clean EOF between frames.

    Raises
    ------
    ProtocolError
        On a truncated header/payload, a zero or oversized length prefix, or
        a payload that is not a JSON object.  After a framing error the
        stream position is untrustworthy — the caller must close the
        connection rather than try to resynchronize.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF on a frame boundary
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_bytes:
        raise ProtocolError(f"frame of {length} bytes exceeds the {max_bytes}-byte limit")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of {length} bytes)"
        ) from exc
    return decode_frame(payload)


async def write_frame(writer: asyncio.StreamWriter, doc: Mapping[str, object]) -> None:
    """Encode ``doc`` and write it, draining the transport."""
    writer.write(encode_frame(doc))
    await writer.drain()


# --------------------------------------------------------------------------- #
# message construction & validation
# --------------------------------------------------------------------------- #


def make_request(op: str, request_id: str, **fields: object) -> Dict[str, object]:
    """A request envelope: version + op + client-chosen id + op fields."""
    return {"v": PROTOCOL_VERSION, "op": op, "id": request_id, **fields}


def make_response(op: str, request_id: Optional[str], **fields: object) -> Dict[str, object]:
    """A response envelope echoing the request id it answers."""
    return {"v": PROTOCOL_VERSION, "op": op, "id": request_id, **fields}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def validate_request(doc: Mapping[str, object]) -> Dict[str, object]:
    """Check a decoded frame against the request schema; returns it typed.

    Field-level problems raise :class:`ProtocolError` with a message precise
    enough to debug a hand-rolled client.  The ``problem`` payload of a
    ``solve`` request is *not* decoded here — graph reconstruction is the
    admission layer's job, so schema validation stays cheap.
    """
    version = doc.get("v")
    _require(
        version in SUPPORTED_PROTOCOL_VERSIONS,
        f"unsupported protocol version {version!r} (this server speaks "
        f"{sorted(SUPPORTED_PROTOCOL_VERSIONS)})",
    )
    op = doc.get("op")
    _require(isinstance(op, str) and op in REQUEST_OPS, f"unknown request op {op!r}")
    request_id = doc.get("id")
    _require(isinstance(request_id, str) and bool(request_id), "request 'id' must be a non-empty string")

    if op == "solve":
        _require(isinstance(doc.get("problem"), dict), "'solve' requires a 'problem' object")
        solver = doc.get("solver", "auto")
        _require(isinstance(solver, str) and bool(solver), "'solver' must be a non-empty string")
        options = doc.get("options", {})
        _require(isinstance(options, dict), "'options' must be an object")
        for key, value in options.items():
            _require(
                isinstance(value, _SCALAR_TYPES),
                f"option {key!r} must be a JSON scalar, got {type(value).__name__}",
            )
        stream = doc.get("stream", False)
        wait = doc.get("wait", True)
        _require(isinstance(stream, bool), "'stream' must be a boolean")
        _require(isinstance(wait, bool), "'wait' must be a boolean")
        _require(not (stream and not wait), "'stream' requires 'wait': a fire-and-forget solve cannot stream")
        cache_only = doc.get("cache_only", False)
        _require(isinstance(cache_only, bool), "'cache_only' must be a boolean")
        _require(
            not (cache_only and stream),
            "'cache_only' cannot stream: a cache probe never runs a solve",
        )
        _require(
            not (cache_only and not wait),
            "'cache_only' requires 'wait': a probe's whole point is its immediate answer",
        )
        client_id = doc.get("client_id")
        if client_id is not None:
            _require(
                isinstance(client_id, str) and bool(client_id),
                "'client_id' must be a non-empty string or absent",
            )
        priority = doc.get("priority", 0)
        _require(
            isinstance(priority, int) and not isinstance(priority, bool),
            "'priority' must be an integer",
        )
        deadline_s = doc.get("deadline_s")
        if deadline_s is not None:
            _require(
                isinstance(deadline_s, (int, float))
                and not isinstance(deadline_s, bool)
                and deadline_s > 0,
                "'deadline_s' must be a positive number of seconds",
            )
        trace = doc.get("trace")
        if trace is not None:
            # v4 — optional distributed-trace context.  Malformed contexts
            # are a schema error; absence (the v3 case) is fine.
            _require(isinstance(trace, dict), "'trace' must be an object or absent")
            for field in ("trace_id", "span_id"):
                value = trace.get(field)  # type: ignore[union-attr]
                _require(
                    isinstance(value, str) and 0 < len(value) <= 64,
                    f"'trace.{field}' must be a non-empty string of at most 64 chars",
                )
    elif op == "poll":
        job_id = doc.get("job_id")
        _require(isinstance(job_id, str) and bool(job_id), "'poll' requires a 'job_id' string")
        wait = doc.get("wait", False)
        _require(isinstance(wait, bool), "'wait' must be a boolean")
    elif op == "shutdown":
        drain = doc.get("drain", True)
        _require(isinstance(drain, bool), "'drain' must be a boolean")
    return dict(doc)


# --------------------------------------------------------------------------- #
# value-level codecs (family params may hold tuples JSON would flatten)
# --------------------------------------------------------------------------- #


def _value_to_wire(value: object) -> object:
    if isinstance(value, _SCALAR_TYPES):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [_value_to_wire(item) for item in value]}
    if isinstance(value, list):
        return {"__list__": [_value_to_wire(item) for item in value]}
    raise ProtocolError(f"cannot serialize a value of type {type(value).__name__} to the wire")


def _value_from_wire(doc: object) -> object:
    if isinstance(doc, dict):
        if set(doc) == {"__tuple__"} and isinstance(doc["__tuple__"], list):
            return tuple(_value_from_wire(item) for item in doc["__tuple__"])
        if set(doc) == {"__list__"} and isinstance(doc["__list__"], list):
            return [_value_from_wire(item) for item in doc["__list__"]]
        raise ProtocolError(f"unrecognized tagged value {sorted(doc)!r}")
    if isinstance(doc, _SCALAR_TYPES):
        return doc
    raise ProtocolError(f"cannot deserialize a wire value of type {type(doc).__name__}")


# --------------------------------------------------------------------------- #
# problem serialization
# --------------------------------------------------------------------------- #


def _family_to_wire(family: Optional[DAGFamily]) -> Optional[Dict[str, object]]:
    if family is None:
        return None
    return {
        "name": family.name,
        "params": [[key, _value_to_wire(value)] for key, value in family.params],
    }


def _family_from_wire(doc: Optional[object]) -> Optional[DAGFamily]:
    if doc is None:
        return None
    _require(isinstance(doc, dict), "'family' must be an object or null")
    assert isinstance(doc, dict)
    name = doc.get("name")
    params = doc.get("params", [])
    _require(isinstance(name, str) and bool(name), "family 'name' must be a non-empty string")
    _require(isinstance(params, list), "family 'params' must be a list of [key, value] pairs")
    pairs: List[Tuple[str, Any]] = []
    for item in params:
        _require(
            isinstance(item, list) and len(item) == 2 and isinstance(item[0], str),
            "each family param must be a [key, value] pair",
        )
        pairs.append((item[0], _value_from_wire(item[1])))
    return DAGFamily(str(name), tuple(pairs))


def _variant_to_wire(variant: GameVariant) -> Dict[str, object]:
    return {
        "one_shot": variant.one_shot,
        "allow_sliding": variant.allow_sliding,
        "allow_delete": variant.allow_delete,
        "compute_cost": variant.compute_cost,
        "split_compute_cost": variant.split_compute_cost,
    }


def _variant_from_wire(doc: object) -> GameVariant:
    _require(isinstance(doc, dict), "'variant' must be an object")
    assert isinstance(doc, dict)
    known = {"one_shot", "allow_sliding", "allow_delete", "compute_cost", "split_compute_cost"}
    unknown = set(doc) - known
    _require(not unknown, f"unknown variant fields {sorted(unknown)!r}")
    try:
        return GameVariant(
            one_shot=bool(doc.get("one_shot", True)),
            allow_sliding=bool(doc.get("allow_sliding", False)),
            allow_delete=bool(doc.get("allow_delete", True)),
            compute_cost=float(doc.get("compute_cost", 0.0)),
            split_compute_cost=bool(doc.get("split_compute_cost", False)),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid variant: {exc}") from exc


def problem_to_wire(problem: PebblingProblem) -> Dict[str, object]:
    """Serialize a problem with its full DAG content and an integrity digest."""
    dag = problem.dag
    return {
        "dag": {
            "n": dag.n,
            "edges": [[u, v] for u, v in dag.edges],
            "labels": [dag.label(v) for v in range(dag.n)],
            "name": dag.name,
            "family": _family_to_wire(dag.family),
        },
        "r": problem.r,
        "game": problem.game,
        "variant": _variant_to_wire(problem.variant),
        "dag_digest": dag_digest(dag),
    }


def problem_from_wire(doc: Mapping[str, object]) -> PebblingProblem:
    """Rebuild a :class:`PebblingProblem`, verifying the DAG content digest.

    The digest recomputation catches every way a wire document can drift
    from the graph it claims to describe — truncated edge lists, re-ordered
    edges, dropped labels — before a solver ever sees the problem.
    """
    _require(isinstance(doc, Mapping), "'problem' must be an object")
    dag_doc = doc.get("dag")
    _require(isinstance(dag_doc, dict), "problem 'dag' must be an object")
    assert isinstance(dag_doc, dict)
    n = dag_doc.get("n")
    _require(isinstance(n, int) and not isinstance(n, bool) and n >= 0, "dag 'n' must be a non-negative integer")
    edges_doc = dag_doc.get("edges")
    _require(isinstance(edges_doc, list), "dag 'edges' must be a list")
    assert isinstance(edges_doc, list)
    edges: List[Tuple[int, int]] = []
    for item in edges_doc:
        _require(
            isinstance(item, list)
            and len(item) == 2
            and all(isinstance(x, int) and not isinstance(x, bool) for x in item),
            "each dag edge must be a [u, v] pair of integers",
        )
        edges.append((item[0], item[1]))
    labels_doc = dag_doc.get("labels")
    labels: Optional[Dict[int, str]] = None
    if labels_doc is not None:
        _require(
            isinstance(labels_doc, list)
            and len(labels_doc) == n
            and all(isinstance(lb, str) for lb in labels_doc),
            "dag 'labels' must be a list of n strings",
        )
        assert isinstance(labels_doc, list)
        labels = {v: labels_doc[v] for v in range(int(n))}
    name = dag_doc.get("name", "dag")
    _require(isinstance(name, str), "dag 'name' must be a string")
    family = _family_from_wire(dag_doc.get("family"))
    try:
        dag = ComputationalDAG(int(n), edges, labels=labels, name=str(name), family=family)
    except Exception as exc:  # DAGError and friends — wire data, not our bug
        raise ProtocolError(f"problem 'dag' does not describe a valid DAG: {exc}") from exc

    claimed = doc.get("dag_digest")
    _require(isinstance(claimed, str), "problem 'dag_digest' must be a string")
    actual = dag_digest(dag)
    _require(
        actual == claimed,
        f"dag content digest mismatch (claimed {str(claimed)[:16]}…, rebuilt {actual[:16]}…)",
    )

    r = doc.get("r")
    _require(isinstance(r, int) and not isinstance(r, bool) and r >= 1, "problem 'r' must be an integer >= 1")
    game = doc.get("game")
    _require(game in GAMES, f"problem 'game' must be one of {GAMES}")
    variant = _variant_from_wire(doc.get("variant"))
    return PebblingProblem(dag, r=int(r), game=str(game), variant=variant)  # type: ignore[arg-type]


# --------------------------------------------------------------------------- #
# schedule / result serialization
# --------------------------------------------------------------------------- #


def _schedule_to_wire(schedule: Schedule) -> Dict[str, object]:
    """The v2 schedule payload: packed IR columns plus the description."""
    ir = from_schedule(schedule)
    doc: Dict[str, object] = dict(pack_arrays(ir))
    doc["description"] = ir.description
    return doc


def _schedule_from_wire(problem: PebblingProblem, doc: object) -> Tuple[Schedule, ScheduleStats]:
    """Decode and *kernel-validate* a v2 schedule payload.

    The packed columns are decoded (any malformation — bad base64, wrong
    byte counts, out-of-range op/node ids — is a :class:`ProtocolError`) and
    the resulting IR is replayed through the vectorised kernel, which both
    checks legality/terminality and recomputes every statistic.  Returns the
    rebuilt schedule together with the kernel-replayed statistics.
    """
    _require(isinstance(doc, dict), "result 'schedule' must be an object")
    assert isinstance(doc, dict)
    description = doc.get("description", "")
    _require(isinstance(description, str), "schedule 'description' must be a string")
    try:
        op, node, arg = unpack_arrays(doc)
        ir = ir_from_arrays(
            problem.game,
            problem.dag,
            problem.r,
            problem.variant,
            op,
            node,
            arg,
            description=str(description),
        )
    except ValueError as exc:
        raise ProtocolError(f"malformed schedule columns: {exc}") from exc
    try:
        replayed = kernel_stats(ir)  # raises on an illegal/incomplete schedule
    except Exception as exc:
        raise ProtocolError(f"wire schedule does not replay legally: {exc}") from exc
    return to_schedule(ir), replayed


def _trajectory_to_wire(trajectory: Optional[RefinementTrajectory]) -> Optional[Dict[str, object]]:
    if trajectory is None:
        return None
    return {
        "initial_cost": trajectory.initial_cost,
        "refined_cost": trajectory.refined_cost,
        "steps": trajectory.steps,
        "accepted": trajectory.accepted,
        "time_to_best_s": trajectory.time_to_best_s,
        "wall_time_s": trajectory.wall_time_s,
        "seed": trajectory.seed,
        "seed_solver": trajectory.seed_solver,
    }


def _trajectory_from_wire(doc: Optional[object]) -> Optional[RefinementTrajectory]:
    if doc is None:
        return None
    _require(isinstance(doc, dict), "'refinement' must be an object or null")
    assert isinstance(doc, dict)
    try:
        return RefinementTrajectory(
            initial_cost=int(doc["initial_cost"]),
            refined_cost=int(doc["refined_cost"]),
            steps=int(doc["steps"]),
            accepted=int(doc["accepted"]),
            time_to_best_s=float(doc["time_to_best_s"]),
            wall_time_s=float(doc["wall_time_s"]),
            seed=int(doc["seed"]),
            seed_solver=str(doc.get("seed_solver", "input")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid refinement trajectory: {exc}") from exc


def result_to_wire(result: SolveResult) -> Dict[str, object]:
    """Serialize a result: packed schedule columns + provenance + solve stats.

    The problem itself is *not* repeated — both sides already hold it (the
    client posed it, the server admitted it), and echoing a multi-megabyte
    DAG back with every answer would double the protocol's traffic for no
    information.
    """
    stats = result.solve_stats
    return {
        "solver": result.solver,
        "exact_solver": result.exact_solver,
        "lower_bound": result.lower_bound,
        "lower_bound_source": result.lower_bound_source,
        "io_cost": result.cost,
        "schedule": _schedule_to_wire(result.schedule),
        "solve_stats": None
        if stats is None
        else {
            "wall_time_s": stats.wall_time_s,
            "states_expanded": stats.states_expanded,
            "states_frontier_peak": stats.states_frontier_peak,
            "refinement": _trajectory_to_wire(stats.refinement),
            # v4 — getattr so stats objects unpickled from pre-v4 cache
            # entries still serialize.
            "attempts": [
                {"solver": a.solver, "wall_time_s": a.wall_time_s, "outcome": a.outcome}
                for a in (getattr(stats, "attempts", ()) or ())
            ],
        },
    }


def _attempts_from_wire(doc: object) -> Tuple[SolveAttempt, ...]:
    """Decode the v4 ``attempts`` list; absent (v3) decodes to empty."""
    if doc is None:
        return ()
    _require(isinstance(doc, list), "solve_stats 'attempts' must be a list")
    assert isinstance(doc, list)
    attempts = []
    for entry in doc:
        _require(isinstance(entry, dict), "each solve attempt must be an object")
        solver = entry.get("solver")
        outcome = entry.get("outcome")
        wall = entry.get("wall_time_s")
        _require(
            isinstance(solver, str)
            and isinstance(outcome, str)
            and isinstance(wall, (int, float))
            and not isinstance(wall, bool),
            "solve attempt fields: 'solver' str, 'outcome' str, 'wall_time_s' number",
        )
        attempts.append(
            SolveAttempt(solver=str(solver), wall_time_s=float(wall), outcome=str(outcome))
        )
    return tuple(attempts)


def result_from_wire(problem: PebblingProblem, doc: Mapping[str, object]) -> SolveResult:
    """Rebuild a :class:`SolveResult` against the locally held problem.

    The packed columns are replayed through the vectorised kernel — the
    replay both validates legality and recomputes every statistic, so the
    returned result is bit-identical to a local solve (wall-clock
    ``solve_stats`` are carried verbatim; they are measurements, not derived
    data).  A wire document whose claimed ``io_cost`` disagrees with the
    replay is refused.
    """
    _require(isinstance(doc, Mapping), "'result' must be an object")
    schedule, replayed = _schedule_from_wire(problem, doc.get("schedule"))
    claimed_cost = doc.get("io_cost")
    _require(
        isinstance(claimed_cost, int) and replayed.io_cost == claimed_cost,
        f"wire result claims I/O cost {claimed_cost!r} but the schedule replays to {replayed.io_cost}",
    )

    solver = doc.get("solver")
    _require(isinstance(solver, str) and bool(solver), "result 'solver' must be a non-empty string")
    exact_solver = doc.get("exact_solver", False)
    _require(isinstance(exact_solver, bool), "result 'exact_solver' must be a boolean")
    lower_bound = doc.get("lower_bound")
    if lower_bound is not None:
        _require(
            isinstance(lower_bound, int) and not isinstance(lower_bound, bool),
            "result 'lower_bound' must be an integer or null",
        )
    lower_bound_source = doc.get("lower_bound_source", "")
    _require(isinstance(lower_bound_source, str), "result 'lower_bound_source' must be a string")

    stats_doc = doc.get("solve_stats")
    solve_stats: Optional[SolveStats] = None
    if stats_doc is not None:
        _require(isinstance(stats_doc, dict), "result 'solve_stats' must be an object or null")
        assert isinstance(stats_doc, dict)
        try:
            solve_stats = SolveStats(
                wall_time_s=float(stats_doc.get("wall_time_s", 0.0)),
                states_expanded=None
                if stats_doc.get("states_expanded") is None
                else int(stats_doc["states_expanded"]),  # type: ignore[arg-type]
                states_frontier_peak=None
                if stats_doc.get("states_frontier_peak") is None
                else int(stats_doc["states_frontier_peak"]),  # type: ignore[arg-type]
                refinement=_trajectory_from_wire(stats_doc.get("refinement")),
                attempts=_attempts_from_wire(stats_doc.get("attempts")),
            )
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid solve_stats: {exc}") from exc

    return SolveResult(
        problem=problem,
        schedule=schedule,
        stats=replayed,
        solver=str(solver),
        exact_solver=bool(exact_solver),
        lower_bound=lower_bound,  # type: ignore[arg-type]
        lower_bound_source=str(lower_bound_source),
        solve_stats=solve_stats,
    )
