"""Worker pool of the solve service: process fan-out with a thread fallback.

Plain (non-streamed) solves run in a ``ProcessPoolExecutor`` — the same
execution substrate :func:`repro.api.solve_many` uses — so a multi-core
host actually solves concurrently.  Two classes of work cannot use worker
processes and fall back to a thread:

* **streamed solves** — the anytime-progress callback must reach the event
  loop while the solve runs, and a callable cannot cross a process
  boundary;
* **everything**, when the platform cannot create worker processes at all
  (sandboxes, missing semaphores): the pool degrades to thread mode
  instead of failing requests, exactly like the batch layer's serial
  fallback.

Thread-mode solves are serialized behind one lock: the dispatch layer
snapshots module-global telemetry (A* counters, refinement trajectories)
around each solver run, and two solves interleaving in one process would
cross-attribute those snapshots.  Processes are unaffected — each worker
has its own globals — so the lock costs nothing in the common mode.
"""

from __future__ import annotations

import asyncio
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Optional, Tuple

from ..api.dispatch import solve
from ..api.problem import PebblingProblem
from ..api.result import SolveResult
from ..core.exceptions import SolverError

__all__ = ["WorkerPool"]

#: Progress sink: called with (cost, elapsed_s) from the solving thread.
ProgressFn = Callable[[int, float], None]


def _solve_task(
    payload: Tuple[PebblingProblem, str, Dict[str, Any]],
) -> Tuple[str, Any]:
    """Process-pool task: ``("ok", result)`` or ``("solver_error", exc)``.

    Mirrors the batch layer's worker: a :class:`SolverError` is an expected
    per-problem outcome and travels back as data; anything else propagates
    through the future as a genuine bug.
    """
    problem, solver, options = payload
    try:
        return ("ok", solve(problem, solver=solver, **options))
    except SolverError as exc:
        return ("solver_error", exc)


class WorkerPool:
    """Executes solves for the service; see the module docstring for modes."""

    def __init__(self, max_workers: int = 2, prefer_processes: bool = True) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.prefer_processes = prefer_processes
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._thread_lock = threading.Lock()  # serializes thread-mode solves
        self._fallback_reason: Optional[str] = None
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Create executors eagerly — before the event loop spawns helper
        threads, so a ``fork``-based pool never forks a multi-threaded
        parent."""
        if self._started:
            return
        self._started = True
        self._thread_pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-service-solve"
        )
        if not self.prefer_processes:
            self._fallback_reason = "process workers disabled by configuration"
            return
        try:
            self._process_pool = ProcessPoolExecutor(max_workers=self.max_workers)
        except (OSError, RuntimeError, PermissionError) as exc:
            self._process_pool = None
            self._fallback_reason = f"{type(exc).__name__}: {exc}"

    def shutdown(self) -> None:
        """Release both executors (idempotent)."""
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=False, cancel_futures=True)
            self._process_pool = None
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False, cancel_futures=True)
            self._thread_pool = None

    @property
    def mode(self) -> str:
        """``"process"`` or ``"thread"`` — how plain solves currently run."""
        return "process" if self._process_pool is not None else "thread"

    @property
    def fallback_reason(self) -> Optional[str]:
        """Why the pool is (or became) thread-mode, if it is."""
        return self._fallback_reason

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    async def run(
        self,
        problem: PebblingProblem,
        solver: str,
        options: Dict[str, Any],
        on_progress: Optional[ProgressFn] = None,
    ) -> SolveResult:
        """Solve one problem off the event loop; raises :class:`SolverError`.

        ``on_progress`` (already thread-safe — the server wraps it in
        ``loop.call_soon_threadsafe``) forces the thread path.
        """
        if not self._started:
            self.start()
        loop = asyncio.get_running_loop()
        if on_progress is None and self._process_pool is not None:
            try:
                tag, value = await loop.run_in_executor(
                    self._process_pool, _solve_task, (problem, solver, dict(options))
                )
            except (BrokenProcessPool, pickle.PicklingError) as exc:
                # The *pool* died under this task (worker OOM-killed, platform
                # revoked fork) or the task cannot cross the process boundary.
                # Degrade to thread mode permanently and run this solve there
                # — availability over parallelism.  Any other exception is the
                # task's own bug and must fail only this job: treating it as
                # a broken pool would let one bad request de-parallelize the
                # whole daemon.
                self._abandon_processes(f"{type(exc).__name__}: {exc}")
                return await self._run_in_thread(loop, problem, solver, options, None)
            if tag == "solver_error":
                raise value
            return value
        return await self._run_in_thread(loop, problem, solver, options, on_progress)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _abandon_processes(self, reason: str) -> None:
        self._fallback_reason = reason
        pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    async def _run_in_thread(
        self,
        loop: asyncio.AbstractEventLoop,
        problem: PebblingProblem,
        solver: str,
        options: Dict[str, Any],
        on_progress: Optional[ProgressFn],
    ) -> SolveResult:
        assert self._thread_pool is not None, "WorkerPool.start() must run first"

        def call() -> SolveResult:
            with self._thread_lock:
                kwargs = dict(options)
                if on_progress is not None:
                    kwargs["on_progress"] = on_progress
                return solve(problem, solver=solver, **kwargs)

        return await loop.run_in_executor(self._thread_pool, call)
