"""Worker pool of the solve service: process fan-out with a thread fallback.

Plain (non-streamed) solves run in a ``ProcessPoolExecutor`` — the same
execution substrate :func:`repro.api.solve_many` uses — so a multi-core
host actually solves concurrently.  Two classes of work cannot use worker
processes and fall back to a thread:

* **streamed solves** — the anytime-progress callback must reach the event
  loop while the solve runs, and a callable cannot cross a process
  boundary;
* **everything**, when the platform cannot create worker processes at all
  (sandboxes, missing semaphores): the pool degrades to thread mode
  instead of failing requests, exactly like the batch layer's serial
  fallback.

Thread-mode solves are serialized behind one lock: the dispatch layer
snapshots module-global telemetry (A* counters, refinement trajectories)
around each solver run, and two solves interleaving in one process would
cross-attribute those snapshots.  Processes are unaffected — each worker
has its own globals — so the lock costs nothing in the common mode.
"""

from __future__ import annotations

import asyncio
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Optional, Tuple

from ..api.dispatch import solve
from ..api.problem import PebblingProblem
from ..api.result import SolveResult
from ..core.exceptions import SolverError
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import TraceContext, reset_current_trace, set_current_trace

__all__ = ["WorkerPool"]

#: Progress sink: called with (cost, elapsed_s) from the solving thread.
ProgressFn = Callable[[int, float], None]


def _solve_task(
    payload: Tuple[PebblingProblem, str, Dict[str, Any], Optional[Dict[str, str]]],
) -> Tuple[str, Any]:
    """Process-pool task: ``("ok", result)`` or ``("solver_error", exc)``.

    Mirrors the batch layer's worker: a :class:`SolverError` is an expected
    per-problem outcome and travels back as data; anything else propagates
    through the future as a genuine bug.  The trailing payload element is
    the wire form of the request's trace context; installing it here lets
    the solve span emitted inside the worker process join the request's
    trace (worker processes inherit ``REPRO_TRACE_FILE``, so their spans
    land in the same JSONL sink).
    """
    problem, solver, options, trace_wire = payload
    token = None
    ctx = TraceContext.from_wire(trace_wire) if trace_wire else None
    if ctx is not None:
        token = set_current_trace(ctx)
    try:
        return ("ok", solve(problem, solver=solver, **options))
    except SolverError as exc:
        return ("solver_error", exc)
    finally:
        if token is not None:
            reset_current_trace(token)


class WorkerPool:
    """Executes solves for the service; see the module docstring for modes."""

    def __init__(
        self,
        max_workers: int = 2,
        prefer_processes: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.prefer_processes = prefer_processes
        self._busy_gauge = None
        self._workers_gauge = None
        self._solves_counter = None
        if metrics is not None:
            self._busy_gauge = metrics.gauge(
                "repro_pool_busy", "Solves currently executing in the worker pool."
            )
            self._workers_gauge = metrics.gauge(
                "repro_pool_workers", "Configured worker-pool size."
            )
            self._solves_counter = metrics.counter(
                "repro_pool_solves_total",
                "Solves executed, by pool mode.",
                labels=("mode",),
            )
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._thread_lock = threading.Lock()  # serializes thread-mode solves
        self._fallback_reason: Optional[str] = None
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Create executors eagerly — before the event loop spawns helper
        threads, so a ``fork``-based pool never forks a multi-threaded
        parent."""
        if self._started:
            return
        self._started = True
        if self._workers_gauge is not None:
            self._workers_gauge.set(self.max_workers)
        self._thread_pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-service-solve"
        )
        if not self.prefer_processes:
            self._fallback_reason = "process workers disabled by configuration"
            return
        try:
            self._process_pool = ProcessPoolExecutor(max_workers=self.max_workers)
        except (OSError, RuntimeError, PermissionError) as exc:
            self._process_pool = None
            self._fallback_reason = f"{type(exc).__name__}: {exc}"

    def shutdown(self) -> None:
        """Release both executors (idempotent)."""
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=False, cancel_futures=True)
            self._process_pool = None
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False, cancel_futures=True)
            self._thread_pool = None

    @property
    def mode(self) -> str:
        """``"process"`` or ``"thread"`` — how plain solves currently run."""
        return "process" if self._process_pool is not None else "thread"

    @property
    def fallback_reason(self) -> Optional[str]:
        """Why the pool is (or became) thread-mode, if it is."""
        return self._fallback_reason

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    async def run(
        self,
        problem: PebblingProblem,
        solver: str,
        options: Dict[str, Any],
        on_progress: Optional[ProgressFn] = None,
        trace: Optional[TraceContext] = None,
    ) -> SolveResult:
        """Solve one problem off the event loop; raises :class:`SolverError`.

        ``on_progress`` (already thread-safe — the server wraps it in
        ``loop.call_soon_threadsafe``) forces the thread path.  ``trace``
        is installed as the ambient trace context around the solve so the
        dispatch layer's spans join the request's trace.
        """
        if not self._started:
            self.start()
        loop = asyncio.get_running_loop()
        if self._busy_gauge is not None:
            self._busy_gauge.inc()
        try:
            return await self._run(loop, problem, solver, options, on_progress, trace)
        finally:
            if self._busy_gauge is not None:
                self._busy_gauge.dec()

    async def _run(
        self,
        loop: asyncio.AbstractEventLoop,
        problem: PebblingProblem,
        solver: str,
        options: Dict[str, Any],
        on_progress: Optional[ProgressFn],
        trace: Optional[TraceContext],
    ) -> SolveResult:
        if on_progress is None and self._process_pool is not None:
            try:
                payload = (problem, solver, dict(options), trace.to_wire() if trace else None)
                tag, value = await loop.run_in_executor(
                    self._process_pool, _solve_task, payload
                )
            except (BrokenProcessPool, pickle.PicklingError) as exc:
                # The *pool* died under this task (worker OOM-killed, platform
                # revoked fork) or the task cannot cross the process boundary.
                # Degrade to thread mode permanently and run this solve there
                # — availability over parallelism.  Any other exception is the
                # task's own bug and must fail only this job: treating it as
                # a broken pool would let one bad request de-parallelize the
                # whole daemon.
                self._abandon_processes(f"{type(exc).__name__}: {exc}")
                return await self._run_in_thread(loop, problem, solver, options, None, trace)
            if self._solves_counter is not None:
                self._solves_counter.inc(mode="process")
            if tag == "solver_error":
                raise value
            return value
        return await self._run_in_thread(loop, problem, solver, options, on_progress, trace)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _abandon_processes(self, reason: str) -> None:
        self._fallback_reason = reason
        pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    async def _run_in_thread(
        self,
        loop: asyncio.AbstractEventLoop,
        problem: PebblingProblem,
        solver: str,
        options: Dict[str, Any],
        on_progress: Optional[ProgressFn],
        trace: Optional[TraceContext] = None,
    ) -> SolveResult:
        assert self._thread_pool is not None, "WorkerPool.start() must run first"

        def call() -> SolveResult:
            with self._thread_lock:
                # The contextvar must be set in *this* thread — executor
                # threads do not inherit the event loop's context.
                token = set_current_trace(trace) if trace is not None else None
                try:
                    kwargs = dict(options)
                    if on_progress is not None:
                        kwargs["on_progress"] = on_progress
                    return solve(problem, solver=solver, **kwargs)
                finally:
                    if token is not None:
                        reset_current_trace(token)

        if self._solves_counter is not None:
            self._solves_counter.inc(mode="thread")
        return await loop.run_in_executor(self._thread_pool, call)
