"""The cluster front node: digest-routed request router over solve backends.

One :class:`SolveRouter` turns N independent :class:`~repro.service.SolveService`
nodes into a sharded cluster while speaking the exact same wire protocol a
single node does — clients cannot tell a router from a server::

    client ──frame──▶ SolveRouter ──[rate limit · backpressure]──┐
                          │ hot LRU hit?  answer immediately     │
                          │                                      ▼
                          │            consistent-hash ring (problem_digest)
                          │                                      │
                          │   probe primary ──miss──▶ probe peers (peer fetch)
                          │                                      │
                          └──────── full solve ──▶ primary backend
                                        │ backend dead? mark down, re-dispatch
                                        ▼ to the next node on the ring
                                  result frame (relayed verbatim + `backend`)

Routing is **consistent hashing** by the PR 3 ``problem_digest``: each
backend owns ``ring_replicas`` pseudo-random points on a 64-bit ring and a
request goes to the first point at or after its digest.  Equal digests
therefore always land on the same backend (its memory LRU and disk tier
stay hot for exactly its shard), and adding or removing one backend moves
only ``~1/N`` of the key space.

The cache is **tiered**.  Tier 0 is the router's own in-memory hot LRU of
relayed *wire* results — a hit costs no backend round trip at all.  Tier 1
is the primary backend's two-level :class:`~repro.api.cache.ResultCache`.
Tier 2 is **peer fetch**: before any backend recomputes, the router probes
the remaining nodes with a ``cache_only`` request (new in protocol v3) —
a peer that solved this digest under an older ring layout, or sharing a
disk tier, answers from its cache and the recompute is avoided entirely.

Admission is **defended**: a per-client token bucket
(:class:`~repro.service.queue.ClientRateLimiter`, keyed by the request's
``client_id`` or the peer address) sheds abusive clients with
``rate-limited``, and a router-wide in-flight bound sheds overload with
``overloaded`` — both *before* any backend work, layering on the bounded
admission queue each backend already runs (whose ``queue-full`` rejections
the router relays and counts).  Shed requests are always answered with a
typed error, never silently dropped.

Failover is safe because solves are **idempotent**: the digest pins the
problem content, solver and options, and results are replay-validated, so
re-dispatching a request whose backend died mid-flight yields a
bit-identical answer from any other node.  A backend that fails
``failure_threshold`` consecutive interactions is marked down for
``cooldown_s`` and the ring walks past it; typed application errors
(``solver-error``, ``deadline``, ``queue-full``) are relayed to the client
and never trigger failover — only transport failures and draining backends
do.

Everything is event-loop-thread only, like the server it fronts.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Awaitable, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..api.cache import cacheable_options, problem_digest
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import TraceContext, Tracer
from . import protocol
from .protocol import ProtocolError, make_response, read_frame, write_frame
from .queue import ClientRateLimiter

__all__ = [
    "BackendSpec",
    "HashRing",
    "RouterConfig",
    "SolveRouter",
    "run_router",
]


# --------------------------------------------------------------------------- #
# consistent hashing
# --------------------------------------------------------------------------- #


class HashRing:
    """Consistent-hash ring over backend names.

    Each name owns ``replicas`` points at ``sha256(name + "#" + i)`` on a
    64-bit ring; a key routes to the owner of the first point at or after
    the key's own sha256-derived position (wrapping).  :meth:`preference`
    returns *every* name in ring order from that point — the failover
    order — so the primary is ``preference(key)[0]`` and a dead primary's
    traffic spills to the next distinct owner clockwise, not to one fixed
    buddy node.
    """

    def __init__(self, names: Sequence[str], replicas: int = 64) -> None:
        if not names:
            raise ValueError("a hash ring needs at least one backend name")
        if len(set(names)) != len(names):
            raise ValueError(f"backend names must be unique, got {list(names)!r}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.names: Tuple[str, ...] = tuple(names)
        self.replicas = replicas
        points: List[Tuple[int, str]] = []
        for name in self.names:
            for index in range(replicas):
                token = hashlib.sha256(f"{name}#{index}".encode("utf-8")).digest()
                points.append((int.from_bytes(token[:8], "big"), name))
        points.sort()
        self._points = points
        self._positions = [position for position, _ in points]

    @staticmethod
    def key_position(digest: str) -> int:
        """Map a hex content digest onto the 64-bit ring."""
        token = hashlib.sha256(digest.encode("ascii")).digest()
        return int.from_bytes(token[:8], "big")

    def route(self, digest: str) -> str:
        """The primary owner of ``digest``."""
        return self.preference(digest)[0]

    def preference(self, digest: str) -> List[str]:
        """All names, deduplicated, in ring order starting at ``digest``."""
        start = bisect_left(self._positions, self.key_position(digest))
        seen: List[str] = []
        for offset in range(len(self._points)):
            _, name = self._points[(start + offset) % len(self._points)]
            if name not in seen:
                seen.append(name)
                if len(seen) == len(self.names):
                    break
        return seen


# --------------------------------------------------------------------------- #
# configuration & backend bookkeeping
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class BackendSpec:
    """Address of one backend solve node."""

    host: str
    port: int

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass
class RouterConfig:
    """Tunables of one router instance.

    ``port=0`` binds an ephemeral port (read :attr:`SolveRouter.address`).
    """

    backends: Tuple[BackendSpec, ...] = ()
    host: str = "127.0.0.1"
    port: int = 0
    #: Virtual nodes per backend on the consistent-hash ring.
    ring_replicas: int = 64
    #: Entries in the router's hot LRU of relayed wire results (tier 0).
    hot_cache_entries: int = 2048
    #: Router-wide bound on concurrently routed requests; excess requests
    #: are shed with ``overloaded`` (open-loop backpressure).
    max_inflight: int = 512
    #: Per-client token-bucket refill rate (requests/s); ``None`` = unlimited.
    rate_limit_per_s: Optional[float] = None
    #: Bucket capacity; ``None`` = one second's worth of tokens.
    rate_limit_burst: Optional[float] = None
    #: Distinct client identities tracked before LRU turnover.
    rate_limit_clients: int = 4096
    #: Probe peer caches before letting the primary recompute.
    peer_probe: bool = True
    #: Per-probe timeout; probes are cheap, so a slow peer is a dead peer.
    probe_timeout_s: float = 5.0
    #: Optional per-attempt cap on a relayed solve; ``None`` trusts the
    #: client's own ``deadline_s`` and the backend's admission queue.
    request_timeout_s: Optional[float] = None
    #: Consecutive transport failures before a backend is marked down.
    failure_threshold: int = 2
    #: Seconds a down backend sits out before the ring retries it.
    cooldown_s: float = 2.0
    #: Seconds to wait for in-flight relays to finish during shutdown.
    shutdown_grace_s: float = 5.0
    #: JSONL span-sink path for this router's tracer; ``None`` keeps
    #: finished spans in the in-memory ring only.
    trace_file: Optional[Union[str, Path]] = None


class _Backend:
    """Mutable per-backend state: connection pool, health, counters."""

    def __init__(self, spec: BackendSpec) -> None:
        self.spec = spec
        self.idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self.inflight = 0
        self.consecutive_failures = 0
        self.down_until = 0.0
        # counters
        self.dispatched = 0
        self.probes = 0
        self.probe_hits = 0
        self.failures = 0
        self.marked_down = 0

    @property
    def name(self) -> str:
        return self.spec.name

    def alive(self, now: float) -> bool:
        return now >= self.down_until

    def snapshot(self, now: float) -> Dict[str, Any]:
        return {
            "name": self.name,
            "host": self.spec.host,
            "port": self.spec.port,
            "alive": self.alive(now),
            "inflight": self.inflight,
            "idle_connections": len(self.idle),
            "dispatched": self.dispatched,
            "probes": self.probes,
            "probe_hits": self.probe_hits,
            "failures": self.failures,
            "marked_down": self.marked_down,
        }


class _BackendFailure(Exception):
    """A transport-level failure talking to one backend (failover-worthy)."""


class _RelayedError(Exception):
    """A typed error frame from a backend, to be relayed to the client."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class _ClientGone(Exception):
    """The *requesting* client vanished mid-relay — never a backend fault."""


class _RouterStats:
    """Router counters, backed by the metrics registry.

    Like the server's ``_Stats``: ``stats()`` keeps its historical
    (byte-compatible) dict shape by reading the registry back through the
    properties below, and the very same series feed the ``metrics`` op's
    text exposition, so the two views can never drift apart.
    """

    _ROUTING_EVENTS = (
        "routed",
        "hot_hits",
        "primary_probe_hits",
        "peer_fetch_hits",
        "dispatched",
        "completed",
        "failovers",
        "shed_rate_limited",
        "shed_overloaded",
        "relayed_errors",
        "relayed_queue_full",
        "no_backend",
    )

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.started_monotonic = time.monotonic()
        self._requests = metrics.counter(
            "repro_router_requests_total", "Requests received, by op.", labels=("op",)
        )
        self._events = metrics.counter(
            "repro_router_events_total",
            "Routing-path events by kind (tier hits, sheds, failovers).",
            labels=("event",),
        )
        self._connections = metrics.counter(
            "repro_router_connections_total", "Client connections accepted."
        )
        self._protocol_errors = metrics.counter(
            "repro_router_protocol_errors_total",
            "Frames refused as framing or schema errors.",
        )
        self._streamed = metrics.counter(
            "repro_router_streamed_events_total",
            "Progress frames relayed to streaming clients.",
        )

    def count_request(self, op: str) -> None:
        self._requests.inc(op=op)

    def event(self, name: str) -> None:
        self._events.inc(event=name)

    def connection(self) -> None:
        self._connections.inc()

    def protocol_error(self) -> None:
        self._protocol_errors.inc()

    def streamed_event(self) -> None:
        self._streamed.inc()

    @property
    def requests(self) -> Dict[str, int]:
        return {key[0]: int(v) for key, v in self._requests.values().items()}

    @property
    def connections_total(self) -> int:
        return int(self._connections.value())

    @property
    def protocol_errors(self) -> int:
        return int(self._protocol_errors.value())

    @property
    def streamed_events(self) -> int:
        return int(self._streamed.value())

    def __getattr__(self, name: str) -> int:
        # routed / hot_hits / failovers / ... read back from the registry.
        if name in _RouterStats._ROUTING_EVENTS:
            return int(self._events.value(event=name))
        raise AttributeError(name)


# --------------------------------------------------------------------------- #
# the router
# --------------------------------------------------------------------------- #


class SolveRouter:
    """Front node routing solve traffic across backend solve services.

    Use as::

        router = SolveRouter(RouterConfig(backends=(BackendSpec("127.0.0.1", 7421),)))
        await router.start()
        host, port = router.address
        ...
        await router.shutdown()
    """

    def __init__(self, config: RouterConfig) -> None:
        if not config.backends:
            raise ValueError("a router needs at least one backend")
        self.config = config
        self._backends: "OrderedDict[str, _Backend]" = OrderedDict(
            (spec.name, _Backend(spec)) for spec in config.backends
        )
        self._ring = HashRing(tuple(self._backends), replicas=config.ring_replicas)
        self._limiter = ClientRateLimiter(
            config.rate_limit_per_s,
            config.rate_limit_burst,
            max_clients=config.rate_limit_clients,
        )
        #: Tier-0 hot cache: digest -> (wire result doc, serving backend).
        self._hot: "OrderedDict[str, Tuple[Dict[str, Any], str]]" = OrderedDict()
        #: Per-instance registry: several routers/services in one process
        #: (tests, cluster-smoke) must not merge their counters.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(node="router", sink=config.trace_file)
        self._stats = _RouterStats(self.metrics)
        self._tier_hist = self.metrics.histogram(
            "repro_router_tier_seconds",
            "Wall seconds from admission to answer, by the tier that served it.",
            labels=("tier",),
        )
        self._inflight_gauge = self.metrics.gauge(
            "repro_router_inflight", "Solve requests currently being routed."
        )
        self._inflight = 0
        self._server: Optional[asyncio.Server] = None
        self._connections: Set["asyncio.Task[None]"] = set()
        self._closing = False
        self._closed_event: Optional[asyncio.Event] = None
        self._shutdown_task: Optional["asyncio.Task[None]"] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the listener; backends are dialled lazily per request."""
        if self._server is not None:
            raise RuntimeError("router already started")
        self._closed_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        host, port = self.address
        self.tracer.node = f"router:{host}:{port}"

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` to the real port)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("router is not listening")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return str(host), int(port)

    async def serve_forever(self) -> None:
        """Block until the router has fully shut down."""
        assert self._closed_event is not None, "call start() first"
        await self._closed_event.wait()

    async def wait_closed(self) -> None:
        """Block until a shutdown (initiated elsewhere) completes."""
        assert self._closed_event is not None, "call start() first"
        await self._closed_event.wait()

    def request_shutdown(self, drain: bool = True) -> None:
        """Schedule a shutdown from inside the event loop."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.create_task(self.shutdown(drain=drain))

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the router; with ``drain`` (default) finish in-flight relays."""
        if self._closing:
            if self._closed_event is not None:
                await self._closed_event.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
        current = asyncio.current_task()
        handlers = {task for task in self._connections if task is not current}
        if handlers:
            if drain:
                _, pending = await asyncio.wait(
                    handlers, timeout=self.config.shutdown_grace_s
                )
            else:
                pending = handlers
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        if self._server is not None:
            await self._server.wait_closed()
        for backend in self._backends.values():
            while backend.idle:
                _, writer = backend.idle.pop()
                writer.close()
        self.tracer.close()
        if self._closed_event is not None:
            self._closed_event.set()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        """A JSON-safe snapshot of the router's counters and backend health."""
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:
            now = 0.0
        stats = self._stats
        return {
            "role": "router",
            "protocol_version": protocol.PROTOCOL_VERSION,
            "uptime_s": time.monotonic() - stats.started_monotonic,
            "closing": self._closing,
            "connections": {
                "active": len(self._connections),
                "total": stats.connections_total,
            },
            "requests": dict(stats.requests),
            "routing": {
                "routed": stats.routed,
                "hot_hits": stats.hot_hits,
                "primary_probe_hits": stats.primary_probe_hits,
                "peer_fetch_hits": stats.peer_fetch_hits,
                "dispatched": stats.dispatched,
                "completed": stats.completed,
                "failovers": stats.failovers,
                "no_backend": stats.no_backend,
                "relayed_errors": stats.relayed_errors,
                "relayed_queue_full": stats.relayed_queue_full,
            },
            "shed": {
                "rate_limited": stats.shed_rate_limited,
                "overloaded": stats.shed_overloaded,
            },
            "hot_cache": {
                "entries": len(self._hot),
                "max_entries": self.config.hot_cache_entries,
            },
            "rate_limit": {
                "per_s": self.config.rate_limit_per_s,
                "burst": self._limiter.burst if self._limiter.rate is not None else None,
                "tracked_clients": len(self._limiter),
                "rejected": self._limiter.rejected,
            },
            "inflight": self._inflight,
            "max_inflight": self.config.max_inflight,
            "backends": [backend.snapshot(now) for backend in self._backends.values()],
            "streamed_events": stats.streamed_events,
            "protocol_errors": stats.protocol_errors,
            # Addition over the pre-v4 shape (existing keys stay byte-compatible).
            "latency": self.metrics.histogram_summaries(),
        }

    # ------------------------------------------------------------------ #
    # connection handling (mirrors server.py: sequential per connection)
    # ------------------------------------------------------------------ #

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._stats.connection()
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # shutdown grace expired; drop the connection
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                doc = await read_frame(reader)
            except ProtocolError as exc:
                self._stats.protocol_error()
                await self._try_send_error(writer, None, "protocol", str(exc))
                return
            if doc is None:
                return  # clean EOF
            try:
                request = protocol.validate_request(doc)
            except ProtocolError as exc:
                self._stats.protocol_error()
                request_id = doc.get("id")
                await self._try_send_error(
                    writer,
                    request_id if isinstance(request_id, str) else None,
                    "bad-request",
                    str(exc),
                )
                continue
            try:
                await self._dispatch_request(request, writer)
            except (ConnectionError, asyncio.IncompleteReadError, _ClientGone):
                return  # client went away mid-response

    async def _try_send_error(
        self,
        writer: asyncio.StreamWriter,
        request_id: Optional[str],
        code: str,
        message: str,
    ) -> None:
        try:
            await write_frame(
                writer, make_response("error", request_id, code=code, error=message)
            )
        except (ConnectionError, ProtocolError, RuntimeError):
            pass

    async def _dispatch_request(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        op = str(request["op"])
        self._stats.count_request(op)
        request_id = str(request["id"])
        if op == "ping":
            await write_frame(
                writer,
                make_response(
                    "pong",
                    request_id,
                    protocol_version=protocol.PROTOCOL_VERSION,
                    role="router",
                ),
            )
        elif op == "stats":
            await write_frame(writer, make_response("stats", request_id, stats=self.stats()))
        elif op == "metrics":
            await write_frame(
                writer,
                make_response(
                    "metrics",
                    request_id,
                    exposition=self.metrics.exposition(),
                    snapshot=self.metrics.snapshot(),
                ),
            )
        elif op == "shutdown":
            drain = bool(request.get("drain", True))
            await write_frame(writer, make_response("ok", request_id, draining=drain))
            self.request_shutdown(drain=drain)
        elif op == "poll":
            await self._handle_poll(request, request_id, writer)
        elif op == "solve":
            await self._handle_solve(request, request_id, writer)

    # ------------------------------------------------------------------ #
    # solve routing
    # ------------------------------------------------------------------ #

    async def _handle_solve(
        self, request: Dict[str, Any], request_id: str, writer: asyncio.StreamWriter
    ) -> None:
        if self._closing:
            await self._try_send_error(
                writer, request_id, "shutting-down", "the router is draining and admits no new work"
            )
            return

        # --- admission defence, cheapest checks first ------------------- #
        identity = request.get("client_id")
        if not isinstance(identity, str) or not identity:
            peer = writer.get_extra_info("peername")
            identity = f"peer:{peer[0]}" if isinstance(peer, tuple) and peer else "peer:unknown"
        if not self._limiter.allow(identity):
            self._stats.event("shed_rate_limited")
            await self._try_send_error(
                writer,
                request_id,
                "rate-limited",
                f"client {identity!r} is over its {self._limiter.rate}/s token bucket",
            )
            return
        if self._inflight >= self.config.max_inflight:
            self._stats.event("shed_overloaded")
            await self._try_send_error(
                writer,
                request_id,
                "overloaded",
                f"router is at its in-flight bound ({self.config.max_inflight}); back off and retry",
            )
            return

        # --- decode & key ----------------------------------------------- #
        # Decoding validates the DAG content digest at the edge: garbage is
        # refused here, before it can occupy any backend's admission queue.
        try:
            problem = protocol.problem_from_wire(request["problem"])
        except ProtocolError as exc:
            await self._try_send_error(writer, request_id, "bad-request", str(exc))
            return
        solver = str(request.get("solver", "auto"))
        options: Dict[str, Any] = dict(request.get("options", {}))
        digest = problem_digest(problem, solver=solver, options=options)
        cacheable = cacheable_options(options)

        self._stats.event("routed")
        self._inflight += 1
        self._inflight_gauge.set(float(self._inflight))
        # The route span is the router's root for this request (or a child of
        # the client's own span when the request carried a ``trace`` field);
        # its context is stamped onto the forwarded request so probe and
        # relay spans on the backends stitch into one cross-node trace.
        with self.tracer.span(
            "router.route",
            parent=TraceContext.from_wire(request.get("trace")),
            attrs={"solver": solver, "digest": digest},
        ) as span:
            forward = dict(request)
            forward["trace"] = span.context.to_wire()
            try:
                await self._route_solve(
                    forward,
                    request_id,
                    writer,
                    digest,
                    cacheable,
                    stream=bool(request.get("stream", False)),
                    wait=bool(request.get("wait", True)),
                    cache_only=bool(request.get("cache_only", False)),
                    span=span,
                )
            finally:
                self._inflight -= 1
                self._inflight_gauge.set(float(self._inflight))

    async def _route_solve(
        self,
        request: Dict[str, Any],
        request_id: str,
        writer: asyncio.StreamWriter,
        digest: str,
        cacheable: bool,
        *,
        stream: bool,
        wait: bool,
        cache_only: bool,
        span: Optional[Any] = None,
    ) -> None:
        started = time.perf_counter()
        # --- tier 0: the router's own hot LRU --------------------------- #
        if cacheable and wait:
            hot = self._hot_get(digest)
            if hot is not None:
                doc, backend_name = hot
                self._stats.event("hot_hits")
                self._observe_tier("hot", started, span, backend_name)
                await write_frame(
                    writer,
                    make_response(
                        "result",
                        request_id,
                        job_id=None,
                        cache_hit=True,
                        backend=backend_name,
                        router_cache="hot",
                        result=doc,
                    ),
                )
                return

        preference = self._ring.preference(digest)
        now = asyncio.get_running_loop().time

        # --- tiers 1–2: primary cache, then peer fetch ------------------ #
        # (a probe costs one cache lookup; a recompute costs a solve — so
        # for cacheable waited requests every alive node is asked first)
        if cacheable and wait:
            probe_order = preference if self.config.peer_probe else preference[:1]
            for rank, name in enumerate(probe_order):
                backend = self._backends[name]
                if not backend.alive(now()):
                    continue
                try:
                    doc = await self._probe_backend(backend, request)
                except _BackendFailure:
                    self._mark_failure(backend)
                    continue
                self._mark_alive(backend)
                if doc is None:
                    continue  # cache-miss: try the next tier
                if rank == 0:
                    self._stats.event("primary_probe_hits")
                    self._observe_tier("probe_primary", started, span, name)
                else:
                    self._stats.event("peer_fetch_hits")
                    self._observe_tier("probe_peer", started, span, name)
                self._hot_put(digest, doc, name)
                await write_frame(
                    writer,
                    make_response(
                        "result",
                        request_id,
                        job_id=None,
                        cache_hit=True,
                        backend=name,
                        router_cache="peer" if rank else "primary",
                        result=doc,
                    ),
                )
                return
            if cache_only:
                await self._try_send_error(
                    writer, request_id, "cache-miss", "no cluster tier holds this digest"
                )
                return

        # --- full dispatch with failover -------------------------------- #
        attempts = 0
        for name in preference:
            backend = self._backends[name]
            if not backend.alive(now()):
                continue
            attempts += 1
            if attempts > 1:
                self._stats.event("failovers")
            try:
                await self._relay_solve(
                    backend, request, request_id, writer, digest, cacheable, stream
                )
            except _BackendFailure:
                # The relay sends nothing to the client before the terminal
                # frame except progress events — which a re-run regenerates —
                # so re-dispatching is safe: solves are idempotent, pinned by
                # the content digest and replay-validated client-side.
                self._mark_failure(backend)
                continue
            except _RelayedError as exc:
                if exc.code == "shutting-down":
                    # a draining backend refuses new work but is not broken;
                    # its shard simply spills to the next ring node
                    continue
                if exc.code == "queue-full":
                    self._stats.event("relayed_queue_full")
                else:
                    self._stats.event("relayed_errors")
                await self._try_send_error(writer, request_id, exc.code, str(exc))
                return
            self._observe_tier(
                "failover" if attempts > 1 else "dispatch", started, span, name
            )
            return
        self._stats.event("no_backend")
        await self._try_send_error(
            writer,
            request_id,
            "no-backend",
            f"all {len(preference)} backend(s) for this digest are down or draining",
        )

    def _observe_tier(
        self, tier: str, started: float, span: Optional[Any], backend: Optional[str]
    ) -> None:
        """Record which tier answered and how long admission-to-answer took."""
        self._tier_hist.observe(time.perf_counter() - started, tier=tier)
        if span is not None:
            span.set_attr("tier", tier)
            if backend is not None:
                span.set_attr("backend", backend)

    async def _relay_solve(
        self,
        backend: _Backend,
        request: Dict[str, Any],
        request_id: str,
        writer: asyncio.StreamWriter,
        digest: str,
        cacheable: bool,
        stream: bool,
    ) -> None:
        """Forward one solve to ``backend``, streaming frames back verbatim.

        Raises :class:`_BackendFailure` on transport problems (failover) and
        :class:`_RelayedError` on typed error frames (relayed, no failover).
        """
        backend.dispatched += 1
        self._stats.event("dispatched")

        async def forward_progress(doc: Dict[str, Any]) -> None:
            self._stats.streamed_event()
            doc["backend"] = backend.name
            try:
                await write_frame(writer, doc)
            except (ConnectionError, ProtocolError, RuntimeError) as exc:
                raise _ClientGone(str(exc)) from exc

        backend.inflight += 1
        try:
            try:
                doc = await self._backend_roundtrip(
                    backend,
                    request,
                    timeout=self.config.request_timeout_s,
                    on_progress=forward_progress if stream else None,
                )
            except (ConnectionError, asyncio.IncompleteReadError, ProtocolError) as exc:
                raise _BackendFailure(str(exc)) from exc
        finally:
            backend.inflight -= 1

        op = doc.get("op")
        if op == "error":
            raise _RelayedError(str(doc.get("code", "internal")), str(doc.get("error", "")))
        if op not in ("result", "accepted"):
            raise _BackendFailure(f"unexpected backend frame op {op!r}")
        self._mark_alive(backend)
        self._stats.event("completed")
        doc["backend"] = backend.name
        if op == "accepted" and isinstance(doc.get("job_id"), str):
            # Stamp the serving backend into the job id so a later poll on
            # this router can find its way back to the right node.
            doc["job_id"] = f"{backend.name}/{doc['job_id']}"
        if op == "result" and cacheable and isinstance(doc.get("result"), dict):
            self._hot_put(digest, doc["result"], backend.name)
        await write_frame(writer, doc)

    async def _handle_poll(
        self, request: Dict[str, Any], request_id: str, writer: asyncio.StreamWriter
    ) -> None:
        """Route a poll by the backend prefix the router stamped on the job id."""
        job_id = str(request["job_id"])
        backend_name, _, inner = job_id.partition("/")
        backend = self._backends.get(backend_name)
        if backend is None or not inner:
            await self._try_send_error(
                writer,
                request_id,
                "unknown-job",
                f"job id {job_id!r} does not name a backend of this router",
            )
            return
        forward = dict(request)
        forward["job_id"] = inner
        try:
            doc = await self._backend_roundtrip(backend, forward, timeout=None)
        except (ConnectionError, asyncio.IncompleteReadError, ProtocolError) as exc:
            self._mark_failure(backend)
            await self._try_send_error(
                writer, request_id, "no-backend", f"backend {backend.name} is unreachable: {exc}"
            )
            return
        self._mark_alive(backend)
        if isinstance(doc.get("job_id"), str):
            doc["job_id"] = f"{backend.name}/{doc['job_id']}"
        doc["backend"] = backend.name
        await write_frame(writer, doc)

    # ------------------------------------------------------------------ #
    # backend plumbing
    # ------------------------------------------------------------------ #

    async def _probe_backend(
        self, backend: _Backend, request: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """``cache_only`` round trip: the wire result doc, or ``None`` on miss."""
        backend.probes += 1
        probe = dict(request)
        probe["cache_only"] = True
        probe["stream"] = False
        probe["wait"] = True
        try:
            doc = await self._backend_roundtrip(
                backend, probe, timeout=self.config.probe_timeout_s
            )
        except (ConnectionError, asyncio.IncompleteReadError, ProtocolError) as exc:
            raise _BackendFailure(str(exc)) from exc
        op = doc.get("op")
        if op == "result" and isinstance(doc.get("result"), dict):
            backend.probe_hits += 1
            return dict(doc["result"])
        if op == "error":
            code = str(doc.get("code", "internal"))
            if code == "cache-miss":
                return None
            raise _BackendFailure(f"probe refused: [{code}] {doc.get('error', '')}")
        raise _BackendFailure(f"unexpected probe frame op {op!r}")

    async def _backend_roundtrip(
        self,
        backend: _Backend,
        request: Dict[str, Any],
        timeout: Optional[float],
        on_progress: Optional[Callable[[Dict[str, Any]], Awaitable[None]]] = None,
    ) -> Dict[str, Any]:
        """One request/terminal-response exchange on a pooled backend connection.

        Progress frames are handed to ``on_progress`` as they arrive (or
        silently dropped when no forwarder is given — a non-streaming relay
        never asked for them).  The connection returns to the pool only
        after the terminal frame was read; any abandonment — transport
        error, timeout, the client dying inside ``on_progress`` — closes
        it, because a half-read connection can never be reused.
        """
        reader, conn_writer = await self._acquire(backend)
        clean = False
        try:
            await asyncio.wait_for(write_frame(conn_writer, request), timeout=timeout)
            while True:
                doc = await asyncio.wait_for(read_frame(reader), timeout=timeout)
                if doc is None:
                    raise ConnectionError("backend closed the connection mid-request")
                if doc.get("op") == "progress":
                    if on_progress is not None:
                        await on_progress(doc)
                    continue
                clean = True
                return doc
        except asyncio.TimeoutError as exc:
            raise ConnectionError(f"backend {backend.name} timed out") from exc
        finally:
            if clean:
                self._release(backend, reader, conn_writer)
            else:
                conn_writer.close()

    async def _acquire(
        self, backend: _Backend
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while backend.idle:
            reader, writer = backend.idle.pop()
            if writer.is_closing():
                writer.close()
                continue
            return reader, writer
        try:
            return await asyncio.open_connection(backend.spec.host, backend.spec.port)
        except OSError as exc:
            raise ConnectionError(f"cannot reach backend {backend.name}: {exc}") from exc

    def _release(
        self, backend: _Backend, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if writer.is_closing() or self._closing:
            writer.close()
            return
        backend.idle.append((reader, writer))

    def _mark_failure(self, backend: _Backend) -> None:
        backend.failures += 1
        backend.consecutive_failures += 1
        if backend.consecutive_failures >= self.config.failure_threshold:
            backend.down_until = asyncio.get_running_loop().time() + self.config.cooldown_s
            backend.marked_down += 1

    def _mark_alive(self, backend: _Backend) -> None:
        backend.consecutive_failures = 0
        backend.down_until = 0.0

    # ------------------------------------------------------------------ #
    # hot cache (tier 0)
    # ------------------------------------------------------------------ #

    def _hot_get(self, digest: str) -> Optional[Tuple[Dict[str, Any], str]]:
        entry = self._hot.get(digest)
        if entry is not None:
            self._hot.move_to_end(digest)
        return entry

    def _hot_put(self, digest: str, doc: Dict[str, Any], backend_name: str) -> None:
        if self.config.hot_cache_entries < 1:
            return
        self._hot[digest] = (doc, backend_name)
        self._hot.move_to_end(digest)
        while len(self._hot) > self.config.hot_cache_entries:
            self._hot.popitem(last=False)


async def run_router(config: RouterConfig) -> SolveRouter:
    """Start a router and return it (a convenience for embedding)."""
    router = SolveRouter(config)
    await router.start()
    return router
