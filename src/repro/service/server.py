"""The resident solve service: asyncio TCP server over the repro.api solvers.

One :class:`SolveService` owns the whole request path::

    client ──frame──▶ connection handler ──admit──▶ AdmissionQueue
                                │  cache hit? answer immediately
                                │  identical solve in flight? share its future
                                ▼
                       dispatcher tasks ──▶ WorkerPool (processes / threads)
                                │                   │ anytime progress
                                ▼                   ▼ (streamed solves)
                       shared ResultCache      subscriber queues ──frame──▶ client

What a resident process buys over the one-shot CLI: imports are paid once,
the result cache stays warm across requests *and* clients (memory LRU plus
the persistent disk tier), identical concurrent requests collapse into one
solve, and the anytime refiner's improving schedules stream to the client
while the solve is still running instead of being invisible until it
returns.

Request handling is sequential per connection (a frame is answered before
the next is read); clients that want concurrency open several connections —
they are cheap, and the admission queue is the actual scheduling point.

Graceful shutdown (``drain=True``) stops admitting, finishes every queued
and running job, flushes the responses, then closes; ``drain=False`` fails
queued jobs with ``shutting-down`` instead of running them.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..api.cache import ResultCache, cacheable_options, problem_digest
from ..api.result import SolveResult
from ..core.exceptions import SolverError
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import TraceContext, Tracer
from . import protocol
from .protocol import ProtocolError, make_response, read_frame, write_frame
from .queue import (
    AdmissionQueue,
    DeadlineExceeded,
    JobState,
    QueueClosed,
    QueueFull,
    ServiceJob,
)
from .workers import WorkerPool

__all__ = ["ServiceConfig", "SolveService", "run_service"]


@dataclass
class ServiceConfig:
    """Tunables of one service instance (all have sensible defaults).

    ``port=0`` binds an ephemeral port — read the actual one from
    :attr:`SolveService.address` (the CLI prints it on startup).
    """

    host: str = "127.0.0.1"
    port: int = 0
    #: Bound on jobs waiting for a worker; excess requests get ``queue-full``.
    max_pending: int = 256
    #: Concurrent solves (dispatcher tasks and executor workers).
    workers: int = 2
    #: Use worker processes for plain solves (threads are the fallback).
    prefer_processes: bool = True
    #: Disk tier of the shared result cache; ``None`` keeps it memory-only.
    cache_dir: Optional[Union[str, Path]] = None
    #: ``False`` disables the result cache entirely (cold-path benchmarking).
    enable_cache: bool = True
    memory_cache_entries: int = 1024
    #: Disk-size cap handed to :class:`~repro.api.cache.ResultCache`.
    max_disk_bytes: Optional[int] = None
    #: Replay-validate disk cache entries before serving them.
    validate_cache: bool = True
    #: Finished jobs kept around for ``poll`` after completion.
    retained_jobs: int = 1024
    #: Seconds to wait for in-flight responses to flush during shutdown.
    shutdown_grace_s: float = 5.0
    #: JSONL sink for this node's spans; ``None`` keeps them in the ring
    #: buffer only.  Worker processes inherit the path via the
    #: ``REPRO_TRACE_FILE`` environment variable (set on first use if
    #: unset), so solver-side spans land in the same file.
    trace_file: Optional[Union[str, Path]] = None


class _Stats:
    """Service counters, backed by the metrics registry.

    The ``stats()`` response keeps its historical (byte-compatible) dict
    shape by reading the registry back through the properties below; the
    same series feed the ``metrics`` op's text exposition, so the two
    views can never drift apart.
    """

    _JOB_EVENTS = (
        "admitted",
        "completed",
        "failed",
        "cache_answers",
        "probe_hits",
        "probe_misses",
        "dedup_shared",
        "rejected_full",
        "rejected_closing",
    )

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.started_monotonic = time.monotonic()
        self._requests = metrics.counter(
            "repro_requests_total", "Requests received, by op.", labels=("op",)
        )
        self._jobs = metrics.counter(
            "repro_jobs_total", "Job lifecycle events, by kind.", labels=("event",)
        )
        self._connections = metrics.counter(
            "repro_connections_total", "Client connections accepted."
        )
        self._protocol_errors = metrics.counter(
            "repro_protocol_errors_total",
            "Frames refused as framing or schema errors.",
        )
        self._streamed = metrics.counter(
            "repro_streamed_events_total",
            "Anytime-progress frames pushed to streaming clients.",
        )

    def count_request(self, op: str) -> None:
        self._requests.inc(op=op)

    def job(self, event: str) -> None:
        self._jobs.inc(event=event)

    def connection(self) -> None:
        self._connections.inc()

    def protocol_error(self) -> None:
        self._protocol_errors.inc()

    def streamed_event(self) -> None:
        self._streamed.inc()

    @property
    def requests(self) -> Dict[str, int]:
        return {key[0]: int(v) for key, v in self._requests.values().items()}

    @property
    def connections_total(self) -> int:
        return int(self._connections.value())

    @property
    def protocol_errors(self) -> int:
        return int(self._protocol_errors.value())

    @property
    def streamed_events(self) -> int:
        return int(self._streamed.value())

    def __getattr__(self, name: str) -> int:
        # admitted / completed / failed / ... read back from the registry.
        if name in _Stats._JOB_EVENTS:
            return int(self._jobs.value(event=name))
        raise AttributeError(name)


class SolveService:
    """A long-running solve daemon; see the module docstring for the shape.

    Use as::

        service = SolveService(ServiceConfig(port=0))
        await service.start()
        host, port = service.address
        ...
        await service.shutdown()          # graceful drain
        await service.wait_closed()
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        #: Per-instance registry: several services in one process (tests,
        #: cluster-smoke) must not merge their counters.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(node="service", sink=self.config.trace_file)
        if self.config.trace_file is not None and not os.environ.get("REPRO_TRACE_FILE"):
            # Worker processes read this at import; setting it before the
            # pool forks lets solver-side spans reach the same sink.
            os.environ["REPRO_TRACE_FILE"] = str(self.config.trace_file)
        if cache is not None:
            self.cache: Optional[ResultCache] = cache
        elif self.config.enable_cache:
            self.cache = ResultCache(
                directory=self.config.cache_dir,
                max_memory_entries=self.config.memory_cache_entries,
                max_disk_bytes=self.config.max_disk_bytes,
                validate=self.config.validate_cache,
                metrics=self.metrics,
            )
        else:
            self.cache = None
        self._queue = AdmissionQueue(
            max_pending=self.config.max_pending, metrics=self.metrics
        )
        self._pool = WorkerPool(
            max_workers=self.config.workers,
            prefer_processes=self.config.prefer_processes,
            metrics=self.metrics,
        )
        self._stats = _Stats(self.metrics)
        self._request_hist = self.metrics.histogram(
            "repro_request_latency_seconds",
            "Wall seconds from dispatch of a request to its final frame.",
            labels=("op",),
        )
        self._solve_hist = self.metrics.histogram(
            "repro_solve_seconds",
            "Wall seconds a job spent executing in the worker pool.",
            labels=("solver",),
        )
        self._dedup_wait_hist = self.metrics.histogram(
            "repro_dedup_wait_seconds",
            "Wall seconds a deduplicated request waited on the shared job.",
        )
        self._jobs: "OrderedDict[str, ServiceJob]" = OrderedDict()
        self._inflight: Dict[str, ServiceJob] = {}
        self._job_seq = itertools.count(1)
        self._server: Optional[asyncio.Server] = None
        #: Single thread for cache get/put: disk I/O, unpickling and replay
        #: validation must not stall the event loop, but ResultCache is not
        #: thread-safe — one dedicated thread gives both.
        self._cache_executor: Optional[ThreadPoolExecutor] = None
        self._dispatchers: list = []
        self._connections: set = set()
        self._closing = False
        self._closed_event: Optional[asyncio.Event] = None
        self._shutdown_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the listener and start the dispatcher tasks."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._closed_event = asyncio.Event()
        self._pool.start()  # before the loop spawns helper threads (fork safety)
        if self.cache is not None:
            self._cache_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-service-cache"
            )
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        host, port = self.address
        self.tracer.node = f"service:{host}:{port}"
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(), name=f"repro-service-dispatch-{i}")
            for i in range(self.config.workers)
        ]

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` to the real port)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service is not listening")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return str(host), int(port)

    async def serve_forever(self) -> None:
        """Block until the service has fully shut down."""
        assert self._closed_event is not None, "call start() first"
        await self._closed_event.wait()

    async def wait_closed(self) -> None:
        """Block until a shutdown (initiated elsewhere) completes."""
        assert self._closed_event is not None, "call start() first"
        await self._closed_event.wait()

    def request_shutdown(self, drain: bool = True) -> None:
        """Schedule a shutdown from inside the event loop (used by the op)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.create_task(self.shutdown(drain=drain))

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the service; with ``drain`` (default) finish all admitted work."""
        if self._closing:
            if self._closed_event is not None:
                await self._closed_event.wait()
            return
        self._closing = True

        if self._server is not None:
            self._server.close()
        if not drain:
            self._queue.abort_pending()
        self._queue.close()

        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)

        # Give connection handlers a grace period to flush final responses;
        # idle keep-alive connections are then cancelled (close semantics).
        if self._connections:
            _, pending = await asyncio.wait(
                set(self._connections), timeout=self.config.shutdown_grace_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)

        if self._server is not None:
            await self._server.wait_closed()
        self._pool.shutdown()
        if self._cache_executor is not None:
            self._cache_executor.shutdown(wait=True)  # flush pending puts
        self.tracer.close()
        if self._closed_event is not None:
            self._closed_event.set()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        """A JSON-safe snapshot of every counter the service keeps."""
        cache_doc: Optional[Dict[str, Any]] = None
        if self.cache is not None:
            cache_doc = dict(self.cache.stats.as_dict())
            cache_doc["memory_entries"] = len(self.cache)
            cache_doc["directory"] = (
                None if self.cache.directory is None else str(self.cache.directory)
            )
            cache_doc["disk_bytes"] = self.cache.disk_bytes()
        return {
            "protocol_version": protocol.PROTOCOL_VERSION,
            "uptime_s": time.monotonic() - self._stats.started_monotonic,
            "closing": self._closing,
            "connections": {
                "active": len(self._connections),
                "total": self._stats.connections_total,
            },
            "requests": dict(self._stats.requests),
            "jobs": {
                "admitted": self._stats.admitted,
                "completed": self._stats.completed,
                "failed": self._stats.failed,
                "expired": self._queue.expired,
                "cache_answers": self._stats.cache_answers,
                "probe_hits": self._stats.probe_hits,
                "probe_misses": self._stats.probe_misses,
                "dedup_shared": self._stats.dedup_shared,
                "rejected_full": self._stats.rejected_full,
                "rejected_closing": self._stats.rejected_closing,
                "retained": len(self._jobs),
            },
            "queue": {"depth": self._queue.depth, "max_pending": self._queue.max_pending},
            "pool": {
                "mode": self._pool.mode,
                "workers": self._pool.max_workers,
                "fallback_reason": self._pool.fallback_reason,
            },
            "cache": cache_doc,
            "streamed_events": self._stats.streamed_events,
            "protocol_errors": self._stats.protocol_errors,
            # v4 — merged histogram summaries (count/sum/mean/p50/p90/p99
            # per histogram family); an addition, so the pre-v4 keys above
            # stay byte-compatible for service_bench --compare.
            "latency": self.metrics.histogram_summaries(),
        }

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._stats.connection()
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # shutdown grace expired; drop the connection
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                doc = await read_frame(reader)
            except ProtocolError as exc:
                # After a framing error the byte stream cannot be trusted;
                # tell the client why (best effort), then hang up.
                self._stats.protocol_error()
                await self._try_send_error(writer, None, "protocol", str(exc))
                return
            if doc is None:
                return  # clean EOF
            try:
                request = protocol.validate_request(doc)
            except ProtocolError as exc:
                # The *frame* was sound, only the message was not — the
                # stream is still synchronized, so the connection survives.
                self._stats.protocol_error()
                request_id = doc.get("id")
                await self._try_send_error(
                    writer,
                    request_id if isinstance(request_id, str) else None,
                    "bad-request",
                    str(exc),
                )
                continue
            try:
                await self._dispatch_request(request, writer)
            except (ConnectionError, asyncio.IncompleteReadError):
                return  # peer went away mid-response

    async def _try_send_error(
        self,
        writer: asyncio.StreamWriter,
        request_id: Optional[str],
        code: str,
        message: str,
    ) -> None:
        try:
            await write_frame(
                writer, make_response("error", request_id, code=code, error=message)
            )
        except (ConnectionError, ProtocolError, RuntimeError):
            pass

    # ------------------------------------------------------------------ #
    # request dispatch
    # ------------------------------------------------------------------ #

    async def _dispatch_request(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        op = str(request["op"])
        self._stats.count_request(op)
        request_id = str(request["id"])
        started = time.perf_counter()
        try:
            if op == "ping":
                await write_frame(
                    writer,
                    make_response(
                        "pong", request_id, protocol_version=protocol.PROTOCOL_VERSION
                    ),
                )
            elif op == "stats":
                await write_frame(writer, make_response("stats", request_id, stats=self.stats()))
            elif op == "metrics":
                await write_frame(
                    writer,
                    make_response(
                        "metrics",
                        request_id,
                        exposition=self.metrics.exposition(),
                        snapshot=self.metrics.snapshot(),
                    ),
                )
            elif op == "shutdown":
                drain = bool(request.get("drain", True))
                await write_frame(writer, make_response("ok", request_id, draining=drain))
                self.request_shutdown(drain=drain)
            elif op == "poll":
                await self._handle_poll(request, request_id, writer)
            elif op == "solve":
                # The request span: a child of the router's route span when
                # the frame carried a trace context, else a fresh trace —
                # admission is where trace ids are minted.
                parent = TraceContext.from_wire(request.get("trace"))
                with self.tracer.span(
                    "server.solve_request",
                    parent=parent,
                    attrs={"solver": str(request.get("solver", "auto"))},
                ) as span:
                    await self._handle_solve(request, request_id, writer, span)
        finally:
            self._request_hist.observe(time.perf_counter() - started, op=op)

    async def _handle_poll(
        self, request: Dict[str, Any], request_id: str, writer: asyncio.StreamWriter
    ) -> None:
        job = self._jobs.get(str(request["job_id"]))
        if job is None:
            await self._try_send_error(
                writer, request_id, "unknown-job", f"no job {request['job_id']!r} (expired from retention?)"
            )
            return
        if request.get("wait") and not job.future.done():
            try:
                await asyncio.shield(job.future)
            except Exception:  # noqa: BLE001 — reported via job state below
                pass
        await write_frame(writer, self._status_response(request_id, job))

    def _status_response(self, request_id: str, job: ServiceJob) -> Dict[str, Any]:
        doc = make_response(
            "status",
            request_id,
            job_id=job.job_id,
            state=job.state.value,
            priority=job.priority,
            shared=job.shared,
        )
        if job.future.done() and not job.future.cancelled():
            error = job.future.exception()
            if error is None:
                doc["result"] = protocol.result_to_wire(job.future.result())
            else:
                doc["error"] = str(error)
                doc["code"] = _error_code(error)
        return doc

    async def _handle_solve(
        self,
        request: Dict[str, Any],
        request_id: str,
        writer: asyncio.StreamWriter,
        span: Any = None,
    ) -> None:
        if self._closing:
            self._stats.job("rejected_closing")
            await self._try_send_error(
                writer, request_id, "shutting-down", "the service is draining and admits no new work"
            )
            return
        try:
            problem = protocol.problem_from_wire(request["problem"])
        except ProtocolError as exc:
            await self._try_send_error(writer, request_id, "bad-request", str(exc))
            return

        solver = str(request.get("solver", "auto"))
        options: Dict[str, Any] = dict(request.get("options", {}))
        stream = bool(request.get("stream", False))
        wait = bool(request.get("wait", True))
        priority = int(request.get("priority", 0))
        deadline_s = request.get("deadline_s")
        loop = asyncio.get_running_loop()
        deadline = None if deadline_s is None else loop.time() + float(deadline_s)

        digest = problem_digest(problem, solver=solver, options=options)
        cacheable = cacheable_options(options)

        # 0. a cache probe (cluster peer-fetch) never solves: answer from
        # the shared cache or refuse with `cache-miss`, costing at most one
        # cache lookup — that is what lets a router ask "do you have this?"
        # of every peer before paying for a recompute anywhere
        if bool(request.get("cache_only", False)):
            hit = None
            if self.cache is not None and cacheable:
                hit = await self._cache_get(problem, digest)
            if hit is None:
                self._stats.job("probe_misses")
                if span is not None:
                    span.set_attr("outcome", "probe_miss")
                await self._try_send_error(
                    writer, request_id, "cache-miss", "the shared cache holds no entry for this digest"
                )
            else:
                self._stats.job("probe_hits")
                if span is not None:
                    span.set_attr("outcome", "probe_hit")
                await self._send_result(writer, request_id, None, hit, cache_hit=True, span=span)
            return

        # 1. the shared cache answers repeats without touching the queue
        if self.cache is not None and cacheable:
            hit = await self._cache_get(problem, digest)
            if hit is not None:
                self._stats.job("cache_answers")
                if span is not None:
                    span.set_attr("outcome", "cache_hit")
                if not wait:
                    # fire-and-forget keeps its job-id/poll contract even on
                    # the fast path: wrap the answer in an already-done job
                    job = self._finished_job(problem, solver, options, digest, hit)
                    await write_frame(
                        writer,
                        make_response("accepted", request_id, job_id=job.job_id, shared=False),
                    )
                    return
                await self._send_result(writer, request_id, None, hit, cache_hit=True, span=span)
                return

        # 2. an identical solve already in flight shares its future (plain
        # requests only — a streamed request needs its own event feed)
        if not stream and cacheable:
            shared = self._inflight.get(digest)
            if shared is not None:
                shared.shared += 1
                self._stats.job("dedup_shared")
                if span is not None:
                    span.set_attr("outcome", "dedup_shared")
                    span.set_attr("shared_job_id", shared.job_id)
                if wait:
                    dedup_started = time.perf_counter()
                    try:
                        await self._respond_after(writer, request_id, shared, span=span)
                    finally:
                        self._dedup_wait_hist.observe(
                            time.perf_counter() - dedup_started
                        )
                else:
                    await write_frame(
                        writer,
                        make_response(
                            "accepted", request_id, job_id=shared.job_id, shared=True
                        ),
                    )
                return

        # 3. fresh admission
        job = ServiceJob(
            job_id=f"job-{next(self._job_seq):06d}-{digest[:10]}",
            problem=problem,
            solver=solver,
            options=options,
            digest=digest,
            cacheable=cacheable,
            stream=stream,
            priority=priority,
            deadline=deadline,
            trace=span.context if span is not None else None,
        )
        subscription = job.subscribe() if stream else None
        try:
            self._queue.offer(job)
        except QueueFull as exc:
            self._stats.job("rejected_full")
            await self._try_send_error(writer, request_id, "queue-full", str(exc))
            return
        except QueueClosed as exc:
            self._stats.job("rejected_closing")
            await self._try_send_error(writer, request_id, "shutting-down", str(exc))
            return
        self._stats.job("admitted")
        if span is not None:
            span.set_attr("outcome", "admitted")
            span.set_attr("job_id", job.job_id)
        self._remember_job(job)
        if cacheable and self._inflight.setdefault(digest, job) is job:
            # whichever way the job ends — solved, failed, expired at
            # dequeue, aborted by a non-drain shutdown — the digest must
            # leave the dedup table, or later identical requests would join
            # a dead job and inherit its stale error forever
            job.future.add_done_callback(
                lambda _f, d=digest, j=job: self._forget_inflight(d, j)
            )

        if not wait:
            await write_frame(
                writer, make_response("accepted", request_id, job_id=job.job_id, shared=False)
            )
            return
        if subscription is not None:
            while True:
                event = await subscription.get()
                if event is None:
                    break
                self._stats.streamed_event()
                await write_frame(
                    writer,
                    make_response("progress", request_id, job_id=job.job_id, **event),
                )
        await self._respond_after(writer, request_id, job, span=span)

    async def _respond_after(
        self,
        writer: asyncio.StreamWriter,
        request_id: str,
        job: ServiceJob,
        span: Any = None,
    ) -> None:
        try:
            result = await asyncio.shield(job.future)
        except Exception as exc:  # noqa: BLE001 — every failure maps to an error frame
            if span is not None:
                span.set_status("error")
            await self._try_send_error(writer, request_id, _error_code(exc), str(exc))
            return
        await self._send_result(writer, request_id, job, result, cache_hit=False, span=span)

    async def _send_result(
        self,
        writer: asyncio.StreamWriter,
        request_id: str,
        job: Optional[ServiceJob],
        result: SolveResult,
        cache_hit: bool,
        span: Any = None,
    ) -> None:
        doc = make_response(
            "result",
            request_id,
            job_id=None if job is None else job.job_id,
            cache_hit=cache_hit,
            result=protocol.result_to_wire(result),
        )
        if span is not None:
            doc["trace_id"] = span.context.trace_id
        await write_frame(writer, doc)

    async def _cache_get(self, problem: Any, digest: str) -> Optional[SolveResult]:
        """Cache lookup off the event loop (disk read + replay validation)."""
        assert self.cache is not None
        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._cache_executor, self.cache.get, problem, digest
            )
        except RuntimeError:  # executor torn down mid-shutdown; do it inline
            return self.cache.get(problem, digest)

    async def _cache_put(self, digest: str, result: SolveResult) -> None:
        """Cache store off the event loop (pickle + write + disk pruning)."""
        assert self.cache is not None
        try:
            await asyncio.get_running_loop().run_in_executor(
                self._cache_executor, self.cache.put, digest, result
            )
        except RuntimeError:
            self.cache.put(digest, result)

    def _finished_job(
        self,
        problem: Any,
        solver: str,
        options: Dict[str, Any],
        digest: str,
        result: SolveResult,
    ) -> ServiceJob:
        """An already-done job wrapping a cache answer (pollable by id)."""
        now = asyncio.get_running_loop().time()
        job = ServiceJob(
            job_id=f"job-{next(self._job_seq):06d}-{digest[:10]}",
            problem=problem,
            solver=solver,
            options=options,
            digest=digest,
            state=JobState.DONE,
            enqueued_at=now,
            started_at=now,
            finished_at=now,
        )
        job.future.set_result(result)
        self._remember_job(job)
        return job

    def _forget_inflight(self, digest: str, job: ServiceJob) -> None:
        if self._inflight.get(digest) is job:
            del self._inflight[digest]

    def _remember_job(self, job: ServiceJob) -> None:
        self._jobs[job.job_id] = job
        while len(self._jobs) > self.config.retained_jobs:
            # evict the oldest *finished* job; never forget live ones
            for job_id, retained in self._jobs.items():
                if retained.done:
                    del self._jobs[job_id]
                    break
            else:
                break

    # ------------------------------------------------------------------ #
    # dispatchers
    # ------------------------------------------------------------------ #

    async def _dispatch_loop(self) -> None:
        while True:
            job = await self._queue.take()
            if job is None:
                return
            await self._execute(job)

    async def _execute(self, job: ServiceJob) -> None:
        loop = asyncio.get_running_loop()
        job.state = JobState.RUNNING
        job.started_at = loop.time()
        # Queue wait is only known once the job is picked up, so its span
        # is emitted retroactively (backdated by the measured wait).
        self.tracer.record(
            "queue_wait",
            max(0.0, job.started_at - job.enqueued_at),
            parent=job.trace,
            attrs={"job_id": job.job_id},
        )

        on_progress = None
        if job.subscribers:

            def _emit(cost: int, elapsed_s: float, _job: ServiceJob = job) -> None:
                # called from the solver thread; hop onto the loop to publish
                loop.call_soon_threadsafe(
                    _job.publish, {"cost": cost, "elapsed_s": elapsed_s}
                )

            on_progress = _emit

        solve_started = time.perf_counter()
        try:
            with self.tracer.span(
                "solve_exec",
                parent=job.trace,
                attrs={"job_id": job.job_id, "solver": job.solver},
            ) as solve_span:
                result = await self._pool.run(
                    job.problem,
                    job.solver,
                    job.options,
                    on_progress,
                    trace=solve_span.context,
                )
                solve_span.set_attr("cost", result.cost)
                solve_span.set_attr("solver_used", result.solver)
        except (SolverError, DeadlineExceeded) as exc:
            job.state = JobState.FAILED
            self._stats.job("failed")
            if not job.future.done():
                job.future.set_exception(exc)
        except Exception as exc:  # noqa: BLE001 — surfaced to the client as `internal`
            job.state = JobState.FAILED
            self._stats.job("failed")
            if not job.future.done():
                job.future.set_exception(exc)
        else:
            job.state = JobState.DONE
            self._stats.job("completed")
            if self.cache is not None and job.cacheable:
                await self._cache_put(job.digest, result)
            if not job.future.done():
                job.future.set_result(result)
        finally:
            self._solve_hist.observe(
                time.perf_counter() - solve_started, solver=job.solver
            )
            job.finished_at = loop.time()
            # also removed (synchronously, ahead of the future's done
            # callback) so a request landing this very tick cannot join a
            # finished job
            self._forget_inflight(job.digest, job)
            job.finish_stream()


def _error_code(error: BaseException) -> str:
    if isinstance(error, DeadlineExceeded):
        return "deadline"
    if isinstance(error, SolverError):
        return "solver-error"
    if isinstance(error, QueueClosed):
        return "shutting-down"
    return "internal"


async def run_service(config: Optional[ServiceConfig] = None) -> SolveService:
    """Start a service and return it (a convenience for embedding)."""
    service = SolveService(config)
    await service.start()
    return service
