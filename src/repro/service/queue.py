"""Admission layer of the solve service: bounded priority queue + job objects.

Admission is where a running daemon differs from a batch run: requests
arrive faster than solves finish, so *something* must decide what waits,
what runs next, and what gets turned away.  The policy here:

* **bounded** — at most ``max_pending`` jobs wait; past that, :meth:`AdmissionQueue.offer`
  raises :class:`QueueFull` and the server answers ``queue-full`` instead
  of accumulating unbounded memory (the caller can back off and retry);
* **priority-ordered** — higher ``priority`` dequeues first; ties dequeue
  in arrival order, so equal-priority traffic is FIFO and starvation-free;
* **deadline-aware** — a job whose ``deadline`` (event-loop time) passes
  while it waits is *expired* at dequeue: its future fails with
  :class:`DeadlineExceeded` and no solver time is spent on an answer
  nobody is waiting for anymore.

Jobs also carry the machinery the server's dedup and streaming need: an
``asyncio.Future`` every interested request awaits (in-flight dedup makes
several requests share one job), and a list of subscriber queues that
receive anytime-progress events for streamed solves.

The admission family also includes the *rate-limiting* primitives the
front router layers on top of this queue: :class:`TokenBucket` and the
per-client :class:`ClientRateLimiter` (bounded, LRU-turnover).  They live
here because they are admission policy — who gets to enter the system —
even though the enforcement point is one hop upstream of this queue.

Everything here is event-loop-thread only — not thread-safe, by design.
The worker bridge hops back onto the loop before touching job state.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Deque, Dict, List, Optional

from ..api.problem import PebblingProblem
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import TraceContext

__all__ = [
    "AdmissionQueue",
    "ClientRateLimiter",
    "DeadlineExceeded",
    "JobState",
    "QueueClosed",
    "QueueFull",
    "ServiceJob",
    "TokenBucket",
]


class QueueFull(Exception):
    """The admission queue is at capacity; the request must be turned away."""


class QueueClosed(Exception):
    """The service is shutting down; no new jobs are admitted."""


class DeadlineExceeded(Exception):
    """A job's admission deadline passed before a worker picked it up."""


class JobState(str, Enum):
    """Lifecycle of one admitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    EXPIRED = "expired"


#: Sentinel pushed to subscriber queues after the terminal event.
STREAM_END = None


def _retrieve_exception(future: "asyncio.Future[Any]") -> None:
    if not future.cancelled():
        future.exception()  # mark retrieved; awaiters still re-raise normally


@dataclass
class ServiceJob:
    """One admitted solve: the problem plus all its bookkeeping.

    ``future`` resolves to the :class:`~repro.api.result.SolveResult` (or
    fails with the solver/deadline error); it may be awaited by any number
    of requests — that is what in-flight dedup shares.  ``subscribers``
    holds one ``asyncio.Queue`` per streaming request attached to this job;
    :meth:`publish` fans an event out to all of them.
    """

    job_id: str
    problem: PebblingProblem
    solver: str
    options: Dict[str, Any]
    digest: str
    cacheable: bool = True
    stream: bool = False
    priority: int = 0
    #: Absolute event-loop time after which the job must not start; None = no deadline.
    deadline: Optional[float] = None
    state: JobState = JobState.QUEUED
    enqueued_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: How many requests beyond the first were answered by this same job.
    shared: int = 0
    #: Trace context of the request span that admitted this job; spans
    #: emitted while it waits and runs (queue wait, solve) parent here.
    trace: Optional[TraceContext] = None
    future: "asyncio.Future[Any]" = field(
        default_factory=lambda: asyncio.get_running_loop().create_future()
    )
    subscribers: List["asyncio.Queue[Optional[Dict[str, Any]]]"] = field(default_factory=list)

    def __post_init__(self) -> None:
        # A job nobody awaits (fire-and-forget via poll) must not warn about
        # a never-retrieved exception when its solve fails.
        self.future.add_done_callback(_retrieve_exception)

    def subscribe(self) -> "asyncio.Queue[Optional[Dict[str, Any]]]":
        """Attach a progress listener; call before the job starts running."""
        queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue()
        self.subscribers.append(queue)
        return queue

    def publish(self, event: Dict[str, Any]) -> None:
        """Fan one progress event out to every subscriber (never blocks)."""
        for queue in self.subscribers:
            queue.put_nowait(dict(event))

    def finish_stream(self) -> None:
        """Signal end-of-stream to every subscriber."""
        for queue in self.subscribers:
            queue.put_nowait(STREAM_END)

    @property
    def done(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED, JobState.EXPIRED)


class AdmissionQueue:
    """Bounded, priority-ordered, deadline-aware queue of pending jobs."""

    def __init__(
        self,
        max_pending: int = 256,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self._heap: List[Any] = []  # (-priority, seq, job)
        self._seq = itertools.count()
        self._closed = False
        self._waiters: Deque["asyncio.Future[None]"] = deque()
        #: Jobs expired while waiting (observability counter).
        self.expired = 0
        self._depth_gauge = None
        self._wait_histogram = None
        self._expired_counter = None
        if metrics is not None:
            self._depth_gauge = metrics.gauge(
                "repro_queue_depth", "Jobs waiting in the admission queue."
            )
            self._wait_histogram = metrics.histogram(
                "repro_queue_wait_seconds",
                "Seconds a job waited between admission and worker pickup.",
            )
            self._expired_counter = metrics.counter(
                "repro_queue_expired_total",
                "Jobs whose deadline passed while they waited.",
            )

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def depth(self) -> int:
        """Number of jobs currently waiting."""
        return len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def offer(self, job: ServiceJob) -> None:
        """Admit a job or raise :class:`QueueFull` / :class:`QueueClosed`.

        Synchronous on purpose: admission must answer *immediately* (reject
        or enqueue) — an admission path that itself blocks under load is
        just a second, invisible queue.
        """
        if self._closed:
            raise QueueClosed("the service is shutting down")
        if len(self._heap) >= self.max_pending:
            raise QueueFull(f"admission queue is at capacity ({self.max_pending} pending jobs)")
        job.enqueued_at = asyncio.get_running_loop().time()
        heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self._heap))
        self._wake(all_waiters=False)

    async def take(self) -> Optional[ServiceJob]:
        """Next runnable job, or ``None`` once the queue is closed *and* drained.

        Jobs whose deadline passed while waiting are expired here — their
        futures fail with :class:`DeadlineExceeded` and they are never
        handed to a worker.
        """
        while True:
            while self._heap:
                _, _, job = heapq.heappop(self._heap)
                if self._depth_gauge is not None:
                    self._depth_gauge.set(len(self._heap))
                if self._expire_if_late(job):
                    continue
                if self._wait_histogram is not None:
                    wait = asyncio.get_running_loop().time() - job.enqueued_at
                    self._wait_histogram.observe(max(0.0, wait))
                return job
            if self._closed:
                return None
            waiter: "asyncio.Future[None]" = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            finally:
                if not waiter.done():
                    waiter.cancel()

    def close(self) -> None:
        """Stop admitting; pending jobs remain takeable (drain semantics)."""
        self._closed = True
        self._wake(all_waiters=True)

    def abort_pending(self) -> int:
        """Fail every waiting job with :class:`QueueClosed`; returns the count.

        The non-drain shutdown path: queued work is refused rather than
        finished.  Jobs already handed to a worker are unaffected.
        """
        aborted = 0
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            job.state = JobState.FAILED
            if not job.future.done():
                job.future.set_exception(
                    QueueClosed("the service shut down before this job ran")
                )
            job.finish_stream()
            aborted += 1
        if self._depth_gauge is not None:
            self._depth_gauge.set(0)
        return aborted

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _expire_if_late(self, job: ServiceJob) -> bool:
        if job.deadline is None or asyncio.get_running_loop().time() <= job.deadline:
            return False
        job.state = JobState.EXPIRED
        self.expired += 1
        if self._expired_counter is not None:
            self._expired_counter.inc()
        if not job.future.done():
            job.future.set_exception(
                DeadlineExceeded(f"job {job.job_id} waited past its deadline and was never started")
            )
        job.finish_stream()
        return True

    def _wake(self, all_waiters: bool) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                if not all_waiters:
                    return


# --------------------------------------------------------------------------- #
# rate limiting (the layer the front router adds on top of admission)
# --------------------------------------------------------------------------- #


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s refill, ``burst`` capacity.

    The bucket starts full (a fresh client may burst immediately) and refills
    continuously — fractional tokens accumulate between requests, so a
    bucket with ``rate=10`` really does admit ten requests per second in
    steady state, not whatever integer truncation leaves.  The clock is
    injectable for deterministic tests; production uses ``time.monotonic``.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/s, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must admit at least one request, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; ``False`` (and no debit) otherwise."""
        now = self._clock()
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens available right now (refill applied lazily on acquire)."""
        elapsed = max(0.0, self._clock() - self._refilled_at)
        return min(self.burst, self._tokens + elapsed * self.rate)


class ClientRateLimiter:
    """Per-client token buckets with LRU turnover of idle identities.

    One bucket per ``client_id``; an unknown id gets a fresh (full) bucket.
    The table is bounded: past ``max_clients`` the least-recently-seen
    identity is dropped — its next request simply mints a new full bucket,
    which errs toward admitting, never toward starving a returning client.
    ``rate=None`` disables limiting entirely (every ``allow`` is True), so
    callers can hold one object and skip the policy decision.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.rate = None if rate is None else float(rate)
        #: Default burst: one second's worth of tokens, floored at 1.
        self.burst = float(burst) if burst is not None else max(1.0, self.rate or 1.0)
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        #: Requests refused across all clients (observability counter).
        self.rejected = 0

    def allow(self, client_id: str) -> bool:
        """Debit one token from ``client_id``'s bucket; ``False`` = over limit."""
        if self.rate is None:
            return True
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client_id] = bucket
        self._buckets.move_to_end(client_id)
        while len(self._buckets) > self.max_clients:
            self._buckets.popitem(last=False)
        if bucket.try_acquire():
            return True
        self.rejected += 1
        return False

    def __len__(self) -> int:
        return len(self._buckets)
