"""``python -m repro.corpus`` / ``repro-corpus`` — the corpus workbench CLI.

Subcommands:

* ``build`` — fuzz the random-DAG space into a corpus: sweep generator
  parameters (seeded, replayable), keep instances on which the probed
  solvers disagree, stop at ``--target`` kept instances or ``--budget-s``
  seconds, whichever comes first.
* ``import`` — ingest external graphs: JSON graph-dump documents, JSONL
  corpus exports, or ``.onnx`` models (when the ``onnx`` package is
  installed; a clear error otherwise).
* ``stats`` — per-corpus summary: counts, family/game/solver histograms,
  feature ranges, how many instances carry a best-known cost and how many
  are provably optimal.
* ``select`` — filter-query instances (``--must n<=32 --must game=prbp``),
  or draw a deterministic ``--sample K --seed S`` subset; table or
  ``--json`` output.
* ``export`` — write the (filtered) corpus as a JSONL interchange file.

Exit codes: 0 on success, 1 on failure (import errors, empty required
results), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional

from ..api.bounds import best_lower_bound
from ..api.problem import PebblingProblem
from .fuzz import BuildReport, FuzzConfig, build_corpus
from .importers import CorpusImportError, load_graph_dump, problem_from_onnx
from .store import CorpusInstance, CorpusStore

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.corpus",
        description="Build, ingest, query and export pebbling-instance corpora.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_filters(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--must",
            action="append",
            default=[],
            metavar="EXPR",
            help="filter that has to hold (repeatable), e.g. 'n<=32', 'game=prbp'",
        )
        p.add_argument(
            "--should",
            action="append",
            default=[],
            metavar="EXPR",
            help="soft filter; at least --min-should of these have to hold",
        )
        p.add_argument(
            "--must-not",
            action="append",
            default=[],
            metavar="EXPR",
            help="filter that has to fail (repeatable)",
        )
        p.add_argument("--min-should", type=int, default=1, metavar="N")

    build = sub.add_parser("build", help="fuzz discriminating instances into a corpus")
    build.add_argument("--out", required=True, metavar="PATH", help="SQLite corpus file")
    build.add_argument("--target", type=int, default=500, metavar="N")
    build.add_argument("--budget-s", type=float, default=60.0, metavar="SECONDS")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("--jobs", type=int, default=1, metavar="N")
    build.add_argument("--min-nodes", type=int, default=None, metavar="N")
    build.add_argument("--max-nodes", type=int, default=None, metavar="N")
    build.add_argument(
        "--solvers",
        default=None,
        metavar="A,B,...",
        help="comma-separated solver names every candidate is probed with",
    )
    build.add_argument(
        "--cost-only",
        action="store_true",
        help="keep only cost-discriminating instances (drop the wall-time "
        "spread rule; makes the kept set machine-independent)",
    )
    build.add_argument(
        "--source", default=None, metavar="TAG", help="provenance tag (default fuzz:seed=N)"
    )

    imp = sub.add_parser("import", help="ingest graph dumps / JSONL exports / ONNX models")
    imp.add_argument("--out", required=True, metavar="PATH", help="SQLite corpus file")
    imp.add_argument("files", nargs="+", metavar="FILE")
    imp.add_argument("--r", type=int, default=None, help="capacity for graph/ONNX imports")
    imp.add_argument("--game", default=None, choices=("rbp", "prbp"))
    imp.add_argument(
        "--source", default=None, metavar="TAG", help="provenance tag (default import:<name>)"
    )

    stats = sub.add_parser("stats", help="summarise a corpus")
    stats.add_argument("corpus", metavar="PATH")

    select = sub.add_parser("select", help="filter-query or sample instances")
    select.add_argument("corpus", metavar="PATH")
    add_filters(select)
    select.add_argument("--limit", type=int, default=None, metavar="N")
    select.add_argument(
        "--sample", type=int, default=None, metavar="K", help="deterministic K-subset"
    )
    select.add_argument("--seed", type=int, default=0, help="sampling seed (with --sample)")
    select.add_argument("--json", action="store_true", help="JSON rows instead of a table")

    export = sub.add_parser("export", help="write the (filtered) corpus as JSONL")
    export.add_argument("corpus", metavar="PATH")
    export.add_argument("--out", required=True, metavar="PATH")
    add_filters(export)

    return parser


def _cmd_build(args: argparse.Namespace) -> int:
    overrides = {}
    if args.min_nodes is not None:
        overrides["min_nodes"] = args.min_nodes
    if args.max_nodes is not None:
        overrides["max_nodes"] = args.max_nodes
    if args.solvers is not None:
        overrides["solvers"] = tuple(s.strip() for s in args.solvers.split(",") if s.strip())
    if args.cost_only:
        overrides["wall_spread"] = None
    config = FuzzConfig(seed=args.seed, **overrides)

    store = CorpusStore(args.out)

    def progress(report: BuildReport) -> None:
        print(
            f"  generated {report.generated}, kept {report.kept}, "
            f"duplicates {report.duplicates}, rejected {report.rejected} "
            f"({report.elapsed_s:.1f}s)",
            file=sys.stderr,
        )

    report = build_corpus(
        store,
        target=args.target,
        budget_s=args.budget_s,
        config=config,
        source=args.source,
        jobs=args.jobs,
        progress=progress,
        progress_every=100,
    )
    doc = report.as_dict()
    doc["corpus"] = args.out
    doc["instances"] = len(store)
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _import_one(path: Path, r: Optional[int], game: Optional[str]) -> List[PebblingProblem]:
    """All problems in one input file, whatever its format."""
    if path.suffix.lower() == ".onnx":
        kwargs = {}
        if r is not None:
            kwargs["r"] = r
        if game is not None:
            kwargs["game"] = game
        return [problem_from_onnx(path, **kwargs)]
    raw = path.read_text(encoding="utf-8")
    try:
        json.loads(raw)
        is_single_json = True
    except json.JSONDecodeError:
        is_single_json = False
    if is_single_json:
        problems = load_graph_dump(path)
        if r is not None or game is not None:
            problems = [
                PebblingProblem(
                    p.dag,
                    r=r if r is not None else p.r,
                    game=game if game is not None else p.game,
                    variant=p.variant,
                )
                for p in problems
            ]
        return problems
    # Not one JSON document: treat as a JSONL corpus export.
    sub = CorpusStore(":memory:")
    sub.import_jsonl(path)
    return [inst.problem() for inst in sub.query()]


def _cmd_import(args: argparse.Namespace) -> int:
    store = CorpusStore(args.out)
    inserted = duplicates = 0
    for name in args.files:
        path = Path(name)
        problems = _import_one(path, args.r, args.game)
        source = args.source or f"import:{path.name}"
        for problem in problems:
            bound, _ = best_lower_bound(problem)
            if store.add(problem, source=source, lower_bound=bound):
                inserted += 1
            else:
                duplicates += 1
    print(
        json.dumps(
            {
                "corpus": args.out,
                "inserted": inserted,
                "duplicates": duplicates,
                "instances": len(store),
            },
            indent=2,
            sort_keys=True,
        )
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    store = CorpusStore.from_file(args.corpus)
    print(json.dumps(store.stats(), indent=2, sort_keys=True))
    return 0


def _rows(instances: Iterable[CorpusInstance]) -> List[dict]:
    out = []
    for inst in instances:
        f = inst.features
        out.append(
            {
                "digest": inst.digest[:12],
                "family": f.family or "-",
                "game": f.game,
                "n": f.n,
                "m": f.m,
                "depth": f.depth,
                "width": f.width,
                "r": f.r,
                "lower_bound": inst.lower_bound,
                "best_cost": inst.best_cost,
                "best_solver": inst.best_solver or "-",
                "source": inst.source,
            }
        )
    return out


def _cmd_select(args: argparse.Namespace) -> int:
    store = CorpusStore.from_file(args.corpus)
    filters = dict(
        must=args.must, should=args.should, must_not=args.must_not, min_should=args.min_should
    )
    if args.sample is not None:
        instances = store.sample(args.sample, seed=args.seed, **filters)
    else:
        instances = store.query(limit=args.limit, **filters)
    rows = _rows(instances)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if not rows:
        print("no matching instances")
        return 0
    columns = list(rows[0])
    widths = {c: max(len(c), *(len(str(row[c])) for row in rows)) for c in columns}
    print("  ".join(c.ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(str(row[c]).ljust(widths[c]) for c in columns))
    print(f"{len(rows)} instance(s)")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    store = CorpusStore.from_file(args.corpus)
    written = store.export_jsonl(
        args.out,
        must=args.must,
        should=args.should,
        must_not=args.must_not,
        min_should=args.min_should,
    )
    print(json.dumps({"out": args.out, "instances": written}, indent=2, sort_keys=True))
    return 0


_COMMANDS = {
    "build": _cmd_build,
    "import": _cmd_import,
    "stats": _cmd_stats,
    "select": _cmd_select,
    "export": _cmd_export,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (CorpusImportError, OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
