"""Turn external computation graphs into :class:`PebblingProblem`\\ s.

Three ingestion routes, from most to least portable:

* the **JSON graph-dump** format — a dependency-free, hand-writable document
  (``{"format": "repro-graph-dump", "version": 1, "edges": [[0, 1], ...]}``)
  that round-trips everything a problem carries: nodes, edges, labels, the
  capacity/game/variant triple and an optional family tag.  This is the
  baseline every environment can produce;
* **ONNX** models (``problem_from_onnx``) — one DAG node per ONNX operator,
  plus one source node per graph input/initializer, edges following tensor
  names;
* **torch.fx** graph modules (``problem_from_torch_fx``) — one DAG node per
  fx node, ``placeholder``/``get_attr`` nodes as sources, edges following
  ``all_input_nodes``.

The optional adapters never import their heavy dependency at module import
time; when the library is absent they raise :class:`CorpusImportError` with
an actionable message, so ``repro.corpus`` stays importable everywhere.
Every route funnels malformed input — cycles, self-loops, duplicate or
out-of-range edges, missing fields — into :class:`CorpusImportError` as
well: an importer rejects, it never crashes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..api.problem import GAMES, PebblingProblem
from ..core.dag import ComputationalDAG, DAGFamily, Edge
from ..core.exceptions import DAGError, PebblingError
from ..core.variants import ONE_SHOT, GameVariant

__all__ = [
    "CorpusImportError",
    "GRAPH_DUMP_FORMAT",
    "GRAPH_DUMP_VERSION",
    "problem_from_graph_dump",
    "problem_to_graph_dump",
    "load_graph_dump",
    "save_graph_dump",
    "problem_from_onnx",
    "problem_from_torch_fx",
]

#: The ``format`` field every graph-dump document must carry.
GRAPH_DUMP_FORMAT = "repro-graph-dump"

#: Current graph-dump document version (documents of a newer version are
#: rejected rather than half-read).
GRAPH_DUMP_VERSION = 1

_VARIANT_FIELDS = (
    "one_shot",
    "allow_sliding",
    "allow_delete",
    "compute_cost",
    "split_compute_cost",
)


class CorpusImportError(PebblingError):
    """An external graph could not be turned into a pebbling problem."""


def _fail(message: str) -> "CorpusImportError":
    return CorpusImportError(message)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise _fail(message)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


# --------------------------------------------------------------------------- #
# the JSON graph-dump baseline format
# --------------------------------------------------------------------------- #


def _json_to_param(value: object) -> object:
    """JSON value -> family-param value (lists become tuples, recursively).

    :class:`DAGFamily` params follow the :mod:`repro.dags` convention of
    tuples for sequences (the tag must stay hashable), which JSON cannot
    express; round-tripping through a dump therefore maps list -> tuple.
    """
    if isinstance(value, list):
        return tuple(_json_to_param(item) for item in value)
    return value


def _param_to_json(value: object) -> object:
    if isinstance(value, (tuple, list)):
        return [_param_to_json(item) for item in value]
    return value


def _family_from_doc(doc: object) -> Optional[DAGFamily]:
    if doc is None:
        return None
    _require(isinstance(doc, Mapping), "'family' must be an object or null")
    assert isinstance(doc, Mapping)
    name = doc.get("name")
    _require(isinstance(name, str) and bool(name), "family 'name' must be a non-empty string")
    params = doc.get("params", {})
    _require(isinstance(params, Mapping), "family 'params' must be an object")
    assert isinstance(params, Mapping)
    pairs: Dict[str, object] = {}
    for key, value in params.items():
        _require(isinstance(key, str), "family param keys must be strings")
        pairs[key] = _json_to_param(value)
    return DAGFamily.tag(str(name), **pairs)


def _variant_from_doc(doc: object) -> GameVariant:
    if doc is None:
        return ONE_SHOT
    _require(isinstance(doc, Mapping), "'variant' must be an object or null")
    assert isinstance(doc, Mapping)
    unknown = set(doc) - set(_VARIANT_FIELDS)
    _require(not unknown, f"unknown variant fields {sorted(unknown)!r}")
    try:
        return GameVariant(
            one_shot=bool(doc.get("one_shot", True)),
            allow_sliding=bool(doc.get("allow_sliding", False)),
            allow_delete=bool(doc.get("allow_delete", True)),
            compute_cost=float(doc.get("compute_cost", 0.0)),
            split_compute_cost=bool(doc.get("split_compute_cost", False)),
        )
    except (TypeError, ValueError) as exc:
        raise _fail(f"invalid variant: {exc}") from exc


def _edges_from_doc(doc: object) -> List[Edge]:
    _require(isinstance(doc, list), "'edges' must be a list of [u, v] pairs")
    assert isinstance(doc, list)
    edges: List[Edge] = []
    for item in doc:
        _require(
            isinstance(item, (list, tuple)) and len(item) == 2 and all(_is_int(x) for x in item),
            f"each edge must be a [u, v] pair of integers, got {item!r}",
        )
        edges.append((int(item[0]), int(item[1])))
    return edges


def problem_from_graph_dump(doc: Mapping[str, object]) -> PebblingProblem:
    """Build a :class:`PebblingProblem` from one graph-dump document.

    Required fields: ``format`` (must equal :data:`GRAPH_DUMP_FORMAT`),
    ``version`` (``<=`` :data:`GRAPH_DUMP_VERSION`) and ``edges``.  Optional:
    ``n`` (inferred as ``max node id + 1`` when absent), ``name``,
    ``labels`` (list of ``n`` strings or an ``{"id": "label"}`` object),
    ``r`` (defaults to ``max_in_degree + 1``, the smallest generally
    feasible capacity), ``game`` (default ``"prbp"``), ``variant`` and
    ``family``.

    Raises
    ------
    CorpusImportError
        On any malformed document — including cyclic graphs, self-loops,
        duplicate edges and edges referencing nodes outside ``0..n-1``.
    """
    _require(isinstance(doc, Mapping), "a graph dump must be a JSON object")
    fmt = doc.get("format")
    _require(
        fmt == GRAPH_DUMP_FORMAT,
        f"'format' must be {GRAPH_DUMP_FORMAT!r}, got {fmt!r}",
    )
    version = doc.get("version")
    _require(_is_int(version), "'version' must be an integer")
    _require(
        int(version) <= GRAPH_DUMP_VERSION,  # type: ignore[arg-type]
        f"graph-dump version {version} is newer than the supported {GRAPH_DUMP_VERSION}",
    )
    edges = _edges_from_doc(doc.get("edges"))

    n_doc = doc.get("n")
    if n_doc is None:
        n = max((max(u, v) + 1 for u, v in edges), default=0)
    else:
        _require(_is_int(n_doc) and int(n_doc) >= 0, "'n' must be a non-negative integer")  # type: ignore[arg-type]
        n = int(n_doc)  # type: ignore[arg-type]

    labels_doc = doc.get("labels")
    labels: Optional[Dict[int, str]] = None
    if labels_doc is not None:
        if isinstance(labels_doc, list):
            _require(
                len(labels_doc) == n and all(isinstance(lb, str) for lb in labels_doc),
                "'labels' as a list must hold exactly n strings",
            )
            labels = {v: labels_doc[v] for v in range(n)}
        elif isinstance(labels_doc, Mapping):
            labels = {}
            for key, value in labels_doc.items():
                try:
                    node = int(key)
                except (TypeError, ValueError):
                    raise _fail(f"label key {key!r} is not a node id") from None
                _require(0 <= node < n, f"label key {key!r} is outside 0..{n - 1}")
                _require(isinstance(value, str), f"label for node {node} must be a string")
                labels[node] = value
        else:
            raise _fail("'labels' must be a list of strings or an id->label object")

    name = doc.get("name", "imported")
    _require(isinstance(name, str) and bool(name), "'name' must be a non-empty string")

    game = doc.get("game", "prbp")
    _require(game in GAMES, f"'game' must be one of {GAMES}, got {game!r}")

    try:
        dag = ComputationalDAG(
            n,
            edges,
            labels=labels,
            name=str(name),
            family=_family_from_doc(doc.get("family")),
        )
        dag.validate_no_isolated()
    except DAGError as exc:
        raise _fail(f"the dumped graph is not a valid DAG: {exc}") from exc

    r_doc = doc.get("r")
    if r_doc is None:
        r = dag.max_in_degree + 1
    else:
        _require(_is_int(r_doc) and int(r_doc) >= 1, "'r' must be an integer >= 1")  # type: ignore[arg-type]
        r = int(r_doc)  # type: ignore[arg-type]

    try:
        return PebblingProblem(
            dag, r=r, game=str(game), variant=_variant_from_doc(doc.get("variant"))
        )
    except (TypeError, ValueError) as exc:
        raise _fail(f"the dump does not describe a valid problem: {exc}") from exc


def problem_to_graph_dump(problem: PebblingProblem) -> Dict[str, object]:
    """Serialize a problem as a graph-dump document (the importer's inverse).

    ``problem_from_graph_dump(problem_to_graph_dump(p))`` rebuilds an
    instance with the identical content digest: nodes, edges, labels, name,
    family tag and the capacity/game/variant triple all round-trip.
    """
    dag = problem.dag
    fam = dag.family
    variant = problem.variant
    doc: Dict[str, object] = {
        "format": GRAPH_DUMP_FORMAT,
        "version": GRAPH_DUMP_VERSION,
        "name": dag.name,
        "n": dag.n,
        "edges": [[u, v] for u, v in dag.edges],
        "labels": [dag.label(v) for v in range(dag.n)],
        "r": problem.r,
        "game": problem.game,
        "variant": {field: getattr(variant, field) for field in _VARIANT_FIELDS},
    }
    if fam is not None:
        doc["family"] = {
            "name": fam.name,
            "params": {key: _param_to_json(value) for key, value in fam.params},
        }
    return doc


def load_graph_dump(path: Union[str, Path]) -> List[PebblingProblem]:
    """Read one graph-dump file: a single document or a JSON array of them.

    Raises
    ------
    CorpusImportError
        If the file is unreadable, not JSON, or any contained document is
        rejected by :func:`problem_from_graph_dump`.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise _fail(f"cannot read {path}: {exc}") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise _fail(f"{path} is not valid JSON: {exc}") from exc
    docs = doc if isinstance(doc, list) else [doc]
    problems = []
    for index, item in enumerate(docs):
        try:
            problems.append(problem_from_graph_dump(item))
        except CorpusImportError as exc:
            raise _fail(f"{path}[{index}]: {exc}") from exc
    return problems


def save_graph_dump(
    problems: Union[PebblingProblem, Sequence[PebblingProblem]], path: Union[str, Path]
) -> None:
    """Write one problem (single document) or several (JSON array) to ``path``."""
    if isinstance(problems, PebblingProblem):
        payload: object = problem_to_graph_dump(problems)
    else:
        payload = [problem_to_graph_dump(p) for p in problems]
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# --------------------------------------------------------------------------- #
# optional adapters: ONNX and torch.fx
# --------------------------------------------------------------------------- #


def _dag_from_named_nodes(
    names: List[str],
    edge_pairs: List[Tuple[str, str]],
    name: str,
    family: DAGFamily,
) -> ComputationalDAG:
    """Build a DAG from string-named nodes and (producer, consumer) pairs."""
    index = {node: i for i, node in enumerate(names)}
    _require(len(index) == len(names), "imported node names must be unique")
    seen = set()
    edges: List[Edge] = []
    for tail, head in edge_pairs:
        pair = (index[tail], index[head])
        if pair in seen:
            continue  # two tensors flowing between the same operator pair
        seen.add(pair)
        edges.append(pair)
    labels = {i: node for node, i in index.items()}
    try:
        dag = ComputationalDAG(len(names), edges, labels=labels, name=name, family=family)
        dag.validate_no_isolated()
    except DAGError as exc:
        raise _fail(f"the imported graph is not a valid DAG: {exc}") from exc
    return dag


def _finish_imported(
    dag: ComputationalDAG, r: Optional[int], game: str, variant: Optional[GameVariant]
) -> PebblingProblem:
    _require(game in GAMES, f"'game' must be one of {GAMES}, got {game!r}")
    if r is None:
        r = dag.max_in_degree + 1
    _require(_is_int(r) and r >= 1, "'r' must be an integer >= 1")
    try:
        return PebblingProblem(dag, r=int(r), game=game, variant=variant or ONE_SHOT)
    except (TypeError, ValueError) as exc:
        raise _fail(f"the imported graph does not form a valid problem: {exc}") from exc


def _onnx_graph_to_problem(
    graph: object, r: Optional[int], game: str, variant: Optional[GameVariant]
) -> PebblingProblem:
    """The dependency-free core of the ONNX adapter (duck-typed on the proto).

    One DAG node per operator plus one per graph input/initializer; an edge
    per tensor flowing from its producer to a consuming operator.  Tensors
    without a recorded producer (e.g. ``value_info`` entries of a subgraph)
    become additional source nodes, so partial exports still import.
    """
    node_names: List[str] = []
    producer_of: Dict[str, str] = {}  # tensor name -> DAG node name

    def add(name: str) -> str:
        node_names.append(name)
        return name

    for value in list(getattr(graph, "input", ())) + list(getattr(graph, "initializer", ())):
        tensor = getattr(value, "name", "")
        if tensor and tensor not in producer_of:
            producer_of[tensor] = add(f"in:{tensor}")

    operators = list(getattr(graph, "node", ()))
    _require(bool(operators), "the ONNX graph contains no operator nodes")
    op_names: List[str] = []
    for i, op in enumerate(operators):
        op_type = getattr(op, "op_type", "node")
        label = getattr(op, "name", "") or f"{op_type}_{i}"
        node_name = add(f"op:{label}")
        op_names.append(node_name)
        for tensor in getattr(op, "output", ()):
            if tensor:
                producer_of[tensor] = node_name

    edge_pairs: List[Tuple[str, str]] = []
    for op, node_name in zip(operators, op_names):
        for tensor in getattr(op, "input", ()):
            if not tensor:
                continue  # ONNX encodes omitted optional inputs as ""
            if tensor not in producer_of:
                producer_of[tensor] = add(f"in:{tensor}")
            edge_pairs.append((producer_of[tensor], node_name))

    graph_name = getattr(graph, "name", "") or "onnx-graph"
    dag = _dag_from_named_nodes(
        node_names,
        edge_pairs,
        name=f"onnx:{graph_name}",
        family=DAGFamily.tag("onnx", graph=str(graph_name), operators=len(operators)),
    )
    return _finish_imported(dag, r, game, variant)


def problem_from_onnx(
    source: object,
    r: Optional[int] = None,
    game: str = "prbp",
    variant: Optional[GameVariant] = None,
) -> PebblingProblem:
    """Import an ONNX model as a pebbling problem.

    ``source`` is a path to a ``.onnx`` file, an already-loaded
    ``onnx.ModelProto``, or a bare ``GraphProto``.  Requires the optional
    ``onnx`` package only when given a path; loaded protos import without it.

    Raises
    ------
    CorpusImportError
        When ``onnx`` is not installed (for path input), or the model's
        graph is empty, cyclic or otherwise malformed.
    """
    graph = getattr(source, "graph", None)  # ModelProto carries .graph
    if graph is None and hasattr(source, "node"):
        graph = source  # already a GraphProto
    if graph is None:
        try:
            import onnx  # noqa: PLC0415 — the optional dependency gate
        except ImportError as exc:
            raise _fail(
                "importing an ONNX model from a path needs the optional 'onnx' package "
                "(pip install onnx), which is not installed; alternatively pass a "
                "pre-loaded ModelProto/GraphProto, or export the graph as a "
                f"{GRAPH_DUMP_FORMAT!r} JSON document and use problem_from_graph_dump"
            ) from exc
        try:
            graph = onnx.load(str(source)).graph
        except Exception as exc:  # noqa: BLE001 — any parse failure is an import error
            raise _fail(f"onnx could not load {source!r}: {exc}") from exc
    return _onnx_graph_to_problem(graph, r, game, variant)


def problem_from_torch_fx(
    module: object,
    r: Optional[int] = None,
    game: str = "prbp",
    variant: Optional[GameVariant] = None,
) -> PebblingProblem:
    """Import a ``torch.fx`` graph as a pebbling problem.

    ``module`` is a traced ``torch.fx.GraphModule`` (anything exposing
    ``.graph.nodes`` in fx's shape works — no torch import is needed then).
    A plain ``nn.Module`` is symbolically traced first, which *does* need
    torch and degrades to :class:`CorpusImportError` without it.

    ``placeholder`` and ``get_attr`` nodes become sources, the ``output``
    collector node is dropped (its inputs are the sinks), every other fx
    node becomes one DAG node with edges from ``all_input_nodes``.
    """
    graph = getattr(module, "graph", None)
    if graph is None or not hasattr(graph, "nodes"):
        try:
            from torch.fx import symbolic_trace  # noqa: PLC0415 — optional dependency gate
        except ImportError as exc:
            raise _fail(
                "importing a torch module needs the optional 'torch' package "
                "(pip install torch), which is not installed; alternatively pass an "
                "already-traced fx GraphModule, or export the graph as a "
                f"{GRAPH_DUMP_FORMAT!r} JSON document and use problem_from_graph_dump"
            ) from exc
        try:
            graph = symbolic_trace(module).graph
        except Exception as exc:  # noqa: BLE001 — any trace failure is an import error
            raise _fail(f"torch.fx could not trace {type(module).__name__}: {exc}") from exc

    fx_nodes = [node for node in graph.nodes if getattr(node, "op", None) != "output"]
    _require(bool(fx_nodes), "the fx graph contains no computation nodes")
    names: List[str] = []
    kept = set()
    for node in fx_nodes:
        node_name = str(getattr(node, "name", "")) or f"node_{len(names)}"
        names.append(node_name)
        kept.add(node_name)
    edge_pairs: List[Tuple[str, str]] = []
    for node, node_name in zip(fx_nodes, names):
        for producer in getattr(node, "all_input_nodes", ()):
            producer_name = str(getattr(producer, "name", ""))
            if producer_name in kept:
                edge_pairs.append((producer_name, node_name))
    dag = _dag_from_named_nodes(
        names,
        edge_pairs,
        name="torch-fx-graph",
        family=DAGFamily.tag("torch_fx", operators=len(fx_nodes)),
    )
    return _finish_imported(dag, r, game, variant)
