"""Structural features of a pebbling instance, as stored in the corpus.

The corpus indexes instances by cheap, deterministic graph quantities so
that filter queries (``n<=64``, ``depth>=5``, ``family=random_layered``) and
the future learned dispatch policy can select instances without rebuilding
any DAG.  Everything here is derived from the problem alone — no solver is
consulted — so features computed at ingest time and features recomputed from
a re-imported instance always agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..api.problem import PebblingProblem
from ..core.dag import ComputationalDAG

__all__ = ["InstanceFeatures", "extract_features"]


@dataclass(frozen=True)
class InstanceFeatures:
    """The per-instance feature row the corpus stores and queries.

    ``depth`` is the number of edges on a longest directed path (0 for a
    graph with no edges); ``width`` is the size of the largest *level*, where
    the level of a node is its longest distance from any source — the usual
    as-soon-as-possible schedule width, an easily computed proxy for the
    antichain width the paper's partition bounds reason about.
    """

    n: int
    m: int
    depth: int
    width: int
    max_in_degree: int
    max_out_degree: int
    n_sources: int
    n_sinks: int
    trivial_cost: int
    r: int
    game: str
    family: Optional[str]
    family_params: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "m": self.m,
            "depth": self.depth,
            "width": self.width,
            "max_in_degree": self.max_in_degree,
            "max_out_degree": self.max_out_degree,
            "n_sources": self.n_sources,
            "n_sinks": self.n_sinks,
            "trivial_cost": self.trivial_cost,
            "r": self.r,
            "game": self.game,
            "family": self.family,
            "family_params": dict(self.family_params),
        }


def _levels(dag: ComputationalDAG) -> list[int]:
    """Longest distance (in edges) from any source, per node."""
    level = [0] * dag.n
    for v in dag.topological_order:
        preds = dag.predecessors(v)
        if preds:
            level[v] = 1 + max(level[u] for u in preds)
    return level


def extract_features(problem: PebblingProblem) -> InstanceFeatures:
    """Compute the feature row of one instance (``O(n + m)``)."""
    dag = problem.dag
    if dag.n:
        level = _levels(dag)
        depth = max(level)
        counts: Dict[int, int] = {}
        for lv in level:
            counts[lv] = counts.get(lv, 0) + 1
        width = max(counts.values())
    else:
        depth = 0
        width = 0
    fam = dag.family
    return InstanceFeatures(
        n=dag.n,
        m=dag.m,
        depth=depth,
        width=width,
        max_in_degree=dag.max_in_degree,
        max_out_degree=dag.max_out_degree,
        n_sources=len(dag.sources),
        n_sinks=len(dag.sinks),
        trivial_cost=dag.trivial_cost(),
        r=problem.r,
        game=problem.game,
        family=None if fam is None else fam.name,
        family_params={} if fam is None else fam.as_dict(),
    )
