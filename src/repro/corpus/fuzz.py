"""The generator-fuzzer: sweep the random-DAG space, keep what discriminates.

A corpus of instances every solver handles identically teaches the dispatch
policy nothing.  The fuzzer therefore sweeps the :mod:`repro.dags` random
generators — layer count × layer width × edge density × fan-in cap ×
capacity offset × game × variant bundle — and keeps only instances on which
the probed solvers *disagree*: different I/O costs, or a wall-time spread
above a configurable factor (measured through the same
:func:`repro.api.solve_many` machinery everything else uses, so a kept
instance reproduces its discrimination outside the fuzzer).

Replayability is structural, not incidental: candidate ``i`` of a sweep
seeded with ``seed`` derives its own generator seed deterministically, the
generated DAG records that seed (plus every shape parameter) in its
:class:`~repro.core.dag.DAGFamily` tag, and cost-based discrimination is a
pure function of the instance — so ``sweep_instances(config)`` enumerates
the identical candidate stream on every machine, and any stored instance
can be regenerated from its family tag alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..api.batch import solve_many
from ..api.problem import PebblingProblem
from ..api.result import SolveResult
from ..core.variants import ONE_SHOT, RECOMPUTE, SLIDING, GameVariant
from ..dags.random_dags import random_dag, random_layered_dag
from .store import CorpusStore

__all__ = [
    "FuzzConfig",
    "DiscriminationReport",
    "BuildReport",
    "sweep_instances",
    "discriminates",
    "build_corpus",
]

#: Large prime stride separating per-candidate generator seeds; keeps every
#: candidate's seed distinct for any base seed without shared RNG state.
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that shapes one fuzz sweep (hashable, fully declarative).

    The defaults cover small-to-medium instances (every probed solver
    answers in milliseconds) across both games and the variant bundles the
    engines support; narrow or widen any axis per sweep.  ``wall_spread``
    may be ``None`` to keep *only* cost-discriminating instances — that
    makes the kept set a deterministic function of ``seed`` (wall-clock
    spreads depend on machine load).
    """

    seed: int = 0
    #: Inclusive node-count window; candidates outside it are skipped.
    min_nodes: int = 6
    max_nodes: int = 48
    #: Layered-generator shape windows (inclusive).
    min_layers: int = 2
    max_layers: int = 6
    min_layer_width: int = 1
    max_layer_width: int = 7
    edge_probabilities: Tuple[float, ...] = (0.15, 0.3, 0.5, 0.8)
    fanin_caps: Tuple[Optional[int], ...] = (None, 2, 3)
    #: Capacity = DAG max in-degree + one of these offsets.
    r_offsets: Tuple[int, ...] = (1, 2, 4)
    games: Tuple[str, ...] = ("prbp", "rbp")
    #: Variant bundles by name; sliding is RBP-only and skipped for PRBP.
    variants: Tuple[str, ...] = ("one_shot", "recompute", "sliding")
    #: Mix of generators: "layered" = random_layered_dag, "uniform" = random_dag.
    generators: Tuple[str, ...] = ("layered", "layered", "uniform")
    #: Solvers every candidate is probed with.
    solvers: Tuple[str, ...] = ("greedy", "naive")
    #: Additionally probe the exact solver on candidates this small.
    exact_node_limit: int = 9
    #: Keep on wall-time ratio above this (None = cost differences only).
    wall_spread: Optional[float] = 2.0
    #: Wall spreads are trusted only when the slowest probe took this long.
    min_wall_s: float = 0.01
    #: Per-instance wall budget, enforced when ``jobs > 1`` (a serial solve
    #: cannot be pre-empted; see :func:`repro.api.solve_many`).
    instance_timeout_s: Optional[float] = 10.0

    def variant_of(self, name: str) -> GameVariant:
        try:
            return {"one_shot": ONE_SHOT, "recompute": RECOMPUTE, "sliding": SLIDING}[name]
        except KeyError:
            raise ValueError(f"unknown variant bundle {name!r}") from None


@dataclass(frozen=True)
class DiscriminationReport:
    """Why one candidate was kept or rejected."""

    kept: bool
    reason: str
    #: Achieved cost per probed solver (errored solvers are absent).
    costs: Mapping[str, int] = field(default_factory=dict)
    #: In-solver wall time per probed solver.
    walls: Mapping[str, float] = field(default_factory=dict)
    errors: Mapping[str, str] = field(default_factory=dict)
    best_cost: Optional[int] = None
    best_solver: Optional[str] = None
    lower_bound: Optional[int] = None


@dataclass
class BuildReport:
    """What one :func:`build_corpus` run did."""

    generated: int = 0
    kept: int = 0
    duplicates: int = 0
    rejected: int = 0
    solver_errors: int = 0
    elapsed_s: float = 0.0
    hit_target: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "generated": self.generated,
            "kept": self.kept,
            "duplicates": self.duplicates,
            "rejected": self.rejected,
            "solver_errors": self.solver_errors,
            "elapsed_s": self.elapsed_s,
            "hit_target": self.hit_target,
        }


def _candidate(config: FuzzConfig, index: int) -> Optional[PebblingProblem]:
    """Candidate ``index`` of the sweep, or ``None`` when its draw falls
    outside the node window (the caller just moves on to ``index + 1``)."""
    cand_seed = config.seed * _SEED_STRIDE + index
    rng = np.random.default_rng(cand_seed)
    generator = config.generators[int(rng.integers(0, len(config.generators)))]
    if generator == "layered":
        layers = int(rng.integers(config.min_layers, config.max_layers + 1))
        sizes = [
            int(rng.integers(config.min_layer_width, config.max_layer_width + 1))
            for _ in range(layers)
        ]
        edge_p = float(rng.choice(config.edge_probabilities))
        cap = config.fanin_caps[int(rng.integers(0, len(config.fanin_caps)))]
        if sum(sizes) < config.min_nodes or sum(sizes) > config.max_nodes:
            return None
        dag = random_layered_dag(
            sizes, edge_probability=edge_p, max_in_degree=cap, seed=cand_seed
        )
    elif generator == "uniform":
        n = int(rng.integers(config.min_nodes, config.max_nodes + 1))
        edge_p = float(rng.choice(config.edge_probabilities))
        dag = random_dag(n, edge_probability=min(edge_p, 0.5), seed=cand_seed)
    else:
        raise ValueError(f"unknown generator {generator!r} in FuzzConfig.generators")

    game = config.games[int(rng.integers(0, len(config.games)))]
    variant_name = config.variants[int(rng.integers(0, len(config.variants)))]
    if variant_name == "sliding" and game != "rbp":
        variant_name = "one_shot"  # sliding is an RBP-only rule (App. B.2)
    r = dag.max_in_degree + config.r_offsets[int(rng.integers(0, len(config.r_offsets)))]
    return PebblingProblem(dag, r=r, game=game, variant=config.variant_of(variant_name))


def sweep_instances(
    config: FuzzConfig, start: int = 0, count: Optional[int] = None
) -> Iterator[Tuple[int, PebblingProblem]]:
    """Enumerate ``(candidate index, problem)`` pairs of the seeded sweep.

    The stream is a pure function of ``config`` — consuming it twice yields
    identical problems.  ``start``/``count`` window the candidate indices so
    a long build can resume where it stopped.
    """
    produced = 0
    index = start
    while count is None or produced < count:
        problem = _candidate(config, index)
        index += 1
        if problem is None:
            continue
        yield index - 1, problem
        produced += 1


def _probe_solvers(config: FuzzConfig, problem: PebblingProblem) -> List[str]:
    solvers = list(config.solvers)
    if problem.n <= config.exact_node_limit and "exhaustive" not in solvers:
        solvers.append("exhaustive")
    return solvers


def discriminates(
    problem: PebblingProblem,
    config: Optional[FuzzConfig] = None,
    jobs: int = 1,
) -> DiscriminationReport:
    """Probe one instance with the configured solvers and judge it.

    Kept when at least two solvers succeed and either (a) they disagree on
    cost, or (b) the slowest took ``wall_spread``× longer than the fastest
    (and at least ``min_wall_s`` — sub-millisecond spreads are timer noise).
    """
    config = config or FuzzConfig()
    solvers = _probe_solvers(config, problem)
    outcomes = solve_many(
        [problem] * len(solvers),
        solver=solvers,
        jobs=jobs if jobs > 1 else None,
        timeout_s=config.instance_timeout_s if jobs > 1 else None,
        return_exceptions=True,
    )
    costs: Dict[str, int] = {}
    walls: Dict[str, float] = {}
    errors: Dict[str, str] = {}
    lower_bound: Optional[int] = None
    for solver, outcome in zip(solvers, outcomes):
        if isinstance(outcome, SolveResult):
            costs[solver] = outcome.cost
            if outcome.solve_stats is not None:
                walls[solver] = outcome.solve_stats.wall_time_s
            if outcome.lower_bound is not None:
                lower_bound = max(lower_bound or 0, outcome.lower_bound)
        else:
            errors[solver] = str(outcome)

    if len(costs) < 2:
        return DiscriminationReport(
            kept=False,
            reason=f"only {len(costs)} of {len(solvers)} solvers succeeded",
            costs=costs,
            walls=walls,
            errors=errors,
            lower_bound=lower_bound,
        )
    best_solver = min(costs, key=lambda name: (costs[name], name))
    best_cost = costs[best_solver]
    if len(set(costs.values())) > 1:
        return DiscriminationReport(
            kept=True,
            reason=f"costs disagree: { {k: v for k, v in sorted(costs.items())} }",
            costs=costs,
            walls=walls,
            errors=errors,
            best_cost=best_cost,
            best_solver=best_solver,
            lower_bound=lower_bound,
        )
    if config.wall_spread is not None and len(walls) >= 2:
        slowest, fastest = max(walls.values()), min(walls.values())
        if slowest >= config.min_wall_s and slowest > config.wall_spread * max(fastest, 1e-9):
            return DiscriminationReport(
                kept=True,
                reason=f"wall spread {slowest / max(fastest, 1e-9):.1f}x (>{config.wall_spread}x)",
                costs=costs,
                walls=walls,
                errors=errors,
                best_cost=best_cost,
                best_solver=best_solver,
                lower_bound=lower_bound,
            )
    return DiscriminationReport(
        kept=False,
        reason="all solvers agree",
        costs=costs,
        walls=walls,
        errors=errors,
        best_cost=best_cost,
        best_solver=best_solver,
        lower_bound=lower_bound,
    )


def build_corpus(
    store: CorpusStore,
    target: int = 500,
    budget_s: float = 60.0,
    config: Optional[FuzzConfig] = None,
    source: Optional[str] = None,
    jobs: int = 1,
    progress: Optional[Callable[[BuildReport], None]] = None,
    progress_every: int = 50,
) -> BuildReport:
    """Fuzz until ``target`` instances are stored or ``budget_s`` runs out.

    Candidates already in the store (same content digest) count as
    duplicates and are skipped without re-probing; kept instances are stored
    with their best probed cost, the solver that achieved it, and the best
    lower bound the probes surfaced.  ``progress`` (if given) is invoked
    with the running :class:`BuildReport` every ``progress_every``
    candidates.
    """
    config = config or FuzzConfig()
    if source is None:
        source = f"fuzz:seed={config.seed}"
    report = BuildReport()
    started = time.monotonic()
    for index, problem in sweep_instances(config):
        if report.kept >= target:
            report.hit_target = True
            break
        if time.monotonic() - started > budget_s:
            break
        report.generated += 1
        verdict = discriminates(problem, config=config, jobs=jobs)
        report.solver_errors += len(verdict.errors)
        if not verdict.kept:
            report.rejected += 1
        elif store.add(
            problem,
            source=source,
            lower_bound=verdict.lower_bound,
            best_cost=verdict.best_cost,
            best_solver=verdict.best_solver,
        ):
            report.kept += 1
        else:
            report.duplicates += 1
        if progress is not None and report.generated % max(1, progress_every) == 0:
            report.elapsed_s = time.monotonic() - started
            progress(report)
    report.hit_target = report.kept >= target
    report.elapsed_s = time.monotonic() - started
    return report
