"""repro.corpus — the DAG corpus workbench: ingest, fuzz, store, sample.

Every other subsystem measures the library on the 31 hand-registered paper
scenarios; this package grows that slice into a *population*:

* **importers** (:mod:`repro.corpus.importers`) turn external computation
  graphs into :class:`~repro.api.problem.PebblingProblem`\\ s — a
  dependency-free JSON *graph-dump* format as the baseline, plus ONNX and
  ``torch.fx`` adapters that degrade to a clear :class:`CorpusImportError`
  when those libraries are absent;
* the **generator-fuzzer** (:mod:`repro.corpus.fuzz`) sweeps the
  :mod:`repro.dags` random-DAG space (layers × width × density × fan-in ×
  capacity × variant), seeded and replayable, and keeps only instances that
  *discriminate* between registered solvers;
* the **store** (:mod:`repro.corpus.store`) is a SQLite-backed,
  digest-deduplicated table of instances with per-instance structural
  features, must/should/must-not filter queries, monotone best-known-cost
  upserts and JSONL export/import;
* the **bench source** (:mod:`repro.corpus.bench_source`) samples a stored
  corpus deterministically (seed + filters) into
  :class:`~repro.bench.scenario.BenchScenario`\\ s, so ``repro.bench`` tiers
  measure a diverse population instead of a fixed list.

Command line: ``repro-corpus build | import | stats | select | export``
(see :mod:`repro.corpus.__main__`).
"""

from .features import InstanceFeatures, extract_features
from .importers import (
    GRAPH_DUMP_FORMAT,
    GRAPH_DUMP_VERSION,
    CorpusImportError,
    load_graph_dump,
    problem_from_graph_dump,
    problem_from_onnx,
    problem_from_torch_fx,
    problem_to_graph_dump,
    save_graph_dump,
)
from .store import (
    CORPUS_SCHEMA_VERSION,
    CorpusInstance,
    CorpusStore,
    Filter,
    parse_filter,
)
from .fuzz import (
    DiscriminationReport,
    FuzzConfig,
    build_corpus,
    discriminates,
    sweep_instances,
)
from .bench_source import corpus_scenarios, register_corpus_scenarios

__all__ = [
    "InstanceFeatures",
    "extract_features",
    "CorpusImportError",
    "GRAPH_DUMP_FORMAT",
    "GRAPH_DUMP_VERSION",
    "problem_from_graph_dump",
    "problem_to_graph_dump",
    "load_graph_dump",
    "save_graph_dump",
    "problem_from_onnx",
    "problem_from_torch_fx",
    "CORPUS_SCHEMA_VERSION",
    "CorpusInstance",
    "CorpusStore",
    "Filter",
    "parse_filter",
    "FuzzConfig",
    "DiscriminationReport",
    "discriminates",
    "sweep_instances",
    "build_corpus",
    "corpus_scenarios",
    "register_corpus_scenarios",
]
