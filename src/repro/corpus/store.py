"""The SQLite-backed corpus store: thousands of instances, queryable.

:class:`CorpusStore` keeps one row per pebbling instance, keyed by the
WL-canonical content digest of :func:`repro.api.cache.problem_digest` —
the same identity the result cache and the service use, so a corpus row, a
cache entry and a service request about the same instance all agree on what
"the same" means.  Each row carries:

* the full problem payload (the service wire codec's JSON document, digest-
  checked on every rebuild — a corrupted row rejects instead of solving the
  wrong graph);
* the structural feature columns of
  :class:`~repro.corpus.features.InstanceFeatures`, so filter queries never
  rebuild a DAG;
* provenance (``source``: which importer or fuzz sweep produced it) and the
  best known solution (``best_cost`` / ``best_solver``, upserted
  *monotonically* — a worse cost can never replace a better one — plus the
  best lower bound known at ingest).

Queries follow the PaperSpider workbench model: a list of **must** filters
(all required), **should** filters (at least ``min_should`` required) and
**must-not** filters (all excluded), each a small ``field op value``
predicate (``"n<=64"``, ``"family=random_layered"``, ``"depth>=5"``).
Deterministic sampling (:meth:`CorpusStore.sample`) hashes ``seed:digest``
and takes the smallest keys, so a committed corpus file yields the same
sample on every machine and Python version — the property the bench gate
relies on.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..api.cache import problem_digest
from ..api.problem import PebblingProblem
from ..core.canonical import dag_digest
from .features import InstanceFeatures, extract_features
from .importers import CorpusImportError

__all__ = [
    "CORPUS_SCHEMA_VERSION",
    "CorpusInstance",
    "CorpusStore",
    "Filter",
    "parse_filter",
]

#: Bumped whenever the table layout or the JSONL line shape changes.
CORPUS_SCHEMA_VERSION = 1

#: Queryable columns and whether values parse as numbers or strings.
_FILTER_FIELDS: Dict[str, str] = {
    "digest": "text",
    "canonical": "text",
    "name": "text",
    "source": "text",
    "family": "text",
    "game": "text",
    "best_solver": "text",
    "r": "int",
    "n": "int",
    "m": "int",
    "depth": "int",
    "width": "int",
    "max_in_degree": "int",
    "max_out_degree": "int",
    "n_sources": "int",
    "n_sinks": "int",
    "trivial_cost": "int",
    "lower_bound": "int",
    "best_cost": "int",
}

#: Comparison operators, longest first so ``<=`` is not read as ``<``.
_OPERATORS: Tuple[Tuple[str, str], ...] = (
    ("<=", "<="),
    (">=", ">="),
    ("!=", "!="),
    ("==", "="),
    ("<", "<"),
    (">", ">"),
    ("=", "="),
)


@dataclass(frozen=True)
class Filter:
    """One ``field op value`` predicate over the corpus feature columns."""

    field: str
    op: str
    value: Union[int, float, str]

    def __str__(self) -> str:
        return f"{self.field}{self.op}{self.value}"

    def sql(self) -> Tuple[str, Union[int, float, str]]:
        """The predicate as a parametrized SQL fragment.

        NULL-able columns (``lower_bound``, ``best_cost``, ...) compare as
        *no match*: a NULL never satisfies a must/should predicate, and a
        must-not predicate never excludes a row for a NULL (``COALESCE``
        pins the three-valued logic down to plain true/false).
        """
        return f"COALESCE({self.field} {self.op} ?, 0)", self.value


def parse_filter(text: str) -> Filter:
    """Parse ``"n<=64"`` / ``"family=random_layered"`` into a :class:`Filter`.

    Raises
    ------
    ValueError
        On an unknown field, a missing operator, or a non-numeric value for
        a numeric field (the message names the valid fields).
    """
    for token, op in _OPERATORS:
        index = text.find(token)
        if index > 0:
            field = text[:index].strip()
            raw = text[index + len(token) :].strip()
            break
    else:
        raise ValueError(
            f"no comparison operator in filter {text!r} "
            f"(expected field OP value with OP one of <=, >=, !=, ==, <, >, =)"
        )
    if field not in _FILTER_FIELDS:
        raise ValueError(
            f"unknown filter field {field!r}; valid fields: {', '.join(sorted(_FILTER_FIELDS))}"
        )
    value: Union[int, float, str]
    if _FILTER_FIELDS[field] == "int":
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(f"filter {text!r}: {raw!r} is not a number") from None
    else:
        if op not in ("=", "!="):
            raise ValueError(f"filter {text!r}: string fields support only = and !=")
        value = raw
    return Filter(field, op, value)


def _coerce_filters(filters: Optional[Iterable[Union[str, Filter]]]) -> List[Filter]:
    return [f if isinstance(f, Filter) else parse_filter(f) for f in (filters or [])]


@dataclass(frozen=True)
class CorpusInstance:
    """One stored instance: identity, provenance, features, best solution."""

    digest: str
    canonical: str
    name: str
    source: str
    features: InstanceFeatures
    lower_bound: Optional[int]
    best_cost: Optional[int]
    best_solver: Optional[str]
    problem_doc: Dict[str, object]

    def problem(self) -> PebblingProblem:
        """Rebuild the stored problem (wire-codec digest check included).

        Raises
        ------
        CorpusImportError
            If the stored payload no longer matches its content digest —
            a corrupted or tampered row refuses to produce a problem.
        """
        from ..service.protocol import ProtocolError, problem_from_wire

        try:
            problem = problem_from_wire(self.problem_doc)
        except ProtocolError as exc:
            raise CorpusImportError(
                f"stored instance {self.digest[:12]} is corrupt: {exc}"
            ) from exc
        if problem_digest(problem) != self.digest:
            raise CorpusImportError(
                f"stored instance {self.digest[:12]} rebuilds to a different digest"
            )
        return problem


_CREATE_TABLE = f"""
CREATE TABLE IF NOT EXISTS instances (
    digest TEXT PRIMARY KEY,
    canonical TEXT NOT NULL,
    name TEXT NOT NULL,
    source TEXT NOT NULL,
    family TEXT,
    family_params TEXT NOT NULL,
    game TEXT NOT NULL,
    variant TEXT NOT NULL,
    r INTEGER NOT NULL,
    n INTEGER NOT NULL,
    m INTEGER NOT NULL,
    depth INTEGER NOT NULL,
    width INTEGER NOT NULL,
    max_in_degree INTEGER NOT NULL,
    max_out_degree INTEGER NOT NULL,
    n_sources INTEGER NOT NULL,
    n_sinks INTEGER NOT NULL,
    trivial_cost INTEGER NOT NULL,
    lower_bound INTEGER,
    best_cost INTEGER,
    best_solver TEXT,
    problem TEXT NOT NULL
);
-- the filterable axes the bench source and the CLI query most
CREATE INDEX IF NOT EXISTS idx_instances_family ON instances (family);
CREATE INDEX IF NOT EXISTS idx_instances_n ON instances (n);
CREATE INDEX IF NOT EXISTS idx_instances_canonical ON instances (canonical);
PRAGMA user_version = {CORPUS_SCHEMA_VERSION};
"""


class CorpusStore:
    """A SQLite-backed corpus of pebbling instances (see module docstring).

    Parameters
    ----------
    path:
        Database file, created on first use; ``":memory:"`` keeps the corpus
        in memory (used by tests and by JSONL-backed bench sampling).

    The store is a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version > CORPUS_SCHEMA_VERSION:
            self._conn.close()
            raise CorpusImportError(
                f"{self.path} uses corpus schema {version}, newer than the "
                f"supported {CORPUS_SCHEMA_VERSION}; upgrade repro-prbp to read it"
            )
        self._conn.executescript(_CREATE_TABLE)
        self._conn.commit()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "CorpusStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM instances").fetchone()[0])

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #

    def add(
        self,
        problem: PebblingProblem,
        source: str = "manual",
        lower_bound: Optional[int] = None,
        best_cost: Optional[int] = None,
        best_solver: Optional[str] = None,
    ) -> bool:
        """Insert one instance; returns False (and changes nothing) on a dup.

        A duplicate — same content digest — still merges a better
        ``best_cost`` via :meth:`update_best`, so re-ingesting a corpus
        never loses solution knowledge and never duplicates rows.
        """
        from ..service.protocol import problem_to_wire

        digest = problem_digest(problem)
        if self.contains(digest):
            if best_cost is not None:
                self.update_best(digest, best_cost, best_solver or "unknown")
            return False
        features = extract_features(problem)
        self._conn.execute(
            """
            INSERT INTO instances (
                digest, canonical, name, source, family, family_params, game,
                variant, r, n, m, depth, width, max_in_degree, max_out_degree,
                n_sources, n_sinks, trivial_cost, lower_bound, best_cost,
                best_solver, problem
            ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            (
                digest,
                dag_digest(problem.dag, exact=False),
                problem.dag.name,
                source,
                features.family,
                json.dumps(features.family_params, sort_keys=True, default=repr),
                problem.game,
                json.dumps(
                    {
                        "one_shot": problem.variant.one_shot,
                        "allow_sliding": problem.variant.allow_sliding,
                        "allow_delete": problem.variant.allow_delete,
                        "compute_cost": problem.variant.compute_cost,
                        "split_compute_cost": problem.variant.split_compute_cost,
                    },
                    sort_keys=True,
                ),
                features.r,
                features.n,
                features.m,
                features.depth,
                features.width,
                features.max_in_degree,
                features.max_out_degree,
                features.n_sources,
                features.n_sinks,
                features.trivial_cost,
                lower_bound,
                best_cost,
                best_solver,
                json.dumps(problem_to_wire(problem), sort_keys=True),
            ),
        )
        self._conn.commit()
        return True

    def contains(self, digest: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM instances WHERE digest = ?", (digest,)
        ).fetchone()
        return row is not None

    def update_best(self, digest: str, cost: int, solver: str) -> bool:
        """Record a solution for ``digest`` — *monotonically*.

        The stored best only ever improves: a cost at or above the current
        best is ignored (returns False).  Returns True when the row was
        updated.

        Raises
        ------
        KeyError
            If no instance with that digest is stored.
        """
        row = self._conn.execute(
            "SELECT best_cost FROM instances WHERE digest = ?", (digest,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no corpus instance with digest {digest!r}")
        current = row["best_cost"]
        if current is not None and int(cost) >= int(current):
            return False
        self._conn.execute(
            "UPDATE instances SET best_cost = ?, best_solver = ? WHERE digest = ?",
            (int(cost), solver, digest),
        )
        self._conn.commit()
        return True

    def set_lower_bound(self, digest: str, bound: int) -> bool:
        """Raise the stored lower bound (bounds only ever tighten upward)."""
        row = self._conn.execute(
            "SELECT lower_bound FROM instances WHERE digest = ?", (digest,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no corpus instance with digest {digest!r}")
        current = row["lower_bound"]
        if current is not None and int(bound) <= int(current):
            return False
        self._conn.execute(
            "UPDATE instances SET lower_bound = ? WHERE digest = ?", (int(bound), digest)
        )
        self._conn.commit()
        return True

    # ------------------------------------------------------------------ #
    # query
    # ------------------------------------------------------------------ #

    def _where(
        self,
        must: List[Filter],
        should: List[Filter],
        must_not: List[Filter],
        min_should: int,
    ) -> Tuple[str, List[Union[int, float, str]]]:
        clauses: List[str] = []
        params: List[Union[int, float, str]] = []
        for f in must:
            sql, value = f.sql()
            clauses.append(sql)
            params.append(value)
        for f in must_not:
            sql, value = f.sql()
            clauses.append(f"NOT {sql}")
            params.append(value)
        if should:
            terms = []
            for f in should:
                sql, value = f.sql()
                terms.append(sql)
                params.append(value)
            clauses.append(f"({' + '.join(terms)}) >= {int(min_should)}")
        return (" AND ".join(clauses) or "1"), params

    def _row_to_instance(self, row: sqlite3.Row) -> CorpusInstance:
        features = InstanceFeatures(
            n=row["n"],
            m=row["m"],
            depth=row["depth"],
            width=row["width"],
            max_in_degree=row["max_in_degree"],
            max_out_degree=row["max_out_degree"],
            n_sources=row["n_sources"],
            n_sinks=row["n_sinks"],
            trivial_cost=row["trivial_cost"],
            r=row["r"],
            game=row["game"],
            family=row["family"],
            family_params=json.loads(row["family_params"]),
        )
        return CorpusInstance(
            digest=row["digest"],
            canonical=row["canonical"],
            name=row["name"],
            source=row["source"],
            features=features,
            lower_bound=row["lower_bound"],
            best_cost=row["best_cost"],
            best_solver=row["best_solver"],
            problem_doc=json.loads(row["problem"]),
        )

    def query(
        self,
        must: Optional[Iterable[Union[str, Filter]]] = None,
        should: Optional[Iterable[Union[str, Filter]]] = None,
        must_not: Optional[Iterable[Union[str, Filter]]] = None,
        min_should: int = 1,
        limit: Optional[int] = None,
        order_by: str = "digest",
    ) -> List[CorpusInstance]:
        """All instances matching the filter sets, deterministically ordered.

        ``must`` filters all have to hold, ``must_not`` filters all have to
        fail, and at least ``min_should`` of the ``should`` filters have to
        hold (ignored when no should-filters are given).  Filters are
        :class:`Filter` objects or strings for :func:`parse_filter`.
        """
        if order_by not in _FILTER_FIELDS:
            raise ValueError(f"cannot order by {order_by!r}; valid fields: {', '.join(sorted(_FILTER_FIELDS))}")
        where, params = self._where(
            _coerce_filters(must), _coerce_filters(should), _coerce_filters(must_not), min_should
        )
        sql = f"SELECT * FROM instances WHERE {where} ORDER BY {order_by}, digest"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return [self._row_to_instance(row) for row in self._conn.execute(sql, params)]

    def get(self, digest: str) -> CorpusInstance:
        """The stored instance for ``digest`` (KeyError when absent)."""
        row = self._conn.execute(
            "SELECT * FROM instances WHERE digest = ?", (digest,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no corpus instance with digest {digest!r}")
        return self._row_to_instance(row)

    def sample(
        self,
        k: int,
        seed: int = 0,
        must: Optional[Iterable[Union[str, Filter]]] = None,
        should: Optional[Iterable[Union[str, Filter]]] = None,
        must_not: Optional[Iterable[Union[str, Filter]]] = None,
        min_should: int = 1,
    ) -> List[CorpusInstance]:
        """A deterministic ``k``-subset of the matching instances.

        Every matching digest is keyed by ``sha256(seed ':' digest)`` and
        the ``k`` smallest keys win — no RNG state, so the same corpus,
        seed and filters select the same instances on any machine, any
        Python version, any insertion order.  Fewer than ``k`` matches
        return them all.
        """
        matches = self.query(must=must, should=should, must_not=must_not, min_should=min_should)

        def key(instance: CorpusInstance) -> str:
            return hashlib.sha256(f"{seed}:{instance.digest}".encode()).hexdigest()

        return sorted(matches, key=key)[: max(0, int(k))]

    # ------------------------------------------------------------------ #
    # aggregate views
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """A JSON-safe summary: counts, family/game histograms, feature ranges."""
        count = len(self)
        doc: Dict[str, object] = {
            "schema_version": CORPUS_SCHEMA_VERSION,
            "path": self.path,
            "instances": count,
        }
        if count == 0:
            return doc
        by = {}
        for column in ("family", "game", "source", "best_solver"):
            rows = self._conn.execute(
                f"SELECT {column} AS k, COUNT(*) AS c FROM instances GROUP BY {column} ORDER BY c DESC, k"
            ).fetchall()
            by[column] = {str(row["k"]): row["c"] for row in rows}
        doc["by"] = by
        ranges = {}
        for column in ("n", "m", "depth", "width", "max_in_degree", "r"):
            row = self._conn.execute(
                f"SELECT MIN({column}) AS lo, MAX({column}) AS hi FROM instances"
            ).fetchone()
            ranges[column] = [row["lo"], row["hi"]]
        doc["ranges"] = ranges
        solved = self._conn.execute(
            "SELECT COUNT(*) FROM instances WHERE best_cost IS NOT NULL"
        ).fetchone()[0]
        matched = self._conn.execute(
            "SELECT COUNT(*) FROM instances WHERE best_cost IS NOT NULL "
            "AND lower_bound IS NOT NULL AND best_cost = lower_bound"
        ).fetchone()[0]
        doc["with_best_cost"] = solved
        doc["provably_optimal"] = matched
        return doc

    # ------------------------------------------------------------------ #
    # JSONL interchange
    # ------------------------------------------------------------------ #

    def export_jsonl(
        self,
        path: Union[str, Path],
        must: Optional[Iterable[Union[str, Filter]]] = None,
        should: Optional[Iterable[Union[str, Filter]]] = None,
        must_not: Optional[Iterable[Union[str, Filter]]] = None,
        min_should: int = 1,
    ) -> int:
        """Write matching instances as JSONL (one self-contained line each).

        Feature columns are *not* exported — they are recomputed on import,
        so a hand-edited line can never carry stale features.  Returns the
        number of lines written.
        """
        instances = self.query(must=must, should=should, must_not=must_not, min_should=min_should)
        with open(path, "w", encoding="utf-8") as fh:
            for instance in instances:
                fh.write(
                    json.dumps(
                        {
                            "schema": CORPUS_SCHEMA_VERSION,
                            "digest": instance.digest,
                            "source": instance.source,
                            "lower_bound": instance.lower_bound,
                            "best_cost": instance.best_cost,
                            "best_solver": instance.best_solver,
                            "problem": instance.problem_doc,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        return len(instances)

    def import_jsonl(self, path: Union[str, Path]) -> Tuple[int, int]:
        """Load a JSONL export; returns ``(inserted, duplicates)``.

        Every line is verified end to end: the problem payload is rebuilt
        through the digest-checking wire codec, its content digest is
        recomputed and compared against the line's claim, and only then is
        the instance (re-)ingested — with the best-known cost merged
        monotonically into any existing row.

        Raises
        ------
        CorpusImportError
            On an unreadable file, invalid JSON, a malformed line, or a
            digest mismatch (the message names the offending line).
        """
        from ..service.protocol import ProtocolError, problem_from_wire

        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise CorpusImportError(f"cannot read {path}: {exc}") from exc
        inserted = 0
        duplicates = 0
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorpusImportError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if not isinstance(doc, dict) or "problem" not in doc:
                raise CorpusImportError(f"{path}:{lineno}: not a corpus JSONL line")
            schema = doc.get("schema")
            if not isinstance(schema, int) or schema > CORPUS_SCHEMA_VERSION:
                raise CorpusImportError(
                    f"{path}:{lineno}: schema {schema!r} is not supported "
                    f"(this build reads <= {CORPUS_SCHEMA_VERSION})"
                )
            try:
                problem = problem_from_wire(doc["problem"])
            except ProtocolError as exc:
                raise CorpusImportError(f"{path}:{lineno}: bad problem payload: {exc}") from exc
            digest = problem_digest(problem)
            claimed = doc.get("digest")
            if claimed is not None and claimed != digest:
                raise CorpusImportError(
                    f"{path}:{lineno}: line claims digest {str(claimed)[:12]} but the "
                    f"payload rebuilds to {digest[:12]}"
                )
            best_cost = doc.get("best_cost")
            if self.add(
                problem,
                source=str(doc.get("source", "jsonl")),
                lower_bound=doc.get("lower_bound"),
                best_cost=best_cost,
                best_solver=doc.get("best_solver"),
            ):
                inserted += 1
            else:
                duplicates += 1
        return inserted, duplicates

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CorpusStore":
        """Open a corpus from either backing format.

        A SQLite file opens directly; a ``.jsonl`` export loads into an
        in-memory store (detected by content, not extension: SQLite files
        start with the 16-byte ``SQLite format 3`` magic).
        """
        p = Path(path)
        try:
            with open(p, "rb") as fh:
                magic = fh.read(16)
        except OSError as exc:
            raise CorpusImportError(f"cannot read corpus {path}: {exc}") from exc
        if magic.startswith(b"SQLite format 3"):
            return cls(p)
        store = cls(":memory:")
        store.import_jsonl(p)
        return store
