"""Corpus-sampled benchmark scenarios: measure a population, not a list.

The 31 hand-registered scenarios reproduce the paper's closed-form
constructions; a corpus holds hundreds of fuzz-kept and imported instances
beyond them.  This module bridges the two: it samples a stored corpus
deterministically (seed + must/should/must-not filters, via
:meth:`CorpusStore.sample`'s RNG-free smallest-hash rule) and wraps each
sampled instance as a :class:`~repro.bench.scenario.BenchScenario` in the
``corpus`` group, so the existing runner, the ``--compare`` regression gate
and the JSON report format all apply unchanged.

Scenario names embed the instance's content digest (``corpus-<digest12>``),
which makes two runs of the same corpus file + seed + filters *bit
identical* in scenario composition — exactly what ``--compare`` needs: a
changed sample would otherwise masquerade as a performance change.

Corpus scenarios deliberately have identical ``quick`` and ``full`` tiers:
a stored instance has one concrete size, unlike the registered closed-form
families that rescale per tier.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..core.dag import ComputationalDAG
from ..bench.scenario import (
    BenchScenario,
    ScenarioTier,
    TIERS,
    register_scenario,
    unregister_scenario,
)
from .store import CorpusInstance, CorpusStore, Filter

__all__ = ["CORPUS_GROUP", "corpus_scenarios", "register_corpus_scenarios"]

#: The scenario group every corpus-sampled scenario lands in.
CORPUS_GROUP = "corpus"

FilterArg = Optional[Iterable[Union[str, Filter]]]


def _instance_scenario(instance: CorpusInstance, solver: str) -> BenchScenario:
    """One sampled instance as a scenario with identical quick/full tiers."""
    problem = instance.problem()  # digest-checked rebuild, fails loudly

    def factory(digest: str = instance.digest) -> ComputationalDAG:
        # The closure captures the already-rebuilt problem; the digest
        # keyword puts the identity into the tier's dag_kwargs so --list
        # and the JSON report show which corpus row the scenario measures.
        return problem.dag

    tier = ScenarioTier(
        dag_kwargs={"digest": instance.digest},
        r=problem.r,
        expected_cost=None,
    )
    return BenchScenario(
        name=f"corpus-{instance.digest[:12]}",
        group=CORPUS_GROUP,
        title=(
            f"corpus instance {instance.digest[:12]} "
            f"({instance.features.family or 'unknown'}, n={instance.features.n}, "
            f"r={instance.features.r}, {instance.features.game}, "
            f"source={instance.source})"
        ),
        dag_factory=factory,
        game=problem.game,
        variant=problem.variant,
        solver=solver,
        tiers={name: tier for name in TIERS},
        reference=(
            f"best known {instance.best_cost} ({instance.best_solver})"
            if instance.best_cost is not None
            else "no best-known cost recorded"
        ),
    )


def corpus_scenarios(
    source: Union[str, Path, CorpusStore],
    sample: int = 8,
    seed: int = 0,
    must: FilterArg = None,
    should: FilterArg = None,
    must_not: FilterArg = None,
    min_should: int = 1,
    solver: str = "auto",
) -> List[BenchScenario]:
    """Sample ``sample`` instances from a corpus into bench scenarios.

    ``source`` is a :class:`CorpusStore`, a SQLite corpus file, or a JSONL
    export (format detected by content).  The result is a deterministic
    function of (corpus contents, seed, filters) and is sorted by scenario
    name, so repeated runs build byte-identical suites.
    """
    store = source if isinstance(source, CorpusStore) else CorpusStore.from_file(source)
    instances = store.sample(
        sample, seed=seed, must=must, should=should, must_not=must_not, min_should=min_should
    )
    return sorted(
        (_instance_scenario(inst, solver=solver) for inst in instances),
        key=lambda s: s.name,
    )


def register_corpus_scenarios(
    source: Union[str, Path, CorpusStore],
    sample: int = 8,
    seed: int = 0,
    must: FilterArg = None,
    should: FilterArg = None,
    must_not: FilterArg = None,
    min_should: int = 1,
    solver: str = "auto",
    replace: bool = True,
) -> List[BenchScenario]:
    """Sample a corpus and register the scenarios in the global registry.

    With ``replace`` (the default) a name collision from an earlier
    registration of the same instance is silently replaced, so re-running
    a bench CLI invocation in one process is idempotent.  Returns the
    registered scenarios.
    """
    scenarios = corpus_scenarios(
        source,
        sample=sample,
        seed=seed,
        must=must,
        should=should,
        must_not=must_not,
        min_should=min_should,
        solver=solver,
    )
    for scenario in scenarios:
        if replace:
            unregister_scenario(scenario.name)
        register_scenario(scenario)
    return scenarios
