"""Pebbling solvers: exact search, the paper's structured strategies, greedy baselines."""

from .anytime import (
    BEAM_NODE_LIMIT,
    DEFAULT_REFINE_STEPS,
    RefinementTrajectory,
    beam_construct,
    last_refinement_trajectory,
    refine_schedule,
)
from .baselines import naive_prbp_schedule, naive_rbp_schedule
from .exhaustive import (
    DEFAULT_MAX_STATES,
    optimal_prbp_cost,
    optimal_prbp_schedule,
    optimal_rbp_cost,
    optimal_rbp_schedule,
)
from .greedy import greedy_rbp_schedule, topological_prbp_schedule
from .structured import (
    attention_flash_prbp_schedule,
    chained_gadget_prbp_schedule,
    collection_full_prbp_schedule,
    collection_full_rbp_schedule,
    fanin_groups_prbp_schedule,
    fft_blocked_prbp_schedule,
    fft_blocked_rbp_schedule,
    figure1_prbp_schedule,
    figure1_rbp_schedule,
    matmul_tiled_prbp_schedule,
    matvec_prbp_schedule,
    tree_prbp_schedule,
    tree_rbp_schedule,
    zipper_prbp_schedule,
    zipper_rbp_schedule,
)

__all__ = [
    "BEAM_NODE_LIMIT",
    "DEFAULT_REFINE_STEPS",
    "RefinementTrajectory",
    "beam_construct",
    "last_refinement_trajectory",
    "refine_schedule",
    "naive_prbp_schedule",
    "naive_rbp_schedule",
    "DEFAULT_MAX_STATES",
    "optimal_prbp_cost",
    "optimal_prbp_schedule",
    "optimal_rbp_cost",
    "optimal_rbp_schedule",
    "greedy_rbp_schedule",
    "topological_prbp_schedule",
    "attention_flash_prbp_schedule",
    "chained_gadget_prbp_schedule",
    "collection_full_prbp_schedule",
    "collection_full_rbp_schedule",
    "fanin_groups_prbp_schedule",
    "fft_blocked_prbp_schedule",
    "fft_blocked_rbp_schedule",
    "figure1_prbp_schedule",
    "figure1_rbp_schedule",
    "matmul_tiled_prbp_schedule",
    "matvec_prbp_schedule",
    "tree_prbp_schedule",
    "tree_rbp_schedule",
    "zipper_prbp_schedule",
    "zipper_rbp_schedule",
]
