"""Naive baseline schedules: worst-reasonable upper bounds for comparisons.

The benchmarks report three numbers per instance — a lower bound, the cost of
the paper's strategy, and the cost of a *naive* strategy that makes no
attempt at reuse — so that the reader can see how much of the possible
improvement the clever strategy captures.  The naive strategies here spill
every intermediate value to slow memory and reload every input right before
it is used; they are valid for the smallest possible cache (``r = 2`` in
PRBP, ``r = Δ_in + 1`` in RBP) and their cost is essentially ``2·|E|``.
"""

from __future__ import annotations


from ..core.dag import ComputationalDAG
from ..core.exceptions import SolverError
from ..core.moves import MoveKind, PRBPMove, RBPMove
from ..core.pebbles import PRBPState
from ..core.prbp import PRBPGame
from ..core.rbp import RBPGame
from ..core.strategy import PRBPSchedule, RBPSchedule
from ..core.variants import ONE_SHOT, GameVariant

__all__ = ["naive_prbp_schedule", "naive_rbp_schedule"]


def naive_prbp_schedule(
    dag: ComputationalDAG, r: int = 2, variant: GameVariant = ONE_SHOT
) -> PRBPSchedule:
    """Spill-everything PRBP pebbling: one load per edge tail, one save/load pair per partial value.

    Works for every DAG with ``r >= 2`` and costs at most ``2·|E| + |sinks|``
    I/O operations; it is the PRBP analogue of a cache of size two with no
    reuse across consecutive operations.
    """
    if r < 2 and dag.m > 0:
        raise SolverError(f"the naive PRBP strategy needs r >= 2, got r = {r}")
    game = PRBPGame(dag, r, variant=variant)
    for v in dag.topological_order:
        for u in dag.predecessors(v):
            # bring u in
            if not game.node_state(u).has_red:
                game.apply(PRBPMove(MoveKind.LOAD, node=u))
            # bring the partial value of v back in if it was spilled
            if game.node_state(v) is PRBPState.BLUE:
                game.apply(PRBPMove(MoveKind.LOAD, node=v))
            game.apply(PRBPMove(MoveKind.COMPUTE, edge=(u, v)))
            # spill the partial value and drop everything from fast memory
            game.apply(PRBPMove(MoveKind.SAVE, node=v))
            game.apply(PRBPMove(MoveKind.DELETE, node=v))
            if game.node_state(u).has_red:
                game.apply(PRBPMove(MoveKind.DELETE, node=u))
    game.assert_terminal()
    assert game.history is not None
    return PRBPSchedule(dag, r, list(game.history), variant=variant, description="naive spill-everything")


def naive_rbp_schedule(
    dag: ComputationalDAG, r: int | None = None, variant: GameVariant = ONE_SHOT
) -> RBPSchedule:
    """Spill-everything RBP pebbling: reload every input of every node, save every result.

    Uses ``r = Δ_in + 1`` by default (the smallest feasible cache) and costs
    ``Σ_v (deg_in(v) + 1)`` I/O operations plus the source loads.
    """
    if r is None:
        r = dag.max_in_degree + 1
    if r < dag.max_in_degree + 1:
        raise SolverError(
            f"no valid RBP pebbling exists: r = {r} < max in-degree + 1 = {dag.max_in_degree + 1}"
        )
    game = RBPGame(dag, r, variant=variant)
    for v in dag.topological_order:
        if dag.is_source(v):
            continue
        for u in dag.predecessors(v):
            if u not in game.red:
                game.apply(RBPMove(MoveKind.LOAD, u))
        game.apply(RBPMove(MoveKind.COMPUTE, v))
        game.apply(RBPMove(MoveKind.SAVE, v))
        for u in list(game.red):
            game.apply(RBPMove(MoveKind.DELETE, u))
    game.assert_terminal()
    assert game.history is not None
    return RBPSchedule(dag, r, list(game.history), variant=variant, description="naive spill-everything")
