"""Greedy pebbling heuristics: topological processing with Belady-style eviction.

These solvers produce *valid* (not necessarily optimal) schedules for DAGs of
any size and are used as upper-bound baselines in the benchmarks and as
work-horses in the examples:

* :func:`topological_prbp_schedule` — the strategy sketched in Section 3 of
  the paper: process the edges in a topological order of their heads,
  loading inputs and saving partial values on demand.  It produces a valid
  PRBP pebbling for every DAG as soon as ``r >= 2``.
* :func:`greedy_rbp_schedule` — the classic RBP analogue: compute the nodes
  in topological order, gathering all inputs in fast memory; valid whenever
  ``r >= Δ_in + 1``.

Both use the same eviction machinery: when a slot is needed, prefer pebbles
that can be dropped for free (already saved, or never needed again), and
otherwise save-and-drop the pebble whose next use is furthest in the future
(the offline Belady rule applied to the fixed processing order).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ..core.dag import ComputationalDAG
from ..core.exceptions import SolverError
from ..core.moves import MoveKind, PRBPMove, RBPMove
from ..core.pebbles import PRBPState
from ..core.prbp import PRBPGame
from ..core.rbp import RBPGame
from ..core.strategy import PRBPSchedule, RBPSchedule
from ..core.variants import ONE_SHOT, GameVariant

__all__ = ["topological_prbp_schedule", "greedy_rbp_schedule"]


def _next_use_table(order: Sequence[Tuple[int, ...]], n: int) -> List[List[int]]:
    """For each node, the sorted list of positions in ``order`` where it participates."""
    uses: List[List[int]] = [[] for _ in range(n)]
    for pos, nodes in enumerate(order):
        for v in nodes:
            uses[v].append(pos)
    return uses


def _next_use_after(uses: List[int], pos: int) -> float:
    """First use strictly after ``pos`` (``inf`` when the node is never used again)."""
    # uses is sorted; linear scan is fine because lists are short and consumed in order
    for p in uses:
        if p > pos:
            return p
    return float("inf")


def topological_prbp_schedule(
    dag: ComputationalDAG,
    r: int,
    topo_order: Optional[Sequence[int]] = None,
    variant: GameVariant = ONE_SHOT,
) -> PRBPSchedule:
    """Greedy PRBP pebbling: aggregate each node's in-edges in topological order.

    Parameters
    ----------
    dag, r:
        The instance; any ``r >= 2`` admits a valid pebbling (``r >= 1``
        suffices for edge-less DAGs).
    topo_order:
        Optional node order to follow (must be a topological order of
        ``dag``); defaults to the DAG's own order.  Structured callers (e.g.
        the matrix–vector strategy) pass tailored orders to get better
        locality.
    variant:
        Only used for cost bookkeeping; must be a one-shot variant.
    """
    if r < 2 and dag.m > 0:
        raise SolverError(f"the topological PRBP strategy needs r >= 2, got r = {r}")
    order = list(topo_order) if topo_order is not None else list(dag.topological_order)
    if len(order) != dag.n or set(order) != set(range(dag.n)):
        raise ValueError("topo_order must be a permutation of all nodes")
    pos_of = {v: i for i, v in enumerate(order)}
    for u, v in dag.edges:
        if pos_of[u] >= pos_of[v]:
            raise ValueError("topo_order is not a topological order of the DAG")

    # Edge processing sequence: all in-edges of each node, nodes in order.
    edge_sequence: List[Tuple[int, int]] = []
    for v in order:
        for u in sorted(dag.predecessors(v), key=lambda u: pos_of[u]):
            edge_sequence.append((u, v))
    participants = [(u, v) for (u, v) in edge_sequence]
    uses = _next_use_table(participants, dag.n)

    game = PRBPGame(dag, r, variant=variant)

    def make_room(pos: int, protected: Set[int]) -> None:
        """Free one fast-memory slot, never touching ``protected`` nodes."""
        if game.red_count() < r:
            return
        # candidates: every red node outside the protected set
        candidates = [
            v
            for v in dag.nodes()
            if game.node_state(v).has_red and v not in protected
        ]
        if not candidates:
            raise SolverError(
                f"cannot free a fast-memory slot at position {pos}: all {r} red pebbles are in use"
            )
        def freely_deletable(v: int) -> bool:
            st = game.node_state(v)
            if st is PRBPState.BLUE_LIGHT_RED:
                return True
            # An unsaved dark red sink must never be dropped (it still has to
            # reach slow memory), so it only qualifies after a save.
            return (
                st is PRBPState.DARK_RED
                and not dag.is_sink(v)
                and game.all_out_edges_marked(v)
                and game.is_fully_computed(v)
            )

        free_candidates = [v for v in candidates if freely_deletable(v)]
        pool = free_candidates if free_candidates else candidates
        victim = max(pool, key=lambda v: _next_use_after(uses[v], pos))
        if game.node_state(victim) is PRBPState.DARK_RED and not freely_deletable(victim):
            game.apply(PRBPMove(MoveKind.SAVE, node=victim))
        game.apply(PRBPMove(MoveKind.DELETE, node=victim))

    for pos, (u, v) in enumerate(edge_sequence):
        # 1. make sure u is in fast memory
        if not game.node_state(u).has_red:
            protected = {v} if game.node_state(v).has_red else set()
            make_room(pos, protected)
            game.apply(PRBPMove(MoveKind.LOAD, node=u))
        # 2. make sure v can receive the dark red pebble
        stv = game.node_state(v)
        if stv is PRBPState.BLUE:
            make_room(pos, {u})
            game.apply(PRBPMove(MoveKind.LOAD, node=v))
        elif stv is PRBPState.NONE:
            make_room(pos, {u})
        # 3. aggregate
        game.apply(PRBPMove(MoveKind.COMPUTE, edge=(u, v)))

    for v in dag.sinks:
        if game.node_state(v) is PRBPState.DARK_RED:
            game.apply(PRBPMove(MoveKind.SAVE, node=v))
    game.assert_terminal()
    assert game.history is not None
    return PRBPSchedule(
        dag,
        r,
        list(game.history),
        variant=variant,
        description="topological greedy (Belady eviction)",
    )


def greedy_rbp_schedule(
    dag: ComputationalDAG,
    r: int,
    topo_order: Optional[Sequence[int]] = None,
    variant: GameVariant = ONE_SHOT,
) -> RBPSchedule:
    """Greedy RBP pebbling: compute nodes in topological order with Belady eviction.

    Requires ``r >= Δ_in + 1`` (otherwise no RBP pebbling exists at all).
    """
    if r < dag.max_in_degree + 1:
        raise SolverError(
            f"no valid RBP pebbling exists: r = {r} < max in-degree + 1 = {dag.max_in_degree + 1}"
        )
    order = list(topo_order) if topo_order is not None else list(dag.topological_order)
    if len(order) != dag.n or set(order) != set(range(dag.n)):
        raise ValueError("topo_order must be a permutation of all nodes")
    pos_of = {v: i for i, v in enumerate(order)}
    for u, v in dag.edges:
        if pos_of[u] >= pos_of[v]:
            raise ValueError("topo_order is not a topological order of the DAG")

    steps: List[Tuple[int, ...]] = []
    for v in order:
        if not dag.is_source(v):
            steps.append(tuple(dag.predecessors(v)) + (v,))
    uses = _next_use_table(steps, dag.n)

    game = RBPGame(dag, r, variant=variant)

    def make_room(pos: int, protected: Set[int]) -> None:
        if game.red_count() < r:
            return
        candidates = [v for v in game.red if v not in protected]
        if not candidates:
            raise SolverError(
                f"cannot free a fast-memory slot at step {pos}: all {r} red pebbles are protected"
            )
        free_candidates = [v for v in candidates if v in game.blue]
        pool = free_candidates if free_candidates else candidates
        victim = max(pool, key=lambda v: _next_use_after(uses[v], pos))
        if victim not in game.blue:
            game.apply(RBPMove(MoveKind.SAVE, victim))
        game.apply(RBPMove(MoveKind.DELETE, victim))

    step_index = 0
    for v in order:
        if dag.is_source(v):
            continue
        preds = set(dag.predecessors(v))
        for u in sorted(preds, key=lambda u: pos_of[u]):
            if u not in game.red:
                make_room(step_index, preds | {v})
                game.apply(RBPMove(MoveKind.LOAD, u))
        make_room(step_index, preds | {v})
        game.apply(RBPMove(MoveKind.COMPUTE, v))
        if dag.is_sink(v):
            game.apply(RBPMove(MoveKind.SAVE, v))
        step_index += 1

    game.assert_terminal()
    assert game.history is not None
    return RBPSchedule(
        dag,
        r,
        list(game.history),
        variant=variant,
        description="topological greedy (Belady eviction)",
    )
