"""Exact optimal pebbling via A* search over game configurations.

Computing ``OPT_RBP`` and ``OPT_PRBP`` is NP-hard (and hard to approximate,
Theorem 7.1), so exact solvers can only target small DAGs — which is exactly
what the paper's examples need: the Figure 1 gadget, small trees, small
zipper and collection gadgets, and the DAG families at toy sizes.  The
solvers here are used by the test-suite and the benchmarks to *verify* that
the structured strategies and the closed-form costs of the propositions are
actually optimal.

Search formulation
------------------
A configuration is the complete game state:

* RBP:  ``(red set, blue set, computed set)`` — three bitmasks;
* PRBP: ``(per-node pebble state, marked-edge set)`` — a 2-bit-per-node code
  and an edge bitmask.

Moves are grouped into *macro moves* in a cost-preserving normal form:

* **Deferred deletes.**  Delete moves are free and their legality is
  monotone in time (a light red pebble can always be deleted; a dark red
  pebble becomes deletable once all its out-edges are marked, and marks are
  never removed in the one-shot game), and keeping a pebble never disables a
  later move except through the capacity bound, which is only checked when a
  pebble is *added*.  Hence every strategy can be normalised so that deletes
  happen immediately before the load/compute that needs the freed slot.  The
  solver therefore only branches over "delete one pebble + add one pebble"
  pairs when the configuration is at capacity.
* **Useless-move elimination.**  Loads of values that can never be used
  again, saves of values that are already up to date in slow memory, and
  saves of values that are never needed again are never part of a minimal
  strategy and are not generated.

The search is A* with an admissible (not necessarily consistent) heuristic
combining two ingredients:

* the per-state counting term "number of unsaved sinks plus number of
  sources that still have to be re-loaded" — both count distinct,
  unavoidable future I/O operations from the current configuration;
* a *root lower bound* computed once per search from :mod:`repro.bounds`
  (the trivial cost always; on small one-shot instances also the exact
  Hong–Kung S-partition bound for RBP and the Theorem 6.5/6.7 S-edge /
  S-dominator partition bounds for PRBP).  Any full schedule through a
  state of cost ``g`` costs at least the root bound in total, so
  ``max(h(state), bound - g)`` is admissible, which floors every f-value
  at the bound.

States are re-opened when a cheaper path is found, so inconsistency only
costs re-expansions, never optimality.  Two further prunes keep the
expansion count down:

* **f-tie breaking towards the goal** — among equal f-values the larger
  g (deeper state) is popped first, so once the frontier reaches the
  optimum plateau the search runs depth-first along it instead of
  flooding the whole plateau breadth-first;
* **dominance pruning** — a popped state whose freely-deletable red set
  is a subset of an already-expanded state with the same irreversible
  progress (blue/computed sets in RBP; marked edges, dark pebbles and
  blue base in PRBP) at equal-or-lower g-cost is skipped: extra red
  pebbles can always be deleted for free, so every completion of the
  dominated state is matched, at equal or lower cost, through the
  dominating one.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict
from dataclasses import dataclass
from itertools import count
from typing import Dict, Iterator, List, Optional, Tuple

from ..bounds.hongkung import rbp_lower_bound_exact
from ..bounds.prbp_bounds import (
    prbp_dominator_lower_bound_exact,
    prbp_edge_lower_bound_exact,
)
from ..core.canonical import dag_digest
from ..core.dag import ComputationalDAG
from ..core.exceptions import SolverError
from ..core.moves import MoveKind, PRBPMove, RBPMove
from ..core.pebbles import PRBPState
from ..core.strategy import PRBPSchedule, RBPSchedule
from ..core.variants import ONE_SHOT, GameVariant

__all__ = [
    "optimal_rbp_schedule",
    "optimal_rbp_cost",
    "optimal_prbp_schedule",
    "optimal_prbp_cost",
    "DEFAULT_MAX_STATES",
    "ROOT_BOUND_NODE_LIMIT",
    "ROOT_BOUND_EDGE_LIMIT",
    "SearchTelemetry",
    "last_search_telemetry",
    "root_lower_bound",
    "root_lower_bound_cache_clear",
]

#: Default cap on the number of distinct configurations the solvers may expand.
DEFAULT_MAX_STATES = 2_000_000

#: Exact node-partition root bounds are only computed below this node count —
#: the downset-lattice search behind them is itself exponential, and on larger
#: or capacity-rich instances its cost would dwarf the A* run it speeds up.
ROOT_BOUND_NODE_LIMIT = 9

#: Same guard for the PRBP S-edge partition bound, in edges.
ROOT_BOUND_EDGE_LIMIT = 12


#: Bound on the memoised root bounds below.  The cache stores only
#: ``(digest, r, game, variant) -> int`` — never DAG objects — so even at
#: capacity it holds a few hundred strings and ints, not hundreds of graphs.
ROOT_BOUND_CACHE_SIZE = 512

_root_bound_cache: "OrderedDict[Tuple[str, int, str, GameVariant], int]" = OrderedDict()
_root_bound_lock = threading.Lock()


def root_lower_bound_cache_clear() -> None:
    """Drop every memoised root bound.

    Exposed so long-running hosts (the solve daemon's cache-pressure path,
    test isolation) can release the memo deterministically instead of
    waiting for LRU turnover.
    """
    with _root_bound_lock:
        _root_bound_cache.clear()


def root_lower_bound(dag: ComputationalDAG, r: int, game: str, variant: GameVariant) -> int:
    """A cheap lower bound on the total cost of any valid schedule.

    Always includes the trivial cost (sources + sinks) when the DAG has no
    isolated node; on small one-shot instances without the sliding rule it is
    strengthened with the exact partition bounds of :mod:`repro.bounds`
    (Hong–Kung for RBP, Theorems 6.5/6.7 for PRBP).  The partition searches
    are skipped when ``2r >= n`` (a single class is always valid there, so
    the bound degenerates to 0) and above the ``ROOT_BOUND_*`` size guards.

    The result floors every f-value of the A* searches below; it is a bound
    on *total* cost because I/O cost lower bounds remain valid when compute
    steps add a non-negative ε on top.

    Results are memoised under the DAG's *content digest*, not the DAG
    object: a resident daemon solving an endless stream of distinct
    problems must not pin full graphs in an ``lru_cache`` for the life of
    the process (the old behaviour — up to 512 DAGs held by key identity).
    The bound is a pure function of the digested content, so equal digests
    cannot disagree.  Thread-safe: the service's thread-pool fallback
    solves concurrently.
    """
    key = (dag_digest(dag), r, game, variant)
    with _root_bound_lock:
        cached = _root_bound_cache.get(key)
        if cached is not None:
            _root_bound_cache.move_to_end(key)
            return cached
    value = _compute_root_lower_bound(dag, r, game, variant)
    with _root_bound_lock:
        _root_bound_cache[key] = value
        _root_bound_cache.move_to_end(key)
        while len(_root_bound_cache) > ROOT_BOUND_CACHE_SIZE:
            _root_bound_cache.popitem(last=False)
    return value


def _compute_root_lower_bound(
    dag: ComputationalDAG, r: int, game: str, variant: GameVariant
) -> int:
    if dag.n > 1 and any(dag.is_source(v) and dag.is_sink(v) for v in dag.nodes()):
        return 0  # an isolated node needs no I/O at all; stay conservative
    lb = dag.trivial_cost()
    if not variant.one_shot or variant.allow_sliding:
        # The partition bounds are proven for the one-shot game without
        # sliding (a sliding schedule is not a valid standard schedule, so
        # OPT_sliding may undercut them); the trivial cost still holds.
        return lb
    try:
        if game == "rbp":
            if dag.n <= ROOT_BOUND_NODE_LIMIT and 2 * r < dag.n:
                lb = max(lb, rbp_lower_bound_exact(dag, r))
        elif dag.n <= ROOT_BOUND_NODE_LIMIT and 2 * r < dag.n:
            lb = max(lb, prbp_dominator_lower_bound_exact(dag, r))
            if dag.m <= ROOT_BOUND_EDGE_LIMIT:
                lb = max(lb, prbp_edge_lower_bound_exact(dag, r))
    except SolverError:
        pass  # partition machinery refused the instance; the trivial cost stands
    return lb


@dataclass(frozen=True)
class SearchTelemetry:
    """Counters of the most recent A* run (successful or aborted).

    ``run_id`` increases with every search, so callers that wrap a solver
    invocation can tell whether the search actually ran in between (the
    greedy and structured solvers never touch it).
    """

    run_id: int
    expanded: int
    frontier_peak: int
    completed: bool
    dominated_pruned: int = 0


# Telemetry is published per thread: a concurrent solve() in another thread
# must never see (and misattribute) this thread's search counters.
_telemetry_store = threading.local()
_run_ids = count(1)


def last_search_telemetry() -> Optional[SearchTelemetry]:
    """Counters of the calling thread's most recent exhaustive search.

    ``None`` before any search ran on this thread.
    """
    return getattr(_telemetry_store, "last", None)


def _popcount(x: int) -> int:
    return x.bit_count()


def _bits(x: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``x`` in increasing order."""
    while x:
        low = x & -x
        yield low.bit_length() - 1
        x ^= low


# --------------------------------------------------------------------------- #
# RBP
# --------------------------------------------------------------------------- #


class _RBPSearch:
    """A* search for the optimal RBP pebbling of a small DAG."""

    #: Heuristic value of a provably dead state (a still-needed value was
    #: irrecoverably lost); far above any reachable f, so never expanded.
    DEAD_STATE_H = 1 << 30

    def __init__(self, dag: ComputationalDAG, r: int, variant: GameVariant, max_states: int):
        self.dag = dag
        self.r = r
        self.variant = variant
        self.max_states = max_states
        self.n = dag.n
        self.full_mask = (1 << dag.n) - 1
        self.source_mask = sum(1 << v for v in dag.sources)
        self.sink_mask = sum(1 << v for v in dag.sinks)
        self.pred_mask = [sum(1 << u for u in dag.predecessors(v)) for v in range(self.n)]
        self.succ_mask = [sum(1 << w for w in dag.successors(v)) for v in range(self.n)]
        self.is_source = [dag.is_source(v) for v in range(self.n)]
        self.is_sink = [dag.is_sink(v) for v in range(self.n)]
        if not variant.allow_sliding and r < dag.max_in_degree + 1:
            raise SolverError(
                f"no valid RBP pebbling exists: r = {r} < max in-degree + 1 = {dag.max_in_degree + 1}"
            )
        if variant.allow_sliding and r < dag.max_in_degree:
            raise SolverError(
                f"no valid sliding-RBP pebbling exists: r = {r} < max in-degree = {dag.max_in_degree}"
            )
        self.root_bound = root_lower_bound(dag, r, "rbp", variant)

    # state = (red, blue, computed) bitmask triple

    def initial(self) -> Tuple[int, int, int]:
        return (0, self.source_mask, 0)

    def dominance(self, state: Tuple[int, int, int]) -> Optional[Tuple[Tuple[int, int], int]]:
        """Dominance key/mask pair: states sharing the ``(blue, computed)``
        key are comparable, and one with a red *subset* at equal-or-higher
        g-cost is dominated (extra red pebbles delete for free).  Disabled in
        the no-deletion variant, where red pebbles cannot be shed."""
        if not self.variant.allow_delete:
            return None
        red, blue, computed = state
        return (blue, computed), red

    def is_goal(self, state: Tuple[int, int, int]) -> bool:
        return (state[1] & self.sink_mask) == self.sink_mask

    def heuristic(self, state: Tuple[int, int, int]) -> int:
        red, blue, computed = state
        h = _popcount(self.sink_mask & ~blue)
        if self.variant.one_shot:
            # Every non-red node with an uncomputed successor must become red
            # again before that successor can be computed.  Sources and
            # already-computed nodes can only get there through a load (one
            # distinct load each); an already-computed node that is neither
            # blue nor red is lost for good — the state is a dead end.
            for v in _bits(self.full_mask & ~red):
                if not (self.succ_mask[v] & ~computed):
                    continue
                bit = 1 << v
                if self.is_source[v]:
                    h += 1
                elif computed & bit:
                    if blue & bit:
                        h += 1
                    else:
                        return self.DEAD_STATE_H
        else:
            for s in _bits(self.source_mask & ~red):
                # a source that still has an uncomputed successor must be
                # (re)loaded; non-sources may be recomputed instead
                if self.succ_mask[s] & ~computed:
                    h += 1
        return h

    def successors(
        self, state: Tuple[int, int, int]
    ) -> Iterator[Tuple[Tuple[int, int, int], float, Tuple[RBPMove, ...]]]:
        red, blue, computed = state
        red_count = _popcount(red)
        at_capacity = red_count >= self.r
        one_shot = self.variant.one_shot
        allow_delete = self.variant.allow_delete
        compute_cost = self.variant.compute_cost

        # deletable red pebbles (for deferred deletes); in the no-deletion
        # variant nothing can be deleted.  In the one-shot game, deleting the
        # only copy of a value that is still needed (an unsaved sink, or an
        # unsaved computed node with an uncomputed successor) makes the goal
        # unreachable, so those choices are never generated.
        deletable: List[int] = []
        if allow_delete:
            for d in _bits(red):
                dbit = 1 << d
                if (
                    one_shot
                    and not (blue & dbit)
                    and (self.is_sink[d] or (self.succ_mask[d] & ~computed))
                ):
                    continue
                deletable.append(d)

        for v in range(self.n):
            bit = 1 << v
            in_red = bool(red & bit)
            in_blue = bool(blue & bit)

            # ---- save -------------------------------------------------- #
            # In the no-deletion variant a save is also the only way to free a
            # fast-memory slot, so it is generated even when it looks useless
            # (and even when the node is already blue).
            if in_red and (not in_blue or not allow_delete):
                useful = True
                if (
                    allow_delete
                    and one_shot
                    and not self.is_sink[v]
                    and not (self.succ_mask[v] & ~computed)
                ):
                    useful = False  # value can never be needed again
                if useful:
                    new_red = red if allow_delete else red & ~bit
                    yield (new_red, blue | bit, computed), 1.0, (RBPMove(MoveKind.SAVE, v),)

            # ---- load -------------------------------------------------- #
            if in_blue and not in_red:
                useful = bool(self.succ_mask[v] & ~computed) if one_shot else bool(self.succ_mask[v])
                if useful:
                    if not at_capacity:
                        yield (red | bit, blue, computed), 1.0, (RBPMove(MoveKind.LOAD, v),)
                    else:
                        for d in deletable:
                            dbit = 1 << d
                            yield (
                                ((red & ~dbit) | bit, blue, computed),
                                1.0,
                                (RBPMove(MoveKind.DELETE, d), RBPMove(MoveKind.LOAD, v)),
                            )

            # ---- compute ----------------------------------------------- #
            if not self.is_source[v] and not in_red:
                if one_shot and (computed & bit):
                    continue
                if (red & self.pred_mask[v]) != self.pred_mask[v]:
                    continue
                cost = float(compute_cost)
                if self.variant.allow_sliding:
                    for u in _bits(self.pred_mask[v]):
                        ubit = 1 << u
                        yield (
                            ((red & ~ubit) | bit, blue, computed | bit),
                            cost,
                            (RBPMove(MoveKind.COMPUTE, v, slide_from=u),),
                        )
                if not at_capacity:
                    yield (red | bit, blue, computed | bit), cost, (RBPMove(MoveKind.COMPUTE, v),)
                else:
                    for d in deletable:
                        dbit = 1 << d
                        if dbit & self.pred_mask[v]:
                            continue  # deleting an input would make the compute illegal
                        yield (
                            ((red & ~dbit) | bit, blue, computed | bit),
                            cost,
                            (RBPMove(MoveKind.DELETE, d), RBPMove(MoveKind.COMPUTE, v)),
                        )


class _PRBPSearch:
    """A* search for the optimal (one-shot) PRBP pebbling of a small DAG."""

    def __init__(self, dag: ComputationalDAG, r: int, variant: GameVariant, max_states: int):
        if not variant.one_shot:
            raise SolverError("the exhaustive PRBP solver only supports the one-shot variant")
        if variant.allow_sliding:
            raise SolverError("the sliding rule does not exist in PRBP")
        self.dag = dag
        self.r = r
        self.variant = variant
        self.max_states = max_states
        self.n = dag.n
        self.m = dag.m
        self.edges = dag.edges
        self.in_edge_ids = [
            [dag.edge_id(u, v) for u in dag.predecessors(v)] for v in range(self.n)
        ]
        self.out_edge_ids = [
            [dag.edge_id(v, w) for w in dag.successors(v)] for v in range(self.n)
        ]
        self.in_edge_mask = [sum(1 << e for e in self.in_edge_ids[v]) for v in range(self.n)]
        self.out_edge_mask = [sum(1 << e for e in self.out_edge_ids[v]) for v in range(self.n)]
        self.is_source = [dag.is_source(v) for v in range(self.n)]
        self.is_sink = [dag.is_sink(v) for v in range(self.n)]
        self.sinks = list(dag.sinks)
        self.sources = list(dag.sources)
        self.all_edges_mask = (1 << self.m) - 1
        if r < 2 and dag.max_in_degree >= 1:
            raise SolverError(
                f"no valid PRBP pebbling exists for r = {r} < 2 on a DAG with edges"
            )
        self.root_bound = root_lower_bound(dag, r, "prbp", variant)

    # state = (codes, marked) where codes packs 2 bits per node

    def initial(self) -> Tuple[int, int]:
        codes = 0
        for v in self.sources:
            codes |= int(PRBPState.BLUE) << (2 * v)
        return (codes, 0)

    def dominance(self, state: Tuple[int, int]) -> Tuple[Tuple[int, int], int]:
        """Dominance key/mask pair.  Light red pebbles are the only freely
        deletable resource (``BLUE_LIGHT_RED -> BLUE`` is always legal, even
        in the no-deletion variant), so the key normalises every light pebble
        to plain blue — states agreeing on marked edges, dark pebbles and the
        blue base are comparable, and a light-set subset at equal-or-higher
        g-cost is dominated."""
        codes, marked = state
        light = int(PRBPState.BLUE_LIGHT_RED)
        blue = int(PRBPState.BLUE)
        light_mask = 0
        base = codes
        for v in range(self.n):
            shift = 2 * v
            if ((codes >> shift) & 3) == light:
                light_mask |= 1 << v
                base = (base & ~(3 << shift)) | (blue << shift)
        return (base, marked), light_mask

    def _state_of(self, codes: int, v: int) -> int:
        return (codes >> (2 * v)) & 3

    def _with_state(self, codes: int, v: int, st: int) -> int:
        shift = 2 * v
        return (codes & ~(3 << shift)) | (st << shift)

    def is_goal(self, state: Tuple[int, int]) -> bool:
        codes, marked = state
        if marked != self.all_edges_mask:
            return False
        for v in self.sinks:
            st = self._state_of(codes, v)
            if st != int(PRBPState.BLUE) and st != int(PRBPState.BLUE_LIGHT_RED):
                return False
        return True

    def heuristic(self, state: Tuple[int, int]) -> int:
        codes, marked = state
        NONE = int(PRBPState.NONE)
        DARK = int(PRBPState.DARK_RED)
        BLUE = int(PRBPState.BLUE)
        h = 0
        for v in range(self.n):
            st = (codes >> (2 * v)) & 3
            if self.is_sink[v]:
                if st == NONE or st == DARK:
                    h += 1  # a save of this sink is still pending
            if st == BLUE and ((self.out_edge_mask[v] | self.in_edge_mask[v]) & ~marked):
                # a blue node with an unmarked incident edge must be loaded
                # again: marking an out-edge needs v red, and marking an
                # in-edge needs v's partial value back in fast memory
                h += 1
        return h

    def _red_count(self, codes: int) -> int:
        cnt = 0
        for v in range(self.n):
            st = (codes >> (2 * v)) & 3
            if st == int(PRBPState.BLUE_LIGHT_RED) or st == int(PRBPState.DARK_RED):
                cnt += 1
        return cnt

    def _deletable(self, codes: int, marked: int) -> List[Tuple[int, int]]:
        """Red pebbles that may be deleted right now, as ``(node, resulting state)`` pairs."""
        out: List[Tuple[int, int]] = []
        for v in range(self.n):
            st = (codes >> (2 * v)) & 3
            if st == int(PRBPState.BLUE_LIGHT_RED):
                out.append((v, int(PRBPState.BLUE)))
            elif st == int(PRBPState.DARK_RED):
                # A dark sink still needs its save; deleting it would lose the
                # value for good (its in-edges are marked, so it can never be
                # recomputed) — never generate that dead end.
                if (
                    self.variant.allow_delete
                    and not self.is_sink[v]
                    and (self.out_edge_mask[v] & ~marked) == 0
                    and (self.in_edge_mask[v] & ~marked) == 0
                ):
                    out.append((v, int(PRBPState.NONE)))
        return out

    def successors(
        self, state: Tuple[int, int]
    ) -> Iterator[Tuple[Tuple[int, int], float, Tuple[PRBPMove, ...]]]:
        codes, marked = state
        red_count = self._red_count(codes)
        at_capacity = red_count >= self.r
        deletable = self._deletable(codes, marked)
        compute_cost = self.variant.compute_cost

        DARK = int(PRBPState.DARK_RED)
        LIGHT = int(PRBPState.BLUE_LIGHT_RED)
        BLUE = int(PRBPState.BLUE)
        NONE = int(PRBPState.NONE)

        for v in range(self.n):
            st = (codes >> (2 * v)) & 3

            # ---- save -------------------------------------------------- #
            if st == DARK:
                # Without the delete rule for dark red pebbles (no-deletion
                # variant) a save may be needed purely to free the slot.
                useful = (
                    self.is_sink[v]
                    or bool(self.out_edge_mask[v] & ~marked)
                    or not self.variant.allow_delete
                )
                if useful:
                    yield (
                        (self._with_state(codes, v, LIGHT), marked),
                        1.0,
                        (PRBPMove(MoveKind.SAVE, node=v),),
                    )

            # ---- load -------------------------------------------------- #
            if st == BLUE:
                needs_more_inputs = bool(self.in_edge_mask[v] & ~marked)
                feeds_someone = bool(self.out_edge_mask[v] & ~marked)
                if needs_more_inputs or feeds_someone:
                    if not at_capacity:
                        yield (
                            (self._with_state(codes, v, LIGHT), marked),
                            1.0,
                            (PRBPMove(MoveKind.LOAD, node=v),),
                        )
                    else:
                        for d, dst in deletable:
                            if d == v:
                                continue
                            new_codes = self._with_state(codes, d, dst)
                            new_codes = self._with_state(new_codes, v, LIGHT)
                            yield (
                                (new_codes, marked),
                                1.0,
                                (
                                    PRBPMove(MoveKind.DELETE, node=d),
                                    PRBPMove(MoveKind.LOAD, node=v),
                                ),
                            )

        # ---- partial computes ------------------------------------------ #
        for eid in _bits(self.all_edges_mask & ~marked):
            u, v = self.edges[eid]
            stu = (codes >> (2 * u)) & 3
            if stu != DARK and stu != LIGHT:
                continue
            if self.in_edge_mask[u] & ~marked:
                continue  # u not fully computed yet
            stv = (codes >> (2 * v)) & 3
            if stv == BLUE:
                continue  # v's partial value must first be loaded
            new_marked = marked | (1 << eid)
            cost = float(compute_cost)
            if cost and self.variant.split_compute_cost:
                cost /= self.dag.in_degree(v)
            if stv == NONE:
                if not at_capacity:
                    yield (
                        (self._with_state(codes, v, DARK), new_marked),
                        cost,
                        (PRBPMove(MoveKind.COMPUTE, edge=(u, v)),),
                    )
                else:
                    for d, dst in deletable:
                        if d == u or d == v:
                            continue
                        new_codes = self._with_state(codes, d, dst)
                        new_codes = self._with_state(new_codes, v, DARK)
                        yield (
                            (new_codes, new_marked),
                            cost,
                            (
                                PRBPMove(MoveKind.DELETE, node=d),
                                PRBPMove(MoveKind.COMPUTE, edge=(u, v)),
                            ),
                        )
            else:
                yield (
                    (self._with_state(codes, v, DARK), new_marked),
                    cost,
                    (PRBPMove(MoveKind.COMPUTE, edge=(u, v)),),
                )


def _astar(search, max_states: int):
    """Generic A* driver shared by the RBP and PRBP searches.

    Heap entries are ``(f, -g, tie, state)`` — among equal f-values the
    deeper state pops first, which matters once the root bound floors a
    whole plateau of f-values at the optimum.  Dominance pruning consults a
    per-key transposition table of ``(mask, g)`` pairs of already-expanded
    states; a popped state whose mask is a subset of a recorded one at
    equal-or-lower g is skipped without expansion (and without counting
    against the state budget).

    Telemetry (expanded states, frontier peak, dominance prunes) is
    published through :func:`last_search_telemetry` whether the search
    succeeds, runs out of budget, or exhausts the space — the counters are
    part of the cost model the benchmark suite tracks, not just a success
    statistic.
    """
    run_id = next(_run_ids)
    root = search.root_bound
    start = search.initial()
    dist: Dict = {start: 0.0}
    parent: Dict = {start: None}
    tie = count()
    heap = [(max(search.heuristic(start), root), 0.0, -next(tie), start)]
    expanded = 0
    pruned = 0
    frontier_peak = 1
    completed = False
    dom_table: Dict = {}
    try:
        while heap:
            f, neg_g, _, state = heapq.heappop(heap)
            g = -neg_g
            if g > dist.get(state, float("inf")):
                continue
            if search.is_goal(state):
                completed = True
                return g, state, parent
            dom = search.dominance(state)
            if dom is not None:
                key, mask = dom
                entries = dom_table.setdefault(key, [])
                dominated = False
                for mask0, g0 in entries:
                    if g0 <= g + 1e-12 and (mask | mask0) == mask0:
                        dominated = True
                        break
                if dominated:
                    pruned += 1
                    continue
                # the new entry may in turn dominate recorded ones; drop them
                entries[:] = [
                    (mask0, g0)
                    for mask0, g0 in entries
                    if not ((mask0 | mask) == mask and g <= g0 + 1e-12)
                ]
                entries.append((mask, g))
            expanded += 1
            if expanded > max_states:
                raise SolverError(
                    f"exhaustive search exceeded the state budget of {max_states} expanded states; "
                    "the instance is too large for an exact solution"
                )
            for new_state, cost, moves in search.successors(state):
                ng = g + cost
                if ng < dist.get(new_state, float("inf")) - 1e-12:
                    dist[new_state] = ng
                    parent[new_state] = (state, moves)
                    nf = ng + search.heuristic(new_state)
                    if nf < root:
                        nf = root
                    heapq.heappush(heap, (nf, -ng, -next(tie), new_state))
            if len(heap) > frontier_peak:
                frontier_peak = len(heap)
        raise SolverError("the search space was exhausted without reaching a terminal configuration")
    finally:
        _telemetry_store.last = SearchTelemetry(
            run_id=run_id,
            expanded=expanded,
            frontier_peak=frontier_peak,
            completed=completed,
            dominated_pruned=pruned,
        )


def _reconstruct(parent: Dict, goal) -> List:
    moves: List = []
    cur = goal
    while parent[cur] is not None:
        prev, mvs = parent[cur]
        moves.extend(reversed(mvs))
        cur = prev
    moves.reverse()
    return moves


def optimal_rbp_schedule(
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant = ONE_SHOT,
    max_states: int = DEFAULT_MAX_STATES,
) -> RBPSchedule:
    """Compute an optimal RBP schedule by exhaustive search (small DAGs only).

    Raises :class:`~repro.core.exceptions.SolverError` if no valid pebbling
    exists for the given ``r`` or if the state budget is exceeded.
    """
    search = _RBPSearch(dag, r, variant, max_states)
    cost, goal, parent = _astar(search, max_states)
    moves = _reconstruct(parent, goal)
    schedule = RBPSchedule(dag, r, moves, variant=variant, description="exhaustive optimum")
    schedule.validate()
    return schedule


def optimal_rbp_cost(
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant = ONE_SHOT,
    max_states: int = DEFAULT_MAX_STATES,
) -> int:
    """``OPT_RBP(dag, r)`` computed by exhaustive search (small DAGs only)."""
    return optimal_rbp_schedule(dag, r, variant=variant, max_states=max_states).cost()


def optimal_prbp_schedule(
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant = ONE_SHOT,
    max_states: int = DEFAULT_MAX_STATES,
) -> PRBPSchedule:
    """Compute an optimal PRBP schedule by exhaustive search (small DAGs only).

    Only the one-shot variant is supported; see
    :mod:`repro.solvers.structured` and :mod:`repro.solvers.greedy` for
    strategies on larger instances.
    """
    search = _PRBPSearch(dag, r, variant, max_states)
    cost, goal, parent = _astar(search, max_states)
    moves = _reconstruct(parent, goal)
    schedule = PRBPSchedule(dag, r, moves, variant=variant, description="exhaustive optimum")
    schedule.validate()
    return schedule


def optimal_prbp_cost(
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant = ONE_SHOT,
    max_states: int = DEFAULT_MAX_STATES,
) -> int:
    """``OPT_PRBP(dag, r)`` computed by exhaustive search (small DAGs only)."""
    return optimal_prbp_schedule(dag, r, variant=variant, max_states=max_states).cost()
