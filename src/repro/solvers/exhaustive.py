"""Exact optimal pebbling via A* search over game configurations.

Computing ``OPT_RBP`` and ``OPT_PRBP`` is NP-hard (and hard to approximate,
Theorem 7.1), so exact solvers can only target small DAGs — which is exactly
what the paper's examples need: the Figure 1 gadget, small trees, small
zipper and collection gadgets, and the DAG families at toy sizes.  The
solvers here are used by the test-suite and the benchmarks to *verify* that
the structured strategies and the closed-form costs of the propositions are
actually optimal.

Search formulation
------------------
A configuration is the complete game state:

* RBP:  ``(red set, blue set, computed set)`` — three bitmasks;
* PRBP: ``(per-node pebble state, marked-edge set)`` — a 2-bit-per-node code
  and an edge bitmask.

Moves are grouped into *macro moves* in a cost-preserving normal form:

* **Deferred deletes.**  Delete moves are free and their legality is
  monotone in time (a light red pebble can always be deleted; a dark red
  pebble becomes deletable once all its out-edges are marked, and marks are
  never removed in the one-shot game), and keeping a pebble never disables a
  later move except through the capacity bound, which is only checked when a
  pebble is *added*.  Hence every strategy can be normalised so that deletes
  happen immediately before the load/compute that needs the freed slot.  The
  solver therefore only branches over "delete one pebble + add one pebble"
  pairs when the configuration is at capacity.
* **Useless-move elimination.**  Loads of values that can never be used
  again, saves of values that are already up to date in slow memory, and
  saves of values that are never needed again are never part of a minimal
  strategy and are not generated.

The search is A* with the admissible (not necessarily consistent) heuristic
"number of unsaved sinks plus number of sources that still have to be
re-loaded"; both terms count distinct, unavoidable future I/O operations.
States are re-opened when a cheaper path is found, so inconsistency only
costs re-expansions, never optimality.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from itertools import count
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.dag import ComputationalDAG
from ..core.exceptions import SolverError
from ..core.moves import MoveKind, PRBPMove, RBPMove
from ..core.pebbles import PRBPState
from ..core.strategy import PRBPSchedule, RBPSchedule
from ..core.variants import ONE_SHOT, GameVariant

__all__ = [
    "optimal_rbp_schedule",
    "optimal_rbp_cost",
    "optimal_prbp_schedule",
    "optimal_prbp_cost",
    "DEFAULT_MAX_STATES",
    "SearchTelemetry",
    "last_search_telemetry",
]

#: Default cap on the number of distinct configurations the solvers may expand.
DEFAULT_MAX_STATES = 2_000_000


@dataclass(frozen=True)
class SearchTelemetry:
    """Counters of the most recent A* run (successful or aborted).

    ``run_id`` increases with every search, so callers that wrap a solver
    invocation can tell whether the search actually ran in between (the
    greedy and structured solvers never touch it).
    """

    run_id: int
    expanded: int
    frontier_peak: int
    completed: bool


# Telemetry is published per thread: a concurrent solve() in another thread
# must never see (and misattribute) this thread's search counters.
_telemetry_store = threading.local()
_run_ids = count(1)


def last_search_telemetry() -> Optional[SearchTelemetry]:
    """Counters of the calling thread's most recent exhaustive search.

    ``None`` before any search ran on this thread.
    """
    return getattr(_telemetry_store, "last", None)


def _popcount(x: int) -> int:
    return bin(x).count("1")


def _bits(x: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``x`` in increasing order."""
    while x:
        low = x & -x
        yield low.bit_length() - 1
        x ^= low


# --------------------------------------------------------------------------- #
# RBP
# --------------------------------------------------------------------------- #


class _RBPSearch:
    """A* search for the optimal RBP pebbling of a small DAG."""

    def __init__(self, dag: ComputationalDAG, r: int, variant: GameVariant, max_states: int):
        self.dag = dag
        self.r = r
        self.variant = variant
        self.max_states = max_states
        self.n = dag.n
        self.source_mask = sum(1 << v for v in dag.sources)
        self.sink_mask = sum(1 << v for v in dag.sinks)
        self.pred_mask = [sum(1 << u for u in dag.predecessors(v)) for v in range(self.n)]
        self.succ_mask = [sum(1 << w for w in dag.successors(v)) for v in range(self.n)]
        self.is_source = [dag.is_source(v) for v in range(self.n)]
        self.is_sink = [dag.is_sink(v) for v in range(self.n)]
        if not variant.allow_sliding and r < dag.max_in_degree + 1:
            raise SolverError(
                f"no valid RBP pebbling exists: r = {r} < max in-degree + 1 = {dag.max_in_degree + 1}"
            )
        if variant.allow_sliding and r < dag.max_in_degree:
            raise SolverError(
                f"no valid sliding-RBP pebbling exists: r = {r} < max in-degree = {dag.max_in_degree}"
            )

    # state = (red, blue, computed) bitmask triple

    def initial(self) -> Tuple[int, int, int]:
        return (0, self.source_mask, 0)

    def is_goal(self, state: Tuple[int, int, int]) -> bool:
        return (state[1] & self.sink_mask) == self.sink_mask

    def heuristic(self, state: Tuple[int, int, int]) -> int:
        red, blue, computed = state
        h = _popcount(self.sink_mask & ~blue)
        for s in _bits(self.source_mask & ~red):
            # a source that still has an uncomputed successor must be (re)loaded
            if self.succ_mask[s] & ~computed:
                h += 1
        return h

    def successors(
        self, state: Tuple[int, int, int]
    ) -> Iterator[Tuple[Tuple[int, int, int], float, Tuple[RBPMove, ...]]]:
        red, blue, computed = state
        red_count = _popcount(red)
        at_capacity = red_count >= self.r
        one_shot = self.variant.one_shot
        allow_delete = self.variant.allow_delete
        compute_cost = self.variant.compute_cost

        # deletable red pebbles (for deferred deletes); in the no-deletion
        # variant nothing can be deleted.
        deletable = list(_bits(red)) if allow_delete else []

        for v in range(self.n):
            bit = 1 << v
            in_red = bool(red & bit)
            in_blue = bool(blue & bit)

            # ---- save -------------------------------------------------- #
            # In the no-deletion variant a save is also the only way to free a
            # fast-memory slot, so it is generated even when it looks useless
            # (and even when the node is already blue).
            if in_red and (not in_blue or not allow_delete):
                useful = True
                if (
                    allow_delete
                    and one_shot
                    and not self.is_sink[v]
                    and not (self.succ_mask[v] & ~computed)
                ):
                    useful = False  # value can never be needed again
                if useful:
                    new_red = red if allow_delete else red & ~bit
                    yield (new_red, blue | bit, computed), 1.0, (RBPMove(MoveKind.SAVE, v),)

            # ---- load -------------------------------------------------- #
            if in_blue and not in_red:
                useful = bool(self.succ_mask[v] & ~computed) if one_shot else bool(self.succ_mask[v])
                if useful:
                    if not at_capacity:
                        yield (red | bit, blue, computed), 1.0, (RBPMove(MoveKind.LOAD, v),)
                    else:
                        for d in deletable:
                            dbit = 1 << d
                            yield (
                                ((red & ~dbit) | bit, blue, computed),
                                1.0,
                                (RBPMove(MoveKind.DELETE, d), RBPMove(MoveKind.LOAD, v)),
                            )

            # ---- compute ----------------------------------------------- #
            if not self.is_source[v] and not in_red:
                if one_shot and (computed & bit):
                    continue
                if (red & self.pred_mask[v]) != self.pred_mask[v]:
                    continue
                cost = float(compute_cost)
                if self.variant.allow_sliding:
                    for u in _bits(self.pred_mask[v]):
                        ubit = 1 << u
                        yield (
                            ((red & ~ubit) | bit, blue, computed | bit),
                            cost,
                            (RBPMove(MoveKind.COMPUTE, v, slide_from=u),),
                        )
                if not at_capacity:
                    yield (red | bit, blue, computed | bit), cost, (RBPMove(MoveKind.COMPUTE, v),)
                else:
                    for d in deletable:
                        dbit = 1 << d
                        if dbit & self.pred_mask[v]:
                            continue  # deleting an input would make the compute illegal
                        yield (
                            ((red & ~dbit) | bit, blue, computed | bit),
                            cost,
                            (RBPMove(MoveKind.DELETE, d), RBPMove(MoveKind.COMPUTE, v)),
                        )


class _PRBPSearch:
    """A* search for the optimal (one-shot) PRBP pebbling of a small DAG."""

    def __init__(self, dag: ComputationalDAG, r: int, variant: GameVariant, max_states: int):
        if not variant.one_shot:
            raise SolverError("the exhaustive PRBP solver only supports the one-shot variant")
        if variant.allow_sliding:
            raise SolverError("the sliding rule does not exist in PRBP")
        self.dag = dag
        self.r = r
        self.variant = variant
        self.max_states = max_states
        self.n = dag.n
        self.m = dag.m
        self.edges = dag.edges
        self.in_edge_ids = [
            [dag.edge_id(u, v) for u in dag.predecessors(v)] for v in range(self.n)
        ]
        self.out_edge_ids = [
            [dag.edge_id(v, w) for w in dag.successors(v)] for v in range(self.n)
        ]
        self.in_edge_mask = [sum(1 << e for e in self.in_edge_ids[v]) for v in range(self.n)]
        self.out_edge_mask = [sum(1 << e for e in self.out_edge_ids[v]) for v in range(self.n)]
        self.is_source = [dag.is_source(v) for v in range(self.n)]
        self.is_sink = [dag.is_sink(v) for v in range(self.n)]
        self.sinks = list(dag.sinks)
        self.sources = list(dag.sources)
        self.all_edges_mask = (1 << self.m) - 1
        if r < 2 and dag.max_in_degree >= 1:
            raise SolverError(
                f"no valid PRBP pebbling exists for r = {r} < 2 on a DAG with edges"
            )

    # state = (codes, marked) where codes packs 2 bits per node

    def initial(self) -> Tuple[int, int]:
        codes = 0
        for v in self.sources:
            codes |= int(PRBPState.BLUE) << (2 * v)
        return (codes, 0)

    def _state_of(self, codes: int, v: int) -> int:
        return (codes >> (2 * v)) & 3

    def _with_state(self, codes: int, v: int, st: int) -> int:
        shift = 2 * v
        return (codes & ~(3 << shift)) | (st << shift)

    def is_goal(self, state: Tuple[int, int]) -> bool:
        codes, marked = state
        if marked != self.all_edges_mask:
            return False
        for v in self.sinks:
            st = self._state_of(codes, v)
            if st != int(PRBPState.BLUE) and st != int(PRBPState.BLUE_LIGHT_RED):
                return False
        return True

    def heuristic(self, state: Tuple[int, int]) -> int:
        codes, marked = state
        h = 0
        for v in self.sinks:
            st = self._state_of(codes, v)
            if st == int(PRBPState.NONE) or st == int(PRBPState.DARK_RED):
                h += 1  # a save of this sink is still pending
        for s in self.sources:
            st = self._state_of(codes, s)
            if st == int(PRBPState.BLUE) and (self.out_edge_mask[s] & ~marked):
                h += 1  # the source must be loaded again to mark its remaining out-edges
        return h

    def _red_count(self, codes: int) -> int:
        cnt = 0
        for v in range(self.n):
            st = (codes >> (2 * v)) & 3
            if st == int(PRBPState.BLUE_LIGHT_RED) or st == int(PRBPState.DARK_RED):
                cnt += 1
        return cnt

    def _deletable(self, codes: int, marked: int) -> List[Tuple[int, int]]:
        """Red pebbles that may be deleted right now, as ``(node, resulting state)`` pairs."""
        out: List[Tuple[int, int]] = []
        for v in range(self.n):
            st = (codes >> (2 * v)) & 3
            if st == int(PRBPState.BLUE_LIGHT_RED):
                out.append((v, int(PRBPState.BLUE)))
            elif st == int(PRBPState.DARK_RED):
                if (
                    self.variant.allow_delete
                    and (self.out_edge_mask[v] & ~marked) == 0
                    and (self.in_edge_mask[v] & ~marked) == 0
                ):
                    out.append((v, int(PRBPState.NONE)))
        return out

    def successors(
        self, state: Tuple[int, int]
    ) -> Iterator[Tuple[Tuple[int, int], float, Tuple[PRBPMove, ...]]]:
        codes, marked = state
        red_count = self._red_count(codes)
        at_capacity = red_count >= self.r
        deletable = self._deletable(codes, marked)
        compute_cost = self.variant.compute_cost

        DARK = int(PRBPState.DARK_RED)
        LIGHT = int(PRBPState.BLUE_LIGHT_RED)
        BLUE = int(PRBPState.BLUE)
        NONE = int(PRBPState.NONE)

        for v in range(self.n):
            st = (codes >> (2 * v)) & 3

            # ---- save -------------------------------------------------- #
            if st == DARK:
                # Without the delete rule for dark red pebbles (no-deletion
                # variant) a save may be needed purely to free the slot.
                useful = (
                    self.is_sink[v]
                    or bool(self.out_edge_mask[v] & ~marked)
                    or not self.variant.allow_delete
                )
                if useful:
                    yield (
                        (self._with_state(codes, v, LIGHT), marked),
                        1.0,
                        (PRBPMove(MoveKind.SAVE, node=v),),
                    )

            # ---- load -------------------------------------------------- #
            if st == BLUE:
                needs_more_inputs = bool(self.in_edge_mask[v] & ~marked)
                feeds_someone = bool(self.out_edge_mask[v] & ~marked)
                if needs_more_inputs or feeds_someone:
                    if not at_capacity:
                        yield (
                            (self._with_state(codes, v, LIGHT), marked),
                            1.0,
                            (PRBPMove(MoveKind.LOAD, node=v),),
                        )
                    else:
                        for d, dst in deletable:
                            if d == v:
                                continue
                            new_codes = self._with_state(codes, d, dst)
                            new_codes = self._with_state(new_codes, v, LIGHT)
                            yield (
                                (new_codes, marked),
                                1.0,
                                (
                                    PRBPMove(MoveKind.DELETE, node=d),
                                    PRBPMove(MoveKind.LOAD, node=v),
                                ),
                            )

        # ---- partial computes ------------------------------------------ #
        for eid in _bits(self.all_edges_mask & ~marked):
            u, v = self.edges[eid]
            stu = (codes >> (2 * u)) & 3
            if stu != DARK and stu != LIGHT:
                continue
            if self.in_edge_mask[u] & ~marked:
                continue  # u not fully computed yet
            stv = (codes >> (2 * v)) & 3
            if stv == BLUE:
                continue  # v's partial value must first be loaded
            new_marked = marked | (1 << eid)
            cost = float(compute_cost)
            if cost and self.variant.split_compute_cost:
                cost /= self.dag.in_degree(v)
            if stv == NONE:
                if not at_capacity:
                    yield (
                        (self._with_state(codes, v, DARK), new_marked),
                        cost,
                        (PRBPMove(MoveKind.COMPUTE, edge=(u, v)),),
                    )
                else:
                    for d, dst in deletable:
                        if d == u or d == v:
                            continue
                        new_codes = self._with_state(codes, d, dst)
                        new_codes = self._with_state(new_codes, v, DARK)
                        yield (
                            (new_codes, new_marked),
                            cost,
                            (
                                PRBPMove(MoveKind.DELETE, node=d),
                                PRBPMove(MoveKind.COMPUTE, edge=(u, v)),
                            ),
                        )
            else:
                yield (
                    (self._with_state(codes, v, DARK), new_marked),
                    cost,
                    (PRBPMove(MoveKind.COMPUTE, edge=(u, v)),),
                )


def _astar(search, max_states: int):
    """Generic A* driver shared by the RBP and PRBP searches.

    Telemetry (expanded states, frontier peak) is published through
    :func:`last_search_telemetry` whether the search succeeds, runs out of
    budget, or exhausts the space — the counters are part of the cost model
    the benchmark suite tracks, not just a success statistic.
    """
    run_id = next(_run_ids)
    start = search.initial()
    dist: Dict = {start: 0.0}
    parent: Dict = {start: None}
    tie = count()
    heap = [(search.heuristic(start), 0.0, next(tie), start)]
    expanded = 0
    frontier_peak = 1
    completed = False
    try:
        while heap:
            f, g, _, state = heapq.heappop(heap)
            if g > dist.get(state, float("inf")):
                continue
            if search.is_goal(state):
                completed = True
                return g, state, parent
            expanded += 1
            if expanded > max_states:
                raise SolverError(
                    f"exhaustive search exceeded the state budget of {max_states} expanded states; "
                    "the instance is too large for an exact solution"
                )
            for new_state, cost, moves in search.successors(state):
                ng = g + cost
                if ng < dist.get(new_state, float("inf")) - 1e-12:
                    dist[new_state] = ng
                    parent[new_state] = (state, moves)
                    heapq.heappush(
                        heap, (ng + search.heuristic(new_state), ng, next(tie), new_state)
                    )
            if len(heap) > frontier_peak:
                frontier_peak = len(heap)
        raise SolverError("the search space was exhausted without reaching a terminal configuration")
    finally:
        _telemetry_store.last = SearchTelemetry(
            run_id=run_id,
            expanded=expanded,
            frontier_peak=frontier_peak,
            completed=completed,
        )


def _reconstruct(parent: Dict, goal) -> List:
    moves: List = []
    cur = goal
    while parent[cur] is not None:
        prev, mvs = parent[cur]
        moves.extend(reversed(mvs))
        cur = prev
    moves.reverse()
    return moves


def optimal_rbp_schedule(
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant = ONE_SHOT,
    max_states: int = DEFAULT_MAX_STATES,
) -> RBPSchedule:
    """Compute an optimal RBP schedule by exhaustive search (small DAGs only).

    Raises :class:`~repro.core.exceptions.SolverError` if no valid pebbling
    exists for the given ``r`` or if the state budget is exceeded.
    """
    search = _RBPSearch(dag, r, variant, max_states)
    cost, goal, parent = _astar(search, max_states)
    moves = _reconstruct(parent, goal)
    schedule = RBPSchedule(dag, r, moves, variant=variant, description="exhaustive optimum")
    schedule.validate()
    return schedule


def optimal_rbp_cost(
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant = ONE_SHOT,
    max_states: int = DEFAULT_MAX_STATES,
) -> int:
    """``OPT_RBP(dag, r)`` computed by exhaustive search (small DAGs only)."""
    return optimal_rbp_schedule(dag, r, variant=variant, max_states=max_states).cost()


def optimal_prbp_schedule(
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant = ONE_SHOT,
    max_states: int = DEFAULT_MAX_STATES,
) -> PRBPSchedule:
    """Compute an optimal PRBP schedule by exhaustive search (small DAGs only).

    Only the one-shot variant is supported; see
    :mod:`repro.solvers.structured` and :mod:`repro.solvers.greedy` for
    strategies on larger instances.
    """
    search = _PRBPSearch(dag, r, variant, max_states)
    cost, goal, parent = _astar(search, max_states)
    moves = _reconstruct(parent, goal)
    schedule = PRBPSchedule(dag, r, moves, variant=variant, description="exhaustive optimum")
    schedule.validate()
    return schedule


def optimal_prbp_cost(
    dag: ComputationalDAG,
    r: int,
    variant: GameVariant = ONE_SHOT,
    max_states: int = DEFAULT_MAX_STATES,
) -> int:
    """``OPT_PRBP(dag, r)`` computed by exhaustive search (small DAGs only)."""
    return optimal_prbp_schedule(dag, r, variant=variant, max_states=max_states).cost()
