"""Structured pebbling strategies: the explicit constructions analysed in the paper.

Every function here emits an *explicit move list* for a specific DAG family
and immediately replays it through the corresponding engine, so the returned
schedule is guaranteed to be legal and its cost is the cost of an actual
pebbling.  The families and the costs they achieve:

=========================================  =============================================
strategy                                    paper reference / achieved cost
=========================================  =============================================
:func:`figure1_prbp_schedule`               Prop. 4.2 / App. A.1 — cost 2 at r = 4
:func:`figure1_rbp_schedule`                Prop. 4.2 / App. A.1 — cost 3 at r = 4
:func:`chained_gadget_prbp_schedule`        Prop. 4.7 — cost 2 at r = 4 for any number of copies
:func:`matvec_prbp_schedule`                Prop. 4.3 — cost m² + 2m at r = m + 3
:func:`zipper_prbp_schedule`                Prop. 4.4 — ≈ 2 I/O per chain node at r = d + 2
:func:`zipper_rbp_schedule`                 Prop. 4.4 — d I/O per chain node at r = d + 2
:func:`tree_rbp_schedule`                   Prop. 4.5 / App. A.2 — k^d + 2k^{d-1} − 1 at r = k + 1
:func:`tree_prbp_schedule`                  Prop. 4.5 / App. A.2 — k^d + 2k^{d-k} − 1 at r = k + 1
:func:`collection_full_rbp_schedule`        Prop. 4.6 — trivial cost with d + 2 pebbles
:func:`collection_full_prbp_schedule`       Prop. 4.6 — trivial cost with d + 2 pebbles
:func:`fanin_groups_prbp_schedule`          Lemma 5.4 — trivial cost at r = 3
:func:`fft_blocked_rbp_schedule`            Thm. 6.9 — O(m·log m / log r) upper bound
:func:`matmul_tiled_prbp_schedule`          Thm. 6.10 — O(m1·m2·m3 / √r) upper bound
:func:`attention_flash_prbp_schedule`       Thm. 6.11 — O(m²·d²/r) non-trivial I/O in the large-cache regime
=========================================  =============================================
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..core.exceptions import SolverError
from ..core.moves import MoveKind, PRBPMove, RBPMove
from ..core.strategy import PRBPSchedule, RBPSchedule
from ..dags.attention import AttentionInstance, attention_instance
from ..dags.fanin import FanInGroupsInstance, fanin_groups_instance
from ..dags.fft import FFTInstance, fft_instance
from ..dags.gadgets import (
    ChainedGadgetInstance,
    Figure1Instance,
    PebbleCollectionInstance,
    ZipperInstance,
    chained_gadget_instance,
    figure1_instance,
    pebble_collection_instance,
    zipper_instance,
)
from ..dags.linalg import MatMulInstance, MatVecInstance, matmul_instance, matvec_instance
from ..dags.trees import TreeInstance, kary_tree_instance

__all__ = [
    "FIGURE1_MIN_R",
    "CHAINED_GADGET_MIN_R",
    "FANIN_MIN_R",
    "FFT_MIN_R",
    "MATMUL_MIN_R",
    "matvec_min_r",
    "zipper_min_r",
    "tree_min_r",
    "collection_min_r",
    "attention_min_r",
    "figure1_prbp_schedule",
    "figure1_rbp_schedule",
    "chained_gadget_prbp_schedule",
    "matvec_prbp_schedule",
    "zipper_prbp_schedule",
    "zipper_rbp_schedule",
    "tree_rbp_schedule",
    "tree_prbp_schedule",
    "collection_full_rbp_schedule",
    "collection_full_prbp_schedule",
    "fanin_groups_prbp_schedule",
    "fft_blocked_rbp_schedule",
    "fft_blocked_prbp_schedule",
    "matmul_tiled_prbp_schedule",
    "attention_flash_prbp_schedule",
]


def _load(v: int) -> PRBPMove:
    return PRBPMove(MoveKind.LOAD, node=v)


def _save(v: int) -> PRBPMove:
    return PRBPMove(MoveKind.SAVE, node=v)


def _comp(u: int, v: int) -> PRBPMove:
    return PRBPMove(MoveKind.COMPUTE, edge=(u, v))


def _dele(v: int) -> PRBPMove:
    return PRBPMove(MoveKind.DELETE, node=v)


def _resolve_capacity(r: Optional[int], minimum: int, strategy: str) -> int:
    """Uniform capacity policy shared by every structured strategy.

    ``r=None`` resolves to the family's minimum feasible capacity; an explicit
    ``r`` below that minimum raises :class:`SolverError` so a caller can never
    obtain a schedule whose cost silently belongs to a different cache size.
    """
    if r is None:
        return minimum
    if r < minimum:
        raise SolverError(f"the {strategy} needs r >= {minimum}, got r = {r}")
    return r


# Minimum feasible capacities of the structured strategies — the single source
# of truth shared with the solver adapters in :mod:`repro.api.adapters`.
FIGURE1_MIN_R = 4
CHAINED_GADGET_MIN_R = 4
FANIN_MIN_R = 3
FFT_MIN_R = 4
MATMUL_MIN_R = 4


def matvec_min_r(m: int) -> int:
    """Minimum capacity of the Proposition 4.3 strategy: ``m + 3``."""
    return m + 3


def zipper_min_r(d: int) -> int:
    """Minimum capacity of both zipper strategies: ``d + 2``."""
    return d + 2


def tree_min_r(k: int) -> int:
    """Minimum capacity of both tree strategies: ``k + 1``."""
    return k + 1


def collection_min_r(d: int) -> int:
    """Minimum capacity of both collection strategies: ``d + 2``."""
    return d + 2


def attention_min_r(d: int) -> int:
    """Minimum capacity of the flash-style strategy: ``2d + 3`` (one-row block)."""
    return 2 * d + 3


# --------------------------------------------------------------------------- #
# Figure 1 (Proposition 4.2 / Appendix A.1)
# --------------------------------------------------------------------------- #


def figure1_prbp_schedule(inst: Optional[Figure1Instance] = None, r: Optional[int] = None) -> PRBPSchedule:
    """The Appendix A.1 PRBP strategy for the Figure 1 DAG: 2 I/O steps at ``r = 4``."""
    r = _resolve_capacity(r, FIGURE1_MIN_R, "Appendix A.1 PRBP strategy")
    if inst is None:
        inst = figure1_instance(include_endpoints=True)
    if not inst.include_endpoints or inst.has_z_layer or inst.has_w0:
        raise ValueError("the A.1 strategy targets the plain Figure 1 DAG with endpoints")
    g = inst
    moves = [
        _load(g.u0),
        _comp(g.u0, g.u1),
        _comp(g.u0, g.u2),
        _dele(g.u0),
        _comp(g.u1, g.w1),
        _comp(g.w1, g.w3),
        _dele(g.w1),
        _comp(g.u1, g.w2),
        _comp(g.w2, g.w3),
        _dele(g.w2),
        _comp(g.u1, g.w4),
        _comp(g.w3, g.w4),
        _dele(g.u1),
        _dele(g.w3),
        _comp(g.w4, g.v1),
        _comp(g.w4, g.v2),
        _comp(g.u2, g.v1),
        _comp(g.u2, g.v2),
        _dele(g.w4),
        _dele(g.u2),
        _comp(g.v1, g.v0),
        _comp(g.v2, g.v0),
        _save(g.v0),
    ]
    schedule = PRBPSchedule(g.dag, r, moves, description="Appendix A.1 PRBP strategy")
    schedule.validate()
    return schedule


def figure1_rbp_schedule(inst: Optional[Figure1Instance] = None, r: Optional[int] = None) -> RBPSchedule:
    """The Appendix A.1 RBP strategy for the Figure 1 DAG: 3 I/O steps at ``r = 4``."""
    r = _resolve_capacity(r, FIGURE1_MIN_R, "Appendix A.1 RBP strategy")
    if inst is None:
        inst = figure1_instance(include_endpoints=True)
    if not inst.include_endpoints or inst.has_z_layer or inst.has_w0:
        raise ValueError("the A.1 strategy targets the plain Figure 1 DAG with endpoints")
    g = inst
    L, C, D, S = (
        lambda v: RBPMove(MoveKind.LOAD, v),
        lambda v: RBPMove(MoveKind.COMPUTE, v),
        lambda v: RBPMove(MoveKind.DELETE, v),
        lambda v: RBPMove(MoveKind.SAVE, v),
    )
    moves = [
        L(g.u0),
        C(g.u1),
        D(g.u0),
        C(g.w1),
        C(g.w2),
        C(g.w3),
        D(g.w1),
        D(g.w2),
        C(g.w4),
        D(g.w3),
        D(g.u1),
        L(g.u0),
        C(g.u2),
        D(g.u0),
        C(g.v1),
        C(g.v2),
        D(g.w4),
        D(g.u2),
        C(g.v0),
        S(g.v0),
    ]
    schedule = RBPSchedule(g.dag, r, moves, description="Appendix A.1 RBP strategy")
    schedule.validate()
    return schedule


# --------------------------------------------------------------------------- #
# Chained gadget (Proposition 4.7)
# --------------------------------------------------------------------------- #


def chained_gadget_prbp_schedule(
    inst: Optional[ChainedGadgetInstance] = None, copies: int = 4, r: Optional[int] = None
) -> PRBPSchedule:
    """The Proposition 4.7 PRBP strategy: total cost 2 regardless of the number of copies."""
    if inst is None:
        inst = chained_gadget_instance(copies)
    r = _resolve_capacity(r, CHAINED_GADGET_MIN_R, "Proposition 4.7 strategy")
    moves: List[PRBPMove] = []
    first = inst.gadget_nodes[0]
    moves += [
        _load(inst.u0),
        _comp(inst.u0, first["u1"]),
        _comp(inst.u0, first["u2"]),
        _dele(inst.u0),
    ]
    for g in inst.gadget_nodes:
        u1, u2 = g["u1"], g["u2"]
        w1, w2, w3, w4 = g["w1"], g["w2"], g["w3"], g["w4"]
        v1, v2 = g["v1"], g["v2"]
        moves += [
            _comp(u1, w1),
            _comp(w1, w3),
            _dele(w1),
            _comp(u1, w2),
            _comp(w2, w3),
            _dele(w2),
            _comp(u1, w4),
            _comp(w3, w4),
            _dele(w3),
            _dele(u1),
            _comp(w4, v1),
            _comp(w4, v2),
            _comp(u2, v1),
            _comp(u2, v2),
            _dele(w4),
            _dele(u2),
        ]
    last = inst.gadget_nodes[-1]
    moves += [
        _comp(last["v1"], inst.v0),
        _comp(last["v2"], inst.v0),
        _dele(last["v1"]),
        _dele(last["v2"]),
        _save(inst.v0),
    ]
    schedule = PRBPSchedule(
        inst.dag, r, moves, description=f"Proposition 4.7 PRBP strategy ({inst.copies} copies)"
    )
    schedule.validate()
    return schedule


# --------------------------------------------------------------------------- #
# Matrix–vector multiplication (Proposition 4.3)
# --------------------------------------------------------------------------- #


def matvec_prbp_schedule(inst: Optional[MatVecInstance] = None, m: int = 4, r: Optional[int] = None) -> PRBPSchedule:
    """The Proposition 4.3 PRBP strategy for ``A·x``: trivial cost ``m² + 2m`` at ``r = m + 3``.

    The ``m`` partially computed output entries are kept in fast memory for
    the whole pebbling; the matrix is streamed column by column and every
    entry is read exactly once.
    """
    if inst is None:
        inst = matvec_instance(m)
    m = inst.m
    r = _resolve_capacity(r, matvec_min_r(m), "Proposition 4.3 strategy")
    moves: List[PRBPMove] = []
    for i in range(m):
        xi = inst.x(i)
        moves.append(_load(xi))
        for j in range(m):
            a = inst.a(j, i)
            p = inst.product(j, i)
            moves += [
                _load(a),
                _comp(a, p),
                _comp(xi, p),
                _dele(a),
                _comp(p, inst.y(j)),
                _dele(p),
            ]
        moves.append(_dele(xi))
    for j in range(m):
        moves.append(_save(inst.y(j)))
    schedule = PRBPSchedule(
        inst.dag, r, moves, description="Proposition 4.3 column-streaming PRBP strategy"
    )
    schedule.validate()
    return schedule


# --------------------------------------------------------------------------- #
# Zipper gadget (Proposition 4.4)
# --------------------------------------------------------------------------- #


def zipper_prbp_schedule(inst: Optional[ZipperInstance] = None, d: int = 3, length: int = 8, r: Optional[int] = None) -> PRBPSchedule:
    """The Proposition 4.4 PRBP strategy for the zipper gadget at ``r = d + 2``.

    Phase 1 holds group A and pre-aggregates (and saves) the A-contribution
    of every even chain node; phase 2 holds group B and walks the chain,
    re-loading each pre-aggregated partial value.  Each chain node beyond the
    first costs roughly 2 I/O operations instead of RBP's ``d``.
    """
    if inst is None:
        inst = zipper_instance(d, length)
    d, length = inst.d, inst.length
    r = _resolve_capacity(r, zipper_min_r(d), "zipper PRBP strategy")
    moves: List[PRBPMove] = []
    # phase 1: group A resident, pre-aggregate every even chain node
    for a in inst.group_a:
        moves.append(_load(a))
    for i in range(0, length, 2):
        c = inst.chain[i]
        for a in inst.group_a:
            moves.append(_comp(a, c))
        moves.append(_save(c))
        moves.append(_dele(c))
    for a in inst.group_a:
        moves.append(_dele(a))
    # phase 2: group B resident, walk the chain
    for b in inst.group_b:
        moves.append(_load(b))
    prev = None
    for i in range(length):
        c = inst.chain[i]
        if i % 2 == 0:
            # partial value (all A-edges) is in slow memory
            moves.append(_load(c))
            if prev is not None:
                moves.append(_comp(prev, c))
        else:
            moves.append(_comp(prev, c))
            for b in inst.group_b:
                moves.append(_comp(b, c))
        if prev is not None:
            moves.append(_dele(prev))
        prev = c
    moves.append(_save(prev))
    moves.append(_dele(prev))
    for b in inst.group_b:
        moves.append(_dele(b))
    schedule = PRBPSchedule(
        inst.dag, r, moves, description="Proposition 4.4 two-phase PRBP strategy"
    )
    schedule.validate()
    return schedule


def zipper_rbp_schedule(inst: Optional[ZipperInstance] = None, d: int = 3, length: int = 8, r: Optional[int] = None) -> RBPSchedule:
    """The classic RBP pebbling of the zipper gadget at ``r = d + 2``: ``d`` loads per chain node.

    The strategy alternates the resident source group, reloading all ``d``
    sources of the other group for every chain node.
    """
    if inst is None:
        inst = zipper_instance(d, length)
    d, length = inst.d, inst.length
    r = _resolve_capacity(r, zipper_min_r(d), "zipper RBP strategy")
    L, C, D, S = (
        lambda v: RBPMove(MoveKind.LOAD, v),
        lambda v: RBPMove(MoveKind.COMPUTE, v),
        lambda v: RBPMove(MoveKind.DELETE, v),
        lambda v: RBPMove(MoveKind.SAVE, v),
    )
    moves: List[RBPMove] = []
    prev = None
    resident: Tuple[int, ...] = ()
    for i in range(length):
        c = inst.chain[i]
        group = inst.group_for(i)
        if group != resident:
            for v in resident:
                moves.append(D(v))
            for v in group:
                moves.append(L(v))
            resident = group
        moves.append(C(c))
        if prev is not None:
            moves.append(D(prev))
        prev = c
    moves.append(S(prev))
    schedule = RBPSchedule(
        inst.dag, r, moves, description="alternating-group RBP strategy for the zipper gadget"
    )
    schedule.validate()
    return schedule


# --------------------------------------------------------------------------- #
# k-ary reduction trees (Proposition 4.5 / Appendix A.2)
# --------------------------------------------------------------------------- #


def tree_rbp_schedule(inst: Optional[TreeInstance] = None, k: int = 2, depth: int = 3, r: Optional[int] = None) -> RBPSchedule:
    """The optimal RBP pebbling of a k-ary tree at ``r = k + 1`` (Appendix A.2).

    For every internal node above the leaves' parents, ``k - 1`` of its
    children are saved and re-loaded, giving the closed-form cost
    ``k^d + 2·k^(d-1) - 1``.
    """
    if inst is None:
        inst = kary_tree_instance(k, depth)
    k, depth = inst.k, inst.depth
    r = _resolve_capacity(r, tree_min_r(k), "tree RBP strategy")
    moves: List[RBPMove] = []
    L, C, D, S = (
        lambda v: RBPMove(MoveKind.LOAD, v),
        lambda v: RBPMove(MoveKind.COMPUTE, v),
        lambda v: RBPMove(MoveKind.DELETE, v),
        lambda v: RBPMove(MoveKind.SAVE, v),
    )

    def pebble(level: int, index: int) -> None:
        """Emit moves that end with node ``levels[level][index]`` red and nothing else held."""
        v = inst.levels[level][index]
        if level == depth:
            moves.append(L(v))
            return
        children_indices = list(range(k * index, k * index + k))
        if level == depth - 1:
            # parent of leaves: all children fit simultaneously
            for ci in children_indices:
                moves.append(L(inst.levels[depth][ci]))
            moves.append(C(v))
            for ci in children_indices:
                moves.append(D(inst.levels[depth][ci]))
            return
        # higher node: compute the first k-1 child subtrees, saving each result
        for ci in children_indices[:-1]:
            pebble(level + 1, ci)
            c = inst.levels[level + 1][ci]
            moves.append(S(c))
            moves.append(D(c))
        pebble(level + 1, children_indices[-1])
        for ci in children_indices[:-1]:
            moves.append(L(inst.levels[level + 1][ci]))
        moves.append(C(v))
        for ci in children_indices:
            moves.append(D(inst.levels[level + 1][ci]))

    pebble(0, 0)
    moves.append(S(inst.root))
    schedule = RBPSchedule(
        inst.dag, r, moves, description="Appendix A.2 RBP strategy for k-ary trees"
    )
    schedule.validate()
    return schedule


def tree_prbp_schedule(inst: Optional[TreeInstance] = None, k: int = 2, depth: int = 3, r: Optional[int] = None) -> PRBPSchedule:
    """The optimal PRBP pebbling of a k-ary tree at ``r = k + 1`` (Appendix A.2).

    Subtrees of depth at most ``k`` are computed without any non-trivial I/O
    using partial computations; every node above them costs ``2·(k-1)`` I/O,
    giving the closed-form cost ``k^d + 2·k^(d-k) - 1``.
    """
    if inst is None:
        inst = kary_tree_instance(k, depth)
    k, depth = inst.k, inst.depth
    r = _resolve_capacity(r, tree_min_r(k), "tree PRBP strategy")
    moves: List[PRBPMove] = []

    def pebble_free(level: int, index: int) -> None:
        """Pebble a depth <= k subtree with partial computations only (no I/O beyond leaf loads)."""
        v = inst.levels[level][index]
        if level == depth:
            moves.append(_load(v))
            return
        for ci in range(k * index, k * index + k):
            pebble_free(level + 1, ci)
            c = inst.levels[level + 1][ci]
            moves.append(_comp(c, v))
            moves.append(_dele(c))

    def pebble(level: int, index: int) -> None:
        """Emit moves that end with the node dark red and nothing else held."""
        v = inst.levels[level][index]
        subtree_depth = depth - level
        if subtree_depth <= k:
            pebble_free(level, index)
            return
        children_indices = list(range(k * index, k * index + k))
        # compute the first k-1 children, saving each result to slow memory
        for ci in children_indices[:-1]:
            pebble(level + 1, ci)
            c = inst.levels[level + 1][ci]
            moves.append(_save(c))
            moves.append(_dele(c))
        # compute the last child and aggregate the children one at a time
        pebble(level + 1, children_indices[-1])
        last = inst.levels[level + 1][children_indices[-1]]
        moves.append(_comp(last, v))
        moves.append(_dele(last))
        for ci in children_indices[:-1]:
            c = inst.levels[level + 1][ci]
            moves.append(_load(c))
            moves.append(_comp(c, v))
            moves.append(_dele(c))

    pebble(0, 0)
    moves.append(_save(inst.root))
    moves.append(_dele(inst.root))
    schedule = PRBPSchedule(
        inst.dag, r, moves, description="Appendix A.2 PRBP strategy for k-ary trees"
    )
    schedule.validate()
    return schedule


# --------------------------------------------------------------------------- #
# Pebble collection gadget (Proposition 4.6)
# --------------------------------------------------------------------------- #


def collection_full_rbp_schedule(
    inst: Optional[PebbleCollectionInstance] = None, d: int = 3, length: int = 12, r: Optional[int] = None
) -> RBPSchedule:
    """Pebble the collection gadget with all ``d + 2`` red pebbles: only the trivial cost."""
    if inst is None:
        inst = pebble_collection_instance(d, length)
    d, length = inst.d, inst.length
    r = _resolve_capacity(r, collection_min_r(d), "full-pebble RBP strategy")
    L, C, D, S = (
        lambda v: RBPMove(MoveKind.LOAD, v),
        lambda v: RBPMove(MoveKind.COMPUTE, v),
        lambda v: RBPMove(MoveKind.DELETE, v),
        lambda v: RBPMove(MoveKind.SAVE, v),
    )
    moves: List[RBPMove] = [L(u) for u in inst.sources]
    prev = None
    for i in range(length):
        c = inst.chain[i]
        moves.append(C(c))
        if prev is not None:
            moves.append(D(prev))
        prev = c
    moves.append(S(prev))
    schedule = RBPSchedule(
        inst.dag, r, moves, description="full-pebble RBP strategy for the collection gadget"
    )
    schedule.validate()
    return schedule


def collection_full_prbp_schedule(
    inst: Optional[PebbleCollectionInstance] = None, d: int = 3, length: int = 12, r: Optional[int] = None
) -> PRBPSchedule:
    """Pebble the collection gadget in PRBP with all ``d + 2`` red pebbles: only the trivial cost."""
    if inst is None:
        inst = pebble_collection_instance(d, length)
    d, length = inst.d, inst.length
    r = _resolve_capacity(r, collection_min_r(d), "full-pebble PRBP strategy")
    moves: List[PRBPMove] = [_load(u) for u in inst.sources]
    prev = None
    for i in range(length):
        c = inst.chain[i]
        if prev is not None:
            moves.append(_comp(prev, c))
            moves.append(_dele(prev))
        moves.append(_comp(inst.source_for(i), c))
        prev = c
    moves.append(_save(prev))
    moves.append(_dele(prev))
    for u in inst.sources:
        moves.append(_dele(u))
    schedule = PRBPSchedule(
        inst.dag, r, moves, description="full-pebble PRBP strategy for the collection gadget"
    )
    schedule.validate()
    return schedule


# --------------------------------------------------------------------------- #
# Lemma 5.4 fan-in construction
# --------------------------------------------------------------------------- #


def fanin_groups_prbp_schedule(
    inst: Optional[FanInGroupsInstance] = None, num_groups: int = 7, group_size: int = 10, r: Optional[int] = None
) -> PRBPSchedule:
    """The Lemma 5.4 PRBP strategy: trivial cost ``num_groups + 1`` with only 3 red pebbles."""
    if inst is None:
        inst = fanin_groups_instance(num_groups, group_size)
    r = _resolve_capacity(r, FANIN_MIN_R, "Lemma 5.4 strategy")
    moves: List[PRBPMove] = []
    sink = inst.sink
    for gi, u in enumerate(inst.sources):
        moves.append(_load(u))
        for w in inst.groups[gi]:
            moves.append(_comp(u, w))
            moves.append(_comp(w, sink))
            moves.append(_dele(w))
        moves.append(_dele(u))
    moves.append(_save(sink))
    moves.append(_dele(sink))
    schedule = PRBPSchedule(
        inst.dag, r, moves, description="Lemma 5.4 group-streaming PRBP strategy"
    )
    schedule.validate()
    return schedule


# --------------------------------------------------------------------------- #
# FFT (Theorem 6.9)
# --------------------------------------------------------------------------- #


def fft_blocked_rbp_schedule(inst: Optional[FFTInstance] = None, m: int = 16, r: Optional[int] = None) -> RBPSchedule:
    """Blocked RBP pebbling of the butterfly DAG: ``O(m·log m / log r)`` I/O.

    The DAG is cut into super-levels of ``s = floor(log2 r) - 1`` butterfly
    levels; the lanes of each super-level decompose into independent groups
    of ``2^s`` nodes per level which fit in fast memory (``2^{s+1} <= r``).
    Each group is loaded once and saved once per super-level, which is the
    classical ``2m`` I/O per ``s`` levels.
    """
    if inst is None:
        inst = fft_instance(m)
    m = inst.m
    r = _resolve_capacity(r, FFT_MIN_R, "blocked FFT strategy")
    s = max(1, r.bit_length() - 2)  # largest s with 2^(s+1) <= r
    while (1 << (s + 1)) > r:
        s -= 1
    L, C, D, S = (
        lambda v: RBPMove(MoveKind.LOAD, v),
        lambda v: RBPMove(MoveKind.COMPUTE, v),
        lambda v: RBPMove(MoveKind.DELETE, v),
        lambda v: RBPMove(MoveKind.SAVE, v),
    )
    moves: List[RBPMove] = []
    levels = inst.levels
    t0 = 0
    while t0 < levels:
        span = min(s, levels - t0)
        width = 1 << span
        # lane groups: lanes agreeing on all bits except bits t0 .. t0+span-1
        group_mask = (width - 1) << t0
        bases = [j for j in range(m) if (j & group_mask) == 0]
        for base in bases:
            lanes = [base | (x << t0) for x in range(width)]
            for j in lanes:
                moves.append(L(inst.node(t0, j)))
            for t in range(t0 + 1, t0 + span + 1):
                for j in lanes:
                    moves.append(C(inst.node(t, j)))
                for j in lanes:
                    moves.append(D(inst.node(t - 1, j)))
            for j in lanes:
                moves.append(S(inst.node(t0 + span, j)))
                moves.append(D(inst.node(t0 + span, j)))
        t0 += span
    schedule = RBPSchedule(
        inst.dag, r, moves, description=f"blocked RBP strategy ({s} levels per pass)"
    )
    schedule.validate()
    return schedule


def fft_blocked_prbp_schedule(inst: Optional[FFTInstance] = None, m: int = 16, r: Optional[int] = None) -> PRBPSchedule:
    """The blocked FFT strategy converted to PRBP (Proposition 4.1): identical I/O cost."""
    from ..core.conversion import convert_rbp_to_prbp

    rbp_schedule = fft_blocked_rbp_schedule(inst, m, r)
    prbp_schedule = convert_rbp_to_prbp(rbp_schedule)
    prbp_schedule.validate()
    return prbp_schedule


# --------------------------------------------------------------------------- #
# Matrix multiplication (Theorem 6.10)
# --------------------------------------------------------------------------- #


def matmul_tiled_prbp_schedule(
    inst: Optional[MatMulInstance] = None,
    m1: int = 4,
    m2: int = 4,
    m3: int = 4,
    r: Optional[int] = None,
) -> PRBPSchedule:
    """Tiled (outer-product) PRBP pebbling of matmul: ``O(m1·m2·m3/√r)`` I/O.

    A ``b × b`` block of ``C`` is kept in fast memory as dark-red partial
    values (``b = ⌊√r⌋ - 1``); for every inner index ``k`` the relevant
    column of ``A`` and row of ``B`` are streamed through fast memory.  This
    is exactly the outer-product formulation the paper points to (BLIS-style
    micro-kernels, Section 8.2).
    """
    if inst is None:
        inst = matmul_instance(m1, m2, m3)
    m1, m2, m3 = inst.m1, inst.m2, inst.m3
    r = _resolve_capacity(r, MATMUL_MIN_R, "tiled matmul strategy")
    b = int(math.isqrt(r)) - 1
    while b > 1 and b * b + 2 * b + 1 > r:
        b -= 1
    moves: List[PRBPMove] = []
    for i0 in range(0, m1, b):
        bi = min(b, m1 - i0)
        for j0 in range(0, m3, b):
            bj = min(b, m3 - j0)
            for k in range(m2):
                a_nodes = [inst.a(i, k) for i in range(i0, i0 + bi)]
                b_nodes = [inst.b(k, j) for j in range(j0, j0 + bj)]
                for a in a_nodes:
                    moves.append(_load(a))
                for bn in b_nodes:
                    moves.append(_load(bn))
                for i in range(i0, i0 + bi):
                    for j in range(j0, j0 + bj):
                        p = inst.product(i, k, j)
                        moves += [
                            _comp(inst.a(i, k), p),
                            _comp(inst.b(k, j), p),
                            _comp(p, inst.c(i, j)),
                            _dele(p),
                        ]
                for a in a_nodes:
                    moves.append(_dele(a))
                for bn in b_nodes:
                    moves.append(_dele(bn))
            for i in range(i0, i0 + bi):
                for j in range(j0, j0 + bj):
                    moves.append(_save(inst.c(i, j)))
                    moves.append(_dele(inst.c(i, j)))
    schedule = PRBPSchedule(
        inst.dag, r, moves, description=f"outer-product tiled PRBP strategy (block {b})"
    )
    schedule.validate()
    return schedule


# --------------------------------------------------------------------------- #
# Attention (Theorem 6.11)
# --------------------------------------------------------------------------- #


def attention_flash_prbp_schedule(
    inst: Optional[AttentionInstance] = None,
    m: int = 8,
    d: int = 2,
    r: Optional[int] = None,
) -> PRBPSchedule:
    """Flash-attention-style tiled PRBP pebbling of the ``Q·Kᵀ`` + exp DAG.

    A block of ``bi`` rows of ``Q`` stays resident (``bi·d`` values); the
    columns of ``Kᵀ`` are streamed once per row block, so the matrix-product
    traffic is ``m·d + m²·d/bi ≈ m·d + m²·d²/r`` loads — the large-cache
    behaviour matched by the Theorem 6.11 lower bound.  The ``m²``
    exponentiated scores are sinks of this (truncated) DAG and account for an
    additional, unavoidable ``m²`` saves of trivial cost.
    """
    if inst is None:
        inst = attention_instance(m, d)
    if inst.include_softmax:
        raise SolverError("the flash-style strategy targets the truncated attention DAG")
    m, d = inst.m, inst.d
    r = _resolve_capacity(r, attention_min_r(d), "flash-style attention strategy")
    bi = max(1, (r - d - 3) // d)
    bi = min(bi, m)
    moves: List[PRBPMove] = []
    for i0 in range(0, m, bi):
        rows = range(i0, min(i0 + bi, m))
        q_nodes = [inst.q(i, k) for i in rows for k in range(d)]
        for q in q_nodes:
            moves.append(_load(q))
        for j in range(m):
            kt_nodes = [inst.kt(k, j) for k in range(d)]
            for kt in kt_nodes:
                moves.append(_load(kt))
            for i in rows:
                s = inst.score(i, j)
                for k in range(d):
                    p = inst.product(i, j, k)
                    moves += [
                        _comp(inst.q(i, k), p),
                        _comp(inst.kt(k, j), p),
                        _comp(p, s),
                        _dele(p),
                    ]
                e = inst.exp(i, j)
                moves += [_comp(s, e), _dele(s), _save(e), _dele(e)]
            for kt in kt_nodes:
                moves.append(_dele(kt))
        for q in q_nodes:
            moves.append(_dele(q))
    schedule = PRBPSchedule(
        inst.dag, r, moves, description=f"flash-style tiled PRBP strategy (row block {bi})"
    )
    schedule.validate()
    return schedule
